//! The paper's Fig. 1 motivating example: *program context matters*.
//!
//! On the paper's 4-qubit coupling map (edges Q0–Q1, Q0–Q2, Q1–Q3,
//! Q2–Q3) run:
//!
//! ```text
//! t  q[2];
//! cx q[0], q[3];
//! ```
//!
//! The CX needs a SWAP and there are four candidates: (Q0,Q1), (Q0,Q2),
//! (Q3,Q1), (Q3,Q2). The two touching Q2 conflict with the in-flight
//! `t q[2]` and must wait (Fig. 1c); a context-sensitive router picks a
//! SWAP on free qubits and starts it at cycle 0, in parallel with the T
//! (Fig. 1d).
//!
//! Run with: `cargo run --example motivating_context`

use codar_repro::arch::{CouplingGraph, Device};
use codar_repro::circuit::Circuit;
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = CouplingGraph::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let device = Device::from_graph("paper fig1 device", graph);
    let mut program = Circuit::new(4);
    program.t(2);
    program.cx(0, 3);

    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    let routed = CodarRouter::with_config(&device, config).route(&program)?;

    println!("paper Fig. 1 — impact of program context\n");
    println!("routed schedule (cycle: gate):");
    for (gate, start) in routed.circuit.gates().iter().zip(&routed.start_times) {
        println!("  t={start:>2}  {gate}");
    }
    println!("\nweighted depth: {}", routed.weighted_depth);

    let first_swap = routed
        .circuit
        .gates()
        .iter()
        .zip(&routed.start_times)
        .find(|(g, _)| g.kind == codar_repro::circuit::GateKind::Swap)
        .expect("routing cx(0,3) on a line inserts a SWAP");
    assert_eq!(*first_swap.1, 0, "the SWAP starts in parallel with the T");
    assert!(
        !first_swap.0.qubits.contains(&2),
        "the SWAP avoids the busy qubit Q2"
    );
    println!("=> the first SWAP starts at cycle 0 on free qubits, avoiding busy Q2 (Fig. 1d)");
    Ok(())
}
