//! Fidelity comparison on the noisy simulator (the Fig. 9 experiment,
//! single algorithm): route a QAOA/Ising circuit with CODAR and SABRE,
//! then estimate each routed circuit's fidelity under dephasing- and
//! damping-dominant noise.
//!
//! Run with: `cargo run --release --example fidelity_compare`

use codar_repro::arch::Device;
use codar_repro::benchmarks::generators;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::{CodarRouter, SabreRouter};
use codar_repro::sim::{FidelityReport, NoiseModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ibm_q20_tokyo();
    let circuit = generators::ising_qaoa(6, 2, 28);
    let initial = reverse_traversal_mapping(&circuit, &device, 0);
    let codar = CodarRouter::new(&device).route_with_mapping(&circuit, initial.clone())?;
    let sabre = SabreRouter::new(&device).route_with_mapping(&circuit, initial)?;
    println!("ising/QAOA on {}:", device.name());
    println!("  codar weighted depth {}", codar.weighted_depth);
    println!("  sabre weighted depth {}\n", sabre.weighted_depth);

    let tau = device.durations().clone();
    let trajectories = 400;
    for (regime, noise) in [
        ("dephasing-dominant", NoiseModel::dephasing_dominant()),
        ("damping-dominant", NoiseModel::damping_dominant()),
    ] {
        let fc = FidelityReport::estimate(&codar.circuit, |g| tau.of(g), &noise, trajectories, 1);
        let fs = FidelityReport::estimate(&sabre.circuit, |g| tau.of(g), &noise, trajectories, 1);
        println!("{regime} noise ({trajectories} trajectories):");
        println!("  codar fidelity {:.4} ± {:.4}", fc.mean, fc.std_error);
        println!("  sabre fidelity {:.4} ± {:.4}", fs.mean, fs.std_error);
        println!();
    }
    println!("shorter schedules accumulate less idle decoherence — the effect");
    println!("behind the paper's Fig. 9 dephasing results.");
    Ok(())
}
