//! maQAM multi-technology demo: compile the same program for a
//! superconducting grid and for an ion trap, in each machine's native
//! basis and duration profile (Table I), and render the schedules.
//!
//! Run with: `cargo run --example ion_trap_demo`

use codar_repro::arch::{Device, GateDurations};
use codar_repro::circuit::decompose::translate_to_ion_basis;
use codar_repro::circuit::render::render_timeline;
use codar_repro::circuit::weighted_depth;
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small GHZ-plus-phases program.
    let mut program = codar_repro::benchmarks::ghz(4);
    program.t(3);
    program.cx(3, 0);

    // --- superconducting: route for coupling, keep the gate names ----
    let grid = Device::grid(2, 2);
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    let routed = CodarRouter::with_config(&grid, config).route(&program)?;
    println!("superconducting 2x2 grid (1q=1, 2q=2, SWAP=6 cycles):");
    println!(
        "  {} gates, {} swaps, weighted depth {}",
        routed.gate_count(),
        routed.swaps_inserted,
        routed.weighted_depth
    );
    let tau = grid.durations().clone();
    print!("{}", render_timeline(&routed.circuit, |g| tau.of(g), 60));

    // --- ion trap: all-to-all coupling, native {r, rz, rxx} basis ----
    // No routing needed (complete graph); translate the basis instead.
    let ion_circuit = translate_to_ion_basis(&program);
    let ion_tau = GateDurations::ion_trap();
    println!("\nion trap, native basis (1q=1, XX=12 cycles — Table I ratio):");
    println!(
        "  {} native gates ({} XX interactions), weighted depth {}",
        ion_circuit.len(),
        ion_circuit.count_kind(codar_repro::circuit::GateKind::Rxx),
        weighted_depth(&ion_circuit, |g| ion_tau.of(g)),
    );
    print!("{}", render_timeline(&ion_circuit, |g| ion_tau.of(g), 60));

    println!("\nsame program, two technologies: the ion trap needs no SWAPs but");
    println!("pays 12x per entangling gate; the grid pays routing instead.");
    Ok(())
}
