//! A 127-qubit stabilizer run: prepare a GHZ state spanning the whole
//! IBM Eagle heavy-hex device, route it with CODAR, prove the routed
//! circuit exact-equivalent to the original with the tableau backend
//! (dense simulation stops at 26 qubits; the stabilizer engine does
//! not care), and sample the state.
//!
//! Run with: `cargo run --release --example stabilizer_127q`

use codar_repro::arch::Device;
use codar_repro::benchmarks::generators::ghz_ladder;
use codar_repro::engine::Backend;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::CodarRouter;
use codar_repro::sim::backend::{check_routed_equivalence_stabilizer, run_counts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device::ibm_eagle127();
    let circuit = ghz_ladder(device.num_qubits());
    println!(
        "circuit: ghz_ladder, {} qubits, {} gates",
        circuit.num_qubits(),
        circuit.len()
    );

    // Route onto the heavy-hex coupling graph.
    let initial = reverse_traversal_mapping(&circuit, &device, 0);
    let routed = CodarRouter::new(&device)
        .route_with_mapping(&circuit, initial)
        .expect("the ladder spans exactly the device");
    println!(
        "routed on {}: {} gates, {} swaps, weighted depth {}",
        device,
        routed.circuit.len(),
        routed.swaps_inserted,
        routed.weighted_depth
    );

    // Exact routed-vs-original equivalence at full device width: embed
    // the original on the physical register, un-permute the routed
    // final mapping, compare canonical tableaus.
    let logical_of: Vec<Option<usize>> = (0..routed.circuit.num_qubits())
        .map(|phys| routed.final_mapping.logical_of(phys))
        .collect();
    check_routed_equivalence_stabilizer(&circuit, &routed.circuit, &logical_of)?;
    println!("stabilizer equivalence: routed circuit prepares the original state");

    // `auto` classifies the ladder as Clifford and picks the tableau.
    let (backend, counts) = run_counts(Backend::Auto, &circuit, 1000, 42)?;
    println!("sampled 1000 shots on the `{backend}` backend:");
    for (basis, count) in &counts {
        let label = if *basis == 0 {
            "|0…0⟩"
        } else {
            "|1…1⟩"
        };
        println!("  {label}  {count}");
    }
    Ok(())
}
