//! Route an embedded OpenQASM benchmark (the published Cuccaro adder
//! with user-defined `majority`/`unmaj` gates) end-to-end: parse →
//! expand composite gates → decompose Toffolis → route on every paper
//! architecture → verify → re-emit QASM.
//!
//! Run with: `cargo run --example route_qasm`

use codar_repro::arch::Device;
use codar_repro::benchmarks::corpus;
use codar_repro::circuit::decompose::decompose_three_qubit_gates;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarRouter, SabreRouter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = corpus::load(corpus::MAJ_ADDER_QASM)?;
    println!(
        "parsed maj_adder: {} qubits, {} gates (incl. {} Toffolis)",
        circuit.num_qubits(),
        circuit.len(),
        circuit.count_kind(codar_repro::circuit::GateKind::Ccx)
    );
    let routable = decompose_three_qubit_gates(&circuit);
    println!("after Toffoli decomposition: {} gates\n", routable.len());

    println!(
        "{:<22}{:>12}{:>12}{:>10}{:>10}{:>9}",
        "architecture", "codar WD", "sabre WD", "codar SW", "sabre SW", "speedup"
    );
    for device in Device::paper_architectures() {
        let initial = reverse_traversal_mapping(&routable, &device, 0);
        let codar = CodarRouter::new(&device).route_with_mapping(&routable, initial.clone())?;
        let sabre = SabreRouter::new(&device).route_with_mapping(&routable, initial)?;
        check_coupling(&codar.circuit, &device)?;
        check_coupling(&sabre.circuit, &device)?;
        check_equivalence(&routable, &codar)?;
        check_equivalence(&routable, &sabre)?;
        println!(
            "{:<22}{:>12}{:>12}{:>10}{:>10}{:>9.3}",
            device.name(),
            codar.weighted_depth,
            sabre.weighted_depth,
            codar.swaps_inserted,
            sabre.swaps_inserted,
            sabre.weighted_depth as f64 / codar.weighted_depth as f64
        );
    }
    println!("\nall routed circuits verified: coupling-compliant and semantics-preserving");
    Ok(())
}
