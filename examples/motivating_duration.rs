//! The paper's Fig. 2 motivating example: *gate durations matter*.
//!
//! 4-qubit QFT prefix on the paper's coupling map (edges Q0–Q1, Q0–Q2,
//! Q1–Q3, Q2–Q3):
//!
//! ```text
//! t  q[1];        // T takes 1 cycle, finishes at cycle 1
//! cx q[0], q[2];  // CX takes 2 cycles, finishes at cycle 2
//! cx q[0], q[3];  // needs routing
//! ```
//!
//! A duration-unaware mapper assumes both predecessors end at the same
//! time, so every candidate SWAP waits equally. Duration-aware CODAR
//! knows Q1 frees at cycle 1 while Q0/Q2 are busy until 2, so
//! `SWAP q3,q1` can start at cycle 1 (Fig. 2d).
//!
//! Run with: `cargo run --example motivating_duration`

use codar_repro::arch::Device;
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};

fn route(duration_aware: bool) -> codar_repro::router::RoutedCircuit {
    let mut program = Circuit::new(4);
    program.t(1);
    program.cx(0, 2);
    program.cx(0, 3);
    // The figure's device couples (0,1),(0,2),(1,3),(2,3): `cx q0,q2`
    // is direct and only `cx q0,q3` (distance 2) needs routing.
    let graph = codar_repro::arch::CouplingGraph::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let device = Device::from_graph("fig2 device", graph);
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        enable_duration_awareness: duration_aware,
        ..CodarConfig::default()
    };
    CodarRouter::with_config(&device, config)
        .route(&program)
        .expect("fits the device")
}

fn main() {
    println!("paper Fig. 2 — impact of gate duration difference\n");
    for (label, aware) in [
        ("duration-aware (CODAR)", true),
        ("duration-unaware", false),
    ] {
        let routed = route(aware);
        println!("{label}:");
        for (gate, start) in routed.circuit.gates().iter().zip(&routed.start_times) {
            println!("  t={start:>2}  {gate}");
        }
        println!("  weighted depth: {}\n", routed.weighted_depth);
    }
    let aware = route(true);
    let swap_start = aware
        .circuit
        .gates()
        .iter()
        .zip(&aware.start_times)
        .find(|(g, _)| g.kind == GateKind::Swap)
        .map(|(_, &s)| s)
        .expect("a SWAP is inserted");
    assert_eq!(
        swap_start, 1,
        "duration-aware CODAR starts the SWAP at cycle 1 (paper Fig. 2d)"
    );
    println!(
        "=> with durations tracked, the SWAP starts at cycle {swap_start} \
         (right after the T frees q1, while the CX still runs)"
    );
}
