//! Tour of the maQAM device models: topology statistics and how the
//! same circuit routes onto each, including the non-superconducting
//! duration profiles of Table I.
//!
//! Run with: `cargo run --example architecture_tour`

use codar_repro::arch::{Device, GateDurations};
use codar_repro::benchmarks::generators;
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("maQAM device models\n");
    println!(
        "{:<22}{:>8}{:>8}{:>10}{:>10}",
        "device", "qubits", "edges", "diameter", "layout?"
    );
    let mut devices = Device::paper_architectures();
    devices.push(Device::linear(16));
    devices.push(Device::ring(16));
    devices.push(Device::ion_trap_all_to_all(11));
    for d in &devices {
        println!(
            "{:<22}{:>8}{:>8}{:>10}{:>10}",
            d.name(),
            d.num_qubits(),
            d.graph().edges().len(),
            d.distances().diameter(),
            if d.layout().is_some() { "yes" } else { "no" }
        );
    }

    // Route the same 10-qubit QFT everywhere it fits.
    let circuit = generators::qft(10);
    println!("\nrouting qft_10 with CODAR (identity initial mapping):");
    println!("{:<22}{:>12}{:>10}", "device", "weighted D", "swaps");
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    for d in &devices {
        if d.num_qubits() < circuit.num_qubits() {
            continue;
        }
        let routed = CodarRouter::with_config(d, config.clone()).route(&circuit)?;
        println!(
            "{:<22}{:>12}{:>10}",
            d.name(),
            routed.weighted_depth,
            routed.swaps_inserted
        );
    }

    // Different technologies = different duration maps (Table I).
    println!("\nsame circuit, same topology, different technology (grid 4x4):");
    for (name, tau) in [
        ("superconducting", GateDurations::superconducting()),
        ("ion trap", GateDurations::ion_trap()),
        ("neutral atom", GateDurations::neutral_atom()),
    ] {
        let device = Device::grid(4, 4).with_durations(tau);
        let routed = CodarRouter::with_config(&device, config.clone()).route(&circuit)?;
        println!(
            "  {:<18} weighted depth {:>6} ({} swaps)",
            name, routed.weighted_depth, routed.swaps_inserted
        );
    }
    Ok(())
}
