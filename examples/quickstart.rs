//! Quickstart: parse an OpenQASM program, route it onto IBM Q20 Tokyo
//! with CODAR, and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use codar_repro::arch::Device;
use codar_repro::circuit::from_qasm::{circuit_from_source, circuit_to_qasm};
use codar_repro::router::{CodarRouter, SabreRouter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An OpenQASM 2.0 program: a 4-qubit QFT.
    let source = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[4];
        h q[0];
        cu1(pi/2) q[1], q[0];
        h q[1];
        cu1(pi/4) q[2], q[0];
        cu1(pi/2) q[2], q[1];
        h q[2];
        cu1(pi/8) q[3], q[0];
        cu1(pi/4) q[3], q[1];
        cu1(pi/2) q[3], q[2];
        h q[3];
    "#;
    let circuit = circuit_from_source(source)?;
    println!(
        "input: {} gates on {} qubits",
        circuit.len(),
        circuit.num_qubits()
    );

    // 2. Pick a device model (maQAM): IBM Q20 Tokyo with the paper's
    //    superconducting durations (1q = 1 cycle, 2q = 2, SWAP = 6).
    let device = Device::ibm_q20_tokyo();
    println!("device: {device}");

    // 3. Route with CODAR and with the SABRE baseline.
    let codar = CodarRouter::new(&device).route(&circuit)?;
    let sabre = SabreRouter::new(&device).route(&circuit)?;
    println!("codar: {codar}");
    println!("sabre: {sabre}");
    println!(
        "speedup (sabre WD / codar WD): {:.3}",
        sabre.weighted_depth as f64 / codar.weighted_depth as f64
    );

    // 4. The routed circuit is valid OpenQASM again.
    let qasm = circuit_to_qasm(&codar.circuit)?;
    println!("\nfirst lines of the routed program:");
    for line in qasm.lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
