//! maQAM — the Multi-architecture Adaptive Quantum Abstract Machine
//! (paper Sec. III).
//!
//! A [`Device`] bundles the *static structure* `As = (QH, G, M, τ, D)` of
//! the paper's Table II:
//!
//! * the coupling graph `M` ([`CouplingGraph`]) over physical qubits `QH`,
//! * the gate duration map `τ` ([`GateDurations`]),
//! * the all-pairs shortest distance map `D` ([`DistanceMatrix`]),
//! * optional 2-D coordinates ([`layout`]) used by CODAR's fine
//!   heuristic `Hfine`.
//!
//! Device presets reproduce the four architectures of the paper's
//! evaluation — IBM Q16 Melbourne, IBM Q20 Tokyo, the Enfield 6×6 grid
//! and Google's 54-qubit Sycamore — plus generic linear/ring/grid
//! generators, and the technology parameter presets of Table I.
//!
//! # Examples
//!
//! ```
//! use codar_arch::Device;
//!
//! let device = Device::ibm_q20_tokyo();
//! assert_eq!(device.num_qubits(), 20);
//! assert!(device.graph().are_adjacent(0, 1));
//! ```

pub mod calibration;
pub mod devices;
pub mod distance;
pub mod duration;
pub mod fidelity_model;
pub mod graph;
pub mod layout;
pub mod technology;

pub use calibration::{CalibrationSnapshot, EdgeCalibration, QubitCalibration};
pub use devices::Device;
pub use distance::DistanceMatrix;
pub use duration::GateDurations;
pub use fidelity_model::{selection_score, FidelityModel};
pub use graph::{CouplingGraph, PhysQubit};
pub use layout::Layout2d;
pub use technology::{Technology, TechnologyParams};
