//! Technology parameter presets (paper Table I).
//!
//! These record the published per-technology gate sets, fidelities and
//! timescales for ion-trap, superconducting and neutral-atom devices.
//! The experiment harness prints Table I from this data; the noisy
//! simulator derives its per-cycle error rates from the T1/T2 numbers.

use std::fmt;

/// The quantum hardware technology families surveyed in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Trapped-ion devices (IonQ 5/11 qubit machines).
    IonTrap,
    /// Superconducting transmon devices (IBM Q series, Google Sycamore).
    Superconducting,
    /// Neutral-atom (Rydberg) devices.
    NeutralAtom,
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::IonTrap => write!(f, "ion trap"),
            Technology::Superconducting => write!(f, "superconducting"),
            Technology::NeutralAtom => write!(f, "neutral atom"),
        }
    }
}

/// One column of Table I: the published parameters of a specific device.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyParams {
    /// Device name as reported in the paper.
    pub device: &'static str,
    /// Technology family.
    pub technology: Technology,
    /// Available single-qubit gate set description.
    pub single_qubit_gates: &'static str,
    /// Available two-qubit gate set description.
    pub two_qubit_gates: &'static str,
    /// Single-qubit gate fidelity (fraction, e.g. 0.991).
    pub fidelity_1q: f64,
    /// Two-qubit gate fidelity.
    pub fidelity_2q: f64,
    /// Single-qubit readout fidelity (when reported).
    pub fidelity_readout: Option<f64>,
    /// Single-qubit gate time in nanoseconds (when reported).
    pub time_1q_ns: Option<f64>,
    /// Two-qubit gate time in nanoseconds (when reported).
    pub time_2q_ns: Option<f64>,
    /// Depolarization time T1 in microseconds (when reported/finite).
    pub t1_us: Option<f64>,
    /// Spin dephasing time T2 in microseconds (when reported).
    pub t2_us: Option<f64>,
}

impl TechnologyParams {
    /// Ratio of two-qubit to single-qubit gate time, when both known.
    pub fn duration_ratio(&self) -> Option<f64> {
        match (self.time_1q_ns, self.time_2q_ns) {
            (Some(a), Some(b)) if a > 0.0 => Some(b / a),
            _ => None,
        }
    }

    /// All Table I columns.
    pub fn table1() -> Vec<TechnologyParams> {
        vec![
            TechnologyParams {
                device: "Ion Q5",
                technology: Technology::IonTrap,
                single_qubit_gates: "R(theta, alpha)",
                two_qubit_gates: "XX",
                fidelity_1q: 0.991,
                fidelity_2q: 0.97,
                fidelity_readout: Some(0.994), // avg of |0>:99.7, |1>:99.1
                time_1q_ns: Some(20_000.0),
                time_2q_ns: Some(250_000.0),
                t1_us: None, // ~infinite
                t2_us: Some(500_000.0),
            },
            TechnologyParams {
                device: "Ion Q11",
                technology: Technology::IonTrap,
                single_qubit_gates: "R(theta, alpha)",
                two_qubit_gates: "XX",
                fidelity_1q: 0.995,
                fidelity_2q: 0.975,
                fidelity_readout: Some(0.993),
                time_1q_ns: None,
                time_2q_ns: None,
                t1_us: None,
                t2_us: None,
            },
            TechnologyParams {
                device: "IBM Q5",
                technology: Technology::Superconducting,
                single_qubit_gates: "X, Y, Z, H, S, T",
                two_qubit_gates: "CNOT",
                fidelity_1q: 0.997,
                fidelity_2q: 0.965,
                fidelity_readout: Some(0.96),
                time_1q_ns: Some(130.0),
                time_2q_ns: Some(350.0), // 250-450ns midpoint
                t1_us: Some(60.0),
                t2_us: Some(60.0),
            },
            TechnologyParams {
                device: "IBM Q16",
                technology: Technology::Superconducting,
                single_qubit_gates: "X, Y, Z, H, S, T",
                two_qubit_gates: "CNOT",
                fidelity_1q: 0.998,
                fidelity_2q: 0.96,
                fidelity_readout: Some(0.93),
                time_1q_ns: Some(80.0),
                time_2q_ns: Some(280.0), // 170-391ns midpoint
                t1_us: Some(70.0),
                t2_us: Some(70.0),
            },
            TechnologyParams {
                device: "IBM Q20",
                technology: Technology::Superconducting,
                single_qubit_gates: "X, Y, Z, H, S, T",
                two_qubit_gates: "CNOT",
                fidelity_1q: 0.9956,
                fidelity_2q: 0.97,
                fidelity_readout: Some(0.912),
                time_1q_ns: None,
                time_2q_ns: None,
                t1_us: Some(87.29),
                t2_us: Some(54.43),
            },
            TechnologyParams {
                device: "Neutral Atom",
                technology: Technology::NeutralAtom,
                single_qubit_gates: "R(theta, alpha)",
                two_qubit_gates: "CNOT",
                fidelity_1q: 0.99995,
                fidelity_2q: 0.82,
                fidelity_readout: Some(0.986),
                time_1q_ns: Some(10_000.0), // 1-20 µs band
                time_2q_ns: Some(10_000.0),
                t1_us: Some(10_000_000.0), // >10 s
                t2_us: Some(1_000_000.0),  // ~1 s
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_columns() {
        assert_eq!(TechnologyParams::table1().len(), 6);
    }

    #[test]
    fn superconducting_two_qubit_slower() {
        // Table I: 2-qubit gates are at least 2x slower than 1-qubit on
        // superconducting platforms (this motivates the CODAR profile).
        for p in TechnologyParams::table1() {
            if p.technology == Technology::Superconducting {
                if let Some(ratio) = p.duration_ratio() {
                    assert!(ratio >= 2.0, "{}: ratio {ratio}", p.device);
                }
            }
        }
    }

    #[test]
    fn ion_trap_much_slower_than_superconducting() {
        let table = TechnologyParams::table1();
        let ion = table.iter().find(|p| p.device == "Ion Q5").unwrap();
        let ibm = table.iter().find(|p| p.device == "IBM Q16").unwrap();
        let ratio = ion.time_1q_ns.unwrap() / ibm.time_1q_ns.unwrap();
        assert!(ratio > 100.0, "ion traps are ~1000x slower, got {ratio}");
    }

    #[test]
    fn neutral_atom_two_qubit_not_slower() {
        let table = TechnologyParams::table1();
        let na = table.iter().find(|p| p.device == "Neutral Atom").unwrap();
        assert!(na.duration_ratio().unwrap() <= 1.0 + 1e-12);
        // ... but with much worse fidelity.
        assert!(na.fidelity_2q < 0.9);
    }

    #[test]
    fn fidelities_are_probabilities() {
        for p in TechnologyParams::table1() {
            assert!(p.fidelity_1q > 0.9 && p.fidelity_1q <= 1.0);
            assert!(p.fidelity_2q > 0.5 && p.fidelity_2q <= 1.0);
            if let Some(r) = p.fidelity_readout {
                assert!(r > 0.5 && r <= 1.0);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Technology::IonTrap.to_string(), "ion trap");
        assert_eq!(Technology::Superconducting.to_string(), "superconducting");
        assert_eq!(Technology::NeutralAtom.to_string(), "neutral atom");
    }
}
