//! The gate duration map `τ` (paper Table II and Sec. III-B).
//!
//! Durations are multiples of the quantum clock cycle `τu`. The paper's
//! evaluation uses the superconducting profile: single-qubit gates take
//! 1 cycle, two-qubit gates 2 cycles, and a SWAP 6 cycles (3 CNOTs).

use codar_circuit::schedule::Time;
use codar_circuit::{Gate, GateKind};

/// Duration model mapping gate kinds to cycle counts.
///
/// # Examples
///
/// ```
/// use codar_arch::GateDurations;
/// use codar_circuit::{Gate, GateKind};
///
/// let tau = GateDurations::superconducting();
/// assert_eq!(tau.of_kind(GateKind::T), 1);
/// assert_eq!(tau.of_kind(GateKind::Cx), 2);
/// assert_eq!(tau.of_kind(GateKind::Swap), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateDurations {
    single_qubit: Time,
    two_qubit: Time,
    swap: Time,
    measure: Time,
    reset: Time,
}

impl GateDurations {
    /// Builds a duration model from the three headline numbers; measure
    /// and reset default to the single-qubit duration.
    pub fn new(single_qubit: Time, two_qubit: Time, swap: Time) -> Self {
        assert!(single_qubit > 0, "single-qubit duration must be positive");
        assert!(two_qubit > 0, "two-qubit duration must be positive");
        assert!(swap > 0, "swap duration must be positive");
        GateDurations {
            single_qubit,
            two_qubit,
            swap,
            measure: single_qubit,
            reset: single_qubit,
        }
    }

    /// Overrides the measurement duration.
    pub fn with_measure(mut self, measure: Time) -> Self {
        self.measure = measure;
        self
    }

    /// Overrides the reset duration.
    pub fn with_reset(mut self, reset: Time) -> Self {
        self.reset = reset;
        self
    }

    /// The paper's evaluation profile (superconducting, Table I):
    /// 1q = 1 cycle, 2q = 2 cycles, SWAP = 6 cycles.
    pub fn superconducting() -> Self {
        GateDurations::new(1, 2, 6)
    }

    /// Ion-trap profile (Table I: 1q ≈ 20 µs, 2q ≈ 250 µs → ratio ~12;
    /// SWAP = 3 two-qubit gates).
    pub fn ion_trap() -> Self {
        GateDurations::new(1, 12, 36)
    }

    /// Neutral-atom profile (Table I: the two-qubit gate "may not perform
    /// slower than a single-qubit gate": 1q ≈ 2q; SWAP = 3 × 2q).
    pub fn neutral_atom() -> Self {
        GateDurations::new(2, 2, 6)
    }

    /// A uniform model (every gate 1 cycle) — what duration-unaware
    /// mappers implicitly assume; used by the ablation benches.
    pub fn uniform() -> Self {
        GateDurations::new(1, 1, 1)
    }

    /// Single-qubit gate duration.
    pub fn single_qubit(&self) -> Time {
        self.single_qubit
    }

    /// Two-qubit gate duration.
    pub fn two_qubit(&self) -> Time {
        self.two_qubit
    }

    /// SWAP duration.
    pub fn swap(&self) -> Time {
        self.swap
    }

    /// Duration of a gate kind, in cycles. Barriers take 0 cycles.
    pub fn of_kind(&self, kind: GateKind) -> Time {
        match kind {
            GateKind::Barrier => 0,
            GateKind::Swap => self.swap,
            GateKind::Measure => self.measure,
            GateKind::Reset => self.reset,
            GateKind::Cswap => self.swap + 2 * self.two_qubit,
            // A Toffoli decomposes into 6 CNOTs + single-qubit gates;
            // routers decompose it before routing, but if one survives we
            // account for its critical path.
            GateKind::Ccx => 6 * self.two_qubit,
            k if k.is_two_qubit() => self.two_qubit,
            _ => self.single_qubit,
        }
    }

    /// Duration of a concrete gate.
    pub fn of(&self, gate: &Gate) -> Time {
        self.of_kind(gate.kind)
    }
}

impl Default for GateDurations {
    /// The paper's evaluation profile ([`GateDurations::superconducting`]).
    fn default() -> Self {
        GateDurations::superconducting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superconducting_matches_paper() {
        let tau = GateDurations::superconducting();
        assert_eq!(tau.of_kind(GateKind::H), 1);
        assert_eq!(tau.of_kind(GateKind::T), 1);
        assert_eq!(tau.of_kind(GateKind::Cx), 2);
        assert_eq!(tau.of_kind(GateKind::Cz), 2);
        assert_eq!(tau.of_kind(GateKind::Swap), 6);
        assert_eq!(tau.of_kind(GateKind::Barrier), 0);
    }

    #[test]
    fn ion_trap_ratio() {
        let tau = GateDurations::ion_trap();
        assert_eq!(tau.of_kind(GateKind::Cx) / tau.of_kind(GateKind::X), 12);
    }

    #[test]
    fn neutral_atom_two_qubit_not_slower() {
        let tau = GateDurations::neutral_atom();
        assert!(tau.of_kind(GateKind::Cx) <= tau.of_kind(GateKind::H));
    }

    #[test]
    fn uniform_is_flat() {
        let tau = GateDurations::uniform();
        assert_eq!(tau.of_kind(GateKind::H), tau.of_kind(GateKind::Cx));
        assert_eq!(tau.of_kind(GateKind::Swap), 1);
    }

    #[test]
    fn overrides() {
        let tau = GateDurations::new(1, 2, 6).with_measure(5).with_reset(3);
        assert_eq!(tau.of_kind(GateKind::Measure), 5);
        assert_eq!(tau.of_kind(GateKind::Reset), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_duration_rejected() {
        GateDurations::new(0, 2, 6);
    }

    #[test]
    fn of_gate_uses_kind() {
        let tau = GateDurations::superconducting();
        let g = Gate::new(GateKind::Cx, vec![0, 1], vec![]);
        assert_eq!(tau.of(&g), 2);
    }

    #[test]
    fn default_is_superconducting() {
        assert_eq!(GateDurations::default(), GateDurations::superconducting());
    }
}
