//! Device presets: the four architectures of the paper's evaluation,
//! plus generic generators.

use crate::distance::DistanceMatrix;
use crate::duration::GateDurations;
use crate::graph::{CouplingGraph, PhysQubit};
use crate::layout::Layout2d;
use std::fmt;
use std::sync::Arc;

/// A complete maQAM static structure: coupling graph, distances,
/// durations and (for lattices) a 2-D layout.
///
/// Cloning is cheap: the distance matrix is shared behind an [`Arc`].
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
///
/// let dev = Device::grid(6, 6); // the Enfield 6x6 model
/// assert_eq!(dev.num_qubits(), 36);
/// assert_eq!(dev.distance(0, 35), 10);
/// assert!(dev.layout().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Device {
    name: String,
    graph: Arc<CouplingGraph>,
    distances: Arc<DistanceMatrix>,
    layout: Option<Arc<Layout2d>>,
    durations: GateDurations,
}

impl Device {
    /// Builds a device from a named coupling graph, with the paper's
    /// superconducting duration profile and no 2-D layout.
    pub fn from_graph(name: impl Into<String>, graph: CouplingGraph) -> Self {
        let distances = DistanceMatrix::new(&graph);
        Device {
            name: name.into(),
            graph: Arc::new(graph),
            distances: Arc::new(distances),
            layout: None,
            durations: GateDurations::superconducting(),
        }
    }

    /// Attaches a 2-D layout (enables CODAR's `Hfine`).
    ///
    /// # Panics
    ///
    /// Panics if the layout covers a different number of qubits.
    pub fn with_layout(mut self, layout: Layout2d) -> Self {
        assert_eq!(
            layout.num_qubits(),
            self.graph.num_qubits(),
            "layout must cover every qubit"
        );
        self.layout = Some(Arc::new(layout));
        self
    }

    /// Replaces the duration model.
    pub fn with_durations(mut self, durations: GateDurations) -> Self {
        self.durations = durations;
        self
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.graph.num_qubits()
    }

    /// The coupling graph.
    pub fn graph(&self) -> &CouplingGraph {
        &self.graph
    }

    /// The all-pairs distance matrix `D`.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Hop distance between two physical qubits.
    #[inline]
    pub fn distance(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        self.distances.get(a, b)
    }

    /// The 2-D layout, when the device is a lattice.
    pub fn layout(&self) -> Option<&Layout2d> {
        self.layout.as_deref()
    }

    /// The gate duration map `τ`.
    pub fn durations(&self) -> &GateDurations {
        &self.durations
    }

    // ---- presets -----------------------------------------------------

    /// IBM Q16 Melbourne/Rueschlikon-class device: 16 qubits in a 2×8
    /// ladder (the topology used by the qubit-mapping literature for
    /// "IBM Q16").
    pub fn ibm_q16_melbourne() -> Self {
        Device::from_graph("IBM Q16 Melbourne", CouplingGraph::grid(2, 8))
            .with_layout(Layout2d::grid(2, 8))
    }

    /// IBM Q20 Tokyo: 4×5 grid with the published diagonal couplings
    /// (the architecture of the SABRE evaluation).
    pub fn ibm_q20_tokyo() -> Self {
        let mut edges: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        for r in 0..4 {
            for c in 0..5 {
                let q = r * 5 + c;
                if c + 1 < 5 {
                    edges.push((q, q + 1));
                }
                if r + 1 < 4 {
                    edges.push((q, q + 5));
                }
            }
        }
        // Diagonal couplings of the Tokyo chip (crossed pairs).
        edges.extend_from_slice(&[
            (1, 7),
            (2, 6),
            (3, 9),
            (4, 8),
            (5, 11),
            (6, 10),
            (7, 13),
            (8, 12),
            (11, 17),
            (12, 16),
            (13, 19),
            (14, 18),
        ]);
        Device::from_graph("IBM Q20 Tokyo", CouplingGraph::new(20, &edges))
            .with_layout(Layout2d::grid(4, 5))
    }

    /// The Enfield 6×6 grid model.
    pub fn enfield_6x6() -> Self {
        Device::grid(6, 6)
    }

    /// A generic `rows × cols` lattice device.
    pub fn grid(rows: usize, cols: usize) -> Self {
        Device::from_graph(
            format!("grid {rows}x{cols}"),
            CouplingGraph::grid(rows, cols),
        )
        .with_layout(Layout2d::grid(rows, cols))
    }

    /// A diagonal (rotated-grid) lattice of `rows × cols` qubits: each
    /// qubit couples to up to 4 qubits in the adjacent rows and none in
    /// its own row — the Google Sycamore/Bristlecone geometry.
    pub fn diagonal_lattice(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        let mut edges: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        for r in 0..rows.saturating_sub(1) {
            for c in 0..cols {
                let q = r * cols + c;
                let below = (r + 1) * cols + c;
                edges.push((q, below));
                // The lattice is brick-patterned: even rows also couple
                // to the next column below; odd rows to the previous.
                if r % 2 == 0 {
                    if c + 1 < cols {
                        edges.push((q, below + 1));
                    }
                } else if c > 0 {
                    edges.push((q, below - 1));
                }
            }
        }
        // Rotated-grid coordinates: diagonal neighbors differ by one row
        // and one column, matching the Manhattan geometry Hfine assumes.
        let coords: Vec<(i32, i32)> = (0..rows * cols)
            .map(|q| {
                let r = (q / cols) as i32;
                let c = (q % cols) as i32;
                (r, 2 * c + (r % 2))
            })
            .collect();
        Device::from_graph(name, CouplingGraph::new(rows * cols, &edges))
            .with_layout(Layout2d::new(coords))
    }

    /// Google Q54 Sycamore: 54 qubits on a diagonal lattice (9 rows of
    /// 6), reconstructed from the Nature 2019 layout.
    pub fn google_sycamore54() -> Self {
        Device::diagonal_lattice("Google Q54 Sycamore", 9, 6)
    }

    /// Google Bristlecone: 72 qubits on the same diagonal lattice
    /// geometry (12 rows of 6).
    pub fn google_bristlecone72() -> Self {
        Device::diagonal_lattice("Google Bristlecone 72", 12, 6)
    }

    /// IBM Q5 Yorktown: the 5-qubit "bow-tie" (two triangles sharing
    /// qubit 2).
    pub fn ibm_q5_yorktown() -> Self {
        let edges = [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)];
        Device::from_graph("IBM Q5 Yorktown", CouplingGraph::new(5, &edges))
    }

    /// IBM 27-qubit Falcon heavy-hex lattice (the ibmq_montreal-class
    /// coupling map), the topology of IBM's post-2020 backends.
    pub fn ibm_falcon27() -> Self {
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
            (14, 16),
            (15, 18),
            (16, 19),
            (17, 18),
            (18, 21),
            (19, 20),
            (19, 22),
            (21, 23),
            (22, 25),
            (23, 24),
            (24, 25),
            (25, 26),
        ];
        Device::from_graph("IBM Falcon 27 (heavy-hex)", CouplingGraph::new(27, &edges))
    }

    /// IBM 127-qubit Eagle-class heavy-hex lattice (the
    /// ibm_washington/ibm_brisbane-class topology, stylized like the
    /// other presets): six 15-qubit rows and one 13-qubit row, joined
    /// by four bridge qubits per row gap. Bridge columns alternate
    /// between `{2, 6, 10, 14}` and `{0, 4, 8, 12}` on consecutive
    /// gaps, so no row qubit carries more than one bridge — every
    /// qubit has degree ≤ 3, the heavy-hex signature. 127 qubits
    /// total; the scale target of the whole-device stabilizer
    /// equivalence gate.
    pub fn ibm_eagle127() -> Self {
        const WIDTHS: [usize; 7] = [15, 15, 15, 15, 15, 15, 13];
        let mut edges: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        let mut coords: Vec<(i32, i32)> = Vec::new();
        let mut row_start = [0usize; 7];
        let mut next = 0;
        for (r, &w) in WIDTHS.iter().enumerate() {
            row_start[r] = next;
            for c in 0..w {
                if c + 1 < w {
                    edges.push((next + c, next + c + 1));
                }
                coords.push((2 * r as i32, 2 * c as i32));
            }
            next += w;
        }
        for gap in 0..WIDTHS.len() - 1 {
            let cols: [usize; 4] = if gap % 2 == 0 {
                [2, 6, 10, 14]
            } else {
                // The last row is 13 wide; odd-gap columns stay ≤ 12,
                // which is what keeps the bottom gap at four bridges.
                [0, 4, 8, 12]
            };
            for &c in &cols {
                let bridge = next;
                next += 1;
                edges.push((row_start[gap] + c, bridge));
                edges.push((bridge, row_start[gap + 1] + c));
                coords.push((2 * gap as i32 + 1, 2 * c as i32));
            }
        }
        debug_assert_eq!(next, 127);
        Device::from_graph("IBM Eagle 127 (heavy-hex)", CouplingGraph::new(127, &edges))
            .with_layout(Layout2d::new(coords))
    }

    /// Rigetti Aspen-style 16-qubit device: two octagonal rings joined
    /// by two bridges (a stylized rendering of the Aspen lattice cell).
    pub fn rigetti_aspen16() -> Self {
        let mut edges: Vec<(PhysQubit, PhysQubit)> = Vec::new();
        for i in 0..8 {
            edges.push((i, (i + 1) % 8));
            edges.push((8 + i, 8 + (i + 1) % 8));
        }
        edges.push((1, 14));
        edges.push((2, 13));
        Device::from_graph("Rigetti Aspen 16", CouplingGraph::new(16, &edges))
    }

    /// A linear (path) device.
    pub fn linear(n: usize) -> Self {
        let coords: Vec<(i32, i32)> = (0..n).map(|q| (0, q as i32)).collect();
        Device::from_graph(format!("linear {n}"), CouplingGraph::line(n))
            .with_layout(Layout2d::new(coords))
    }

    /// A ring device.
    pub fn ring(n: usize) -> Self {
        Device::from_graph(format!("ring {n}"), CouplingGraph::ring(n))
    }

    /// A fully connected device (ion-trap-style), with the ion-trap
    /// duration profile.
    pub fn ion_trap_all_to_all(n: usize) -> Self {
        Device::from_graph(format!("ion trap {n}"), CouplingGraph::complete(n))
            .with_durations(GateDurations::ion_trap())
    }

    /// Looks a device preset up by name (case-insensitive; accepts the
    /// common short aliases used by the CLI).
    ///
    /// # Examples
    ///
    /// ```
    /// use codar_arch::Device;
    /// assert_eq!(Device::by_name("q20").unwrap().num_qubits(), 20);
    /// assert!(Device::by_name("nonexistent").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<Device> {
        match name.to_ascii_lowercase().as_str() {
            "q16" | "melbourne" | "ibm_q16" => Some(Device::ibm_q16_melbourne()),
            "q20" | "tokyo" | "ibm_q20" => Some(Device::ibm_q20_tokyo()),
            "6x6" | "grid6" | "enfield" => Some(Device::enfield_6x6()),
            "q54" | "sycamore" => Some(Device::google_sycamore54()),
            "q72" | "bristlecone" => Some(Device::google_bristlecone72()),
            "q5" | "yorktown" => Some(Device::ibm_q5_yorktown()),
            "falcon" | "falcon27" | "heavy-hex" => Some(Device::ibm_falcon27()),
            "eagle" | "eagle127" | "q127" => Some(Device::ibm_eagle127()),
            "aspen" | "aspen16" => Some(Device::rigetti_aspen16()),
            _ => None,
        }
    }

    /// All named presets with their CLI aliases.
    pub fn presets() -> Vec<(&'static str, Device)> {
        vec![
            ("q16", Device::ibm_q16_melbourne()),
            ("q20", Device::ibm_q20_tokyo()),
            ("6x6", Device::enfield_6x6()),
            ("q54", Device::google_sycamore54()),
            ("q72", Device::google_bristlecone72()),
            ("q5", Device::ibm_q5_yorktown()),
            ("falcon27", Device::ibm_falcon27()),
            ("aspen16", Device::rigetti_aspen16()),
        ]
    }

    /// Canonical preset names, in [`Device::presets`] order — the list
    /// generators draw device names from without building the devices.
    pub fn preset_names() -> Vec<&'static str> {
        Device::presets()
            .into_iter()
            .map(|(name, _)| name)
            .collect()
    }

    /// The four architectures of the paper's Fig. 8, in paper order.
    pub fn paper_architectures() -> Vec<Device> {
        vec![
            Device::ibm_q16_melbourne(),
            Device::enfield_6x6(),
            Device::ibm_q20_tokyo(),
            Device::google_sycamore54(),
        ]
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} couplings)",
            self.name,
            self.num_qubits(),
            self.graph.edges().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q16_is_2x8_ladder() {
        let d = Device::ibm_q16_melbourne();
        assert_eq!(d.num_qubits(), 16);
        assert_eq!(d.graph().edges().len(), 7 + 7 + 8);
        assert!(d.graph().is_connected());
        assert_eq!(d.distances().diameter(), 8);
    }

    #[test]
    fn q20_tokyo_structure() {
        let d = Device::ibm_q20_tokyo();
        assert_eq!(d.num_qubits(), 20);
        // 4x5 grid: 16 horizontal + 15 vertical + 12 diagonals
        assert_eq!(d.graph().edges().len(), 16 + 15 + 12);
        assert!(d.graph().is_connected());
        // Diagonals shrink the diameter below the plain 4x5 grid's 7.
        assert!(d.distances().diameter() <= 5);
        // Spot-check published diagonal pairs.
        assert!(d.graph().are_adjacent(1, 7));
        assert!(d.graph().are_adjacent(14, 18));
        assert!(!d.graph().are_adjacent(0, 6));
    }

    #[test]
    fn enfield_6x6_grid() {
        let d = Device::enfield_6x6();
        assert_eq!(d.num_qubits(), 36);
        assert_eq!(d.distance(0, 35), 10);
        assert!(d.layout().is_some());
    }

    #[test]
    fn sycamore_structure() {
        let d = Device::google_sycamore54();
        assert_eq!(d.num_qubits(), 54);
        assert!(d.graph().is_connected());
        // No intra-row couplings.
        for r in 0..9usize {
            for c in 0..5usize {
                let q = r * 6 + c;
                assert!(!d.graph().are_adjacent(q, q + 1), "row edge {q}");
            }
        }
        // Degree bounded by 4 as on the real chip.
        for q in 0..54 {
            assert!(d.graph().degree(q) <= 4, "degree of {q}");
        }
    }

    #[test]
    fn bristlecone_structure() {
        let d = Device::google_bristlecone72();
        assert_eq!(d.num_qubits(), 72);
        assert!(d.graph().is_connected());
        for q in 0..72 {
            assert!(d.graph().degree(q) <= 4);
        }
    }

    #[test]
    fn eagle127_heavy_hex_structure() {
        let d = Device::ibm_eagle127();
        assert_eq!(d.num_qubits(), 127);
        assert!(d.graph().is_connected());
        // 103 row qubits in 7 lines + 24 bridges of degree 2.
        assert_eq!(d.graph().edges().len(), (6 * 14 + 12) + 24 * 2);
        for q in 0..127 {
            assert!(d.graph().degree(q) <= 3, "degree of {q}");
        }
        for bridge in 103..127 {
            assert_eq!(d.graph().degree(bridge), 2, "bridge {bridge}");
        }
        assert!(d.layout().is_some());
        // Aliases resolve to it; it is deliberately NOT a preset (the
        // preset list is frozen into service golden fixtures).
        for alias in ["eagle", "eagle127", "q127", "EAGLE"] {
            assert_eq!(Device::by_name(alias).unwrap().num_qubits(), 127);
        }
        assert!(!Device::preset_names().contains(&"eagle127"));
    }

    #[test]
    fn yorktown_bowtie() {
        let d = Device::ibm_q5_yorktown();
        assert_eq!(d.num_qubits(), 5);
        assert_eq!(d.graph().edges().len(), 6);
        assert_eq!(d.graph().degree(2), 4); // the shared center
        assert_eq!(d.distances().diameter(), 2);
    }

    #[test]
    fn falcon27_heavy_hex() {
        let d = Device::ibm_falcon27();
        assert_eq!(d.num_qubits(), 27);
        assert_eq!(d.graph().edges().len(), 28);
        assert!(d.graph().is_connected());
        // Heavy-hex: degrees are 1, 2 or 3 only.
        for q in 0..27 {
            assert!(d.graph().degree(q) <= 3, "degree of {q}");
        }
    }

    #[test]
    fn aspen16_two_rings() {
        let d = Device::rigetti_aspen16();
        assert_eq!(d.num_qubits(), 16);
        assert!(d.graph().is_connected());
        assert_eq!(d.graph().edges().len(), 18);
        // Ring qubits away from the bridges have degree 2.
        assert_eq!(d.graph().degree(5), 2);
        assert_eq!(d.graph().degree(1), 3);
    }

    #[test]
    fn paper_architecture_list() {
        let archs = Device::paper_architectures();
        let names: Vec<&str> = archs.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "IBM Q16 Melbourne",
                "grid 6x6",
                "IBM Q20 Tokyo",
                "Google Q54 Sycamore"
            ]
        );
        let sizes: Vec<usize> = archs.iter().map(|d| d.num_qubits()).collect();
        assert_eq!(sizes, vec![16, 36, 20, 54]);
    }

    #[test]
    fn ion_trap_device_profile() {
        let d = Device::ion_trap_all_to_all(5);
        assert_eq!(d.durations(), &GateDurations::ion_trap());
        assert_eq!(d.distances().diameter(), 1);
    }

    #[test]
    #[should_panic(expected = "layout must cover")]
    fn mismatched_layout_panics() {
        Device::from_graph("x", CouplingGraph::line(3)).with_layout(Layout2d::grid(1, 2));
    }

    #[test]
    fn display_mentions_size() {
        let text = Device::ibm_q20_tokyo().to_string();
        assert!(text.contains("20 qubits"));
    }

    #[test]
    fn clone_shares_distance_matrix() {
        let d = Device::enfield_6x6();
        let d2 = d.clone();
        assert!(std::ptr::eq(d.distances(), d2.distances()));
    }
}
