//! All-pairs shortest distance map `D` (paper Table II).
//!
//! Distances are hop counts on the coupling graph, computed by one BFS
//! per qubit (O(N·E)); disconnected pairs are [`DistanceMatrix::INF`]
//! (the paper's `INT_MAX`).

use crate::graph::{CouplingGraph, PhysQubit};

/// All-pairs hop distances on a [`CouplingGraph`].
///
/// # Examples
///
/// ```
/// use codar_arch::{CouplingGraph, DistanceMatrix};
///
/// let g = CouplingGraph::line(4);
/// let d = DistanceMatrix::new(&g);
/// assert_eq!(d.get(0, 3), 3);
/// assert_eq!(d.get(2, 2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u32>,
}

impl DistanceMatrix {
    /// Distance reported for disconnected pairs.
    pub const INF: u32 = u32::MAX;

    /// Computes all-pairs distances by repeated BFS.
    pub fn new(graph: &CouplingGraph) -> Self {
        let n = graph.num_qubits();
        let mut dist = vec![Self::INF; n * n];
        let mut queue = std::collections::VecDeque::new();
        for source in 0..n {
            let row = &mut dist[source * n..(source + 1) * n];
            row[source] = 0;
            queue.clear();
            queue.push_back(source);
            while let Some(q) = queue.pop_front() {
                let dq = row[q];
                for &next in graph.neighbors(q) {
                    if row[next] == Self::INF {
                        row[next] = dq + 1;
                        queue.push_back(next);
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Number of qubits this matrix covers.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Hop distance between `a` and `b` ([`Self::INF`] if disconnected).
    #[inline]
    pub fn get(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        self.dist[a * self.n + b]
    }

    /// Whether `a` and `b` are in the same connected component.
    pub fn connected(&self, a: PhysQubit, b: PhysQubit) -> bool {
        self.get(a, b) != Self::INF
    }

    /// The graph diameter (max finite distance), or 0 for empty graphs.
    pub fn diameter(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != Self::INF)
            .max()
            .unwrap_or(0)
    }

    /// One shortest path from `a` to `b` (inclusive), or `None` when
    /// disconnected. Greedy descent over the distance matrix.
    pub fn shortest_path(
        &self,
        graph: &CouplingGraph,
        a: PhysQubit,
        b: PhysQubit,
    ) -> Option<Vec<PhysQubit>> {
        if !self.connected(a, b) {
            return None;
        }
        let mut path = vec![a];
        let mut here = a;
        while here != b {
            let next = graph
                .neighbors(here)
                .iter()
                .copied()
                .find(|&n| self.get(n, b) + 1 == self.get(here, b))
                .expect("distance matrix is consistent with the graph");
            path.push(next);
            here = next;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let g = CouplingGraph::line(5);
        let d = DistanceMatrix::new(&g);
        for a in 0..5usize {
            for b in 0..5usize {
                assert_eq!(d.get(a, b), (a as i64 - b as i64).unsigned_abs() as u32);
            }
        }
        assert_eq!(d.diameter(), 4);
    }

    #[test]
    fn grid_distances_are_manhattan() {
        let g = CouplingGraph::grid(3, 3);
        let d = DistanceMatrix::new(&g);
        // corner to corner
        assert_eq!(d.get(0, 8), 4);
        // center to corner
        assert_eq!(d.get(4, 0), 2);
    }

    #[test]
    fn symmetric() {
        let g = CouplingGraph::grid(3, 4);
        let d = DistanceMatrix::new(&g);
        for a in 0..12 {
            for b in 0..12 {
                assert_eq!(d.get(a, b), d.get(b, a));
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_inf() {
        let g = CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        let d = DistanceMatrix::new(&g);
        assert_eq!(d.get(0, 2), DistanceMatrix::INF);
        assert!(!d.connected(1, 3));
        assert!(d.connected(0, 1));
        assert_eq!(d.diameter(), 1);
    }

    #[test]
    fn triangle_inequality_on_ring() {
        let g = CouplingGraph::ring(8);
        let d = DistanceMatrix::new(&g);
        for a in 0..8 {
            for b in 0..8 {
                for c in 0..8 {
                    assert!(d.get(a, c) <= d.get(a, b) + d.get(b, c));
                }
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = CouplingGraph::grid(3, 3);
        let d = DistanceMatrix::new(&g);
        let p = d.shortest_path(&g, 0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len() as u32, d.get(0, 8) + 1);
        for w in p.windows(2) {
            assert!(g.are_adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let g = CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        let d = DistanceMatrix::new(&g);
        assert!(d.shortest_path(&g, 0, 3).is_none());
    }

    #[test]
    fn zero_distance_to_self() {
        let g = CouplingGraph::complete(3);
        let d = DistanceMatrix::new(&g);
        for q in 0..3 {
            assert_eq!(d.get(q, q), 0);
        }
    }
}
