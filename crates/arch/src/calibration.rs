//! Per-device calibration snapshots (the dynamic half of maQAM).
//!
//! Real devices are not uniform: every coupler has its own two-qubit
//! error rate and duration, and every qubit its own T1/T2 and readout
//! error, all of which drift between calibration runs. The
//! reliability-oriented mappers the paper surveys (Sec. II-A-b) score
//! circuits by estimated success probability over exactly this data. A
//! [`CalibrationSnapshot`] records one calibration run for one device:
//!
//! * per-edge two-qubit `error` and `duration` ([`EdgeCalibration`]),
//! * per-qubit `t1_us` / `t2_us` / `readout_error`
//!   ([`QubitCalibration`]),
//! * a `version` tag (monotonically bumped by
//!   [`CalibrationSnapshot::drifted`] and by service reloads), and
//! * JSON load/save ([`CalibrationSnapshot::to_json`] /
//!   [`CalibrationSnapshot::from_json`]) with exact `f64` round-trips.
//!
//! Uniform snapshots (every edge and qubit identical) are the
//! *degenerate* case and reduce to the scalar
//! [`crate::FidelityModel`]; the seeded generators
//! ([`CalibrationSnapshot::synthetic`], [`CalibrationSnapshot::drifted`])
//! produce deterministic non-uniform snapshot sequences for the
//! noise-adaptive routing experiments.

use crate::devices::Device;
use crate::fidelity_model::FidelityModel;
use crate::technology::TechnologyParams;
use codar_circuit::schedule::Time;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;

/// Schema tag stamped into every snapshot JSON document.
pub const CALIBRATION_SCHEMA_VERSION: u32 = 1;

/// Calibration of one coupler (undirected edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCalibration {
    /// Two-qubit gate error probability on this edge, in `(0, 1)`.
    pub error: f64,
    /// Two-qubit gate duration on this edge, in cycles.
    pub duration: Time,
}

/// Calibration of one physical qubit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QubitCalibration {
    /// Relaxation time T1, microseconds (`0` = unreported).
    pub t1_us: f64,
    /// Dephasing time T2, microseconds (`0` = unreported).
    pub t2_us: f64,
    /// Readout error probability, in `[0, 1)`.
    pub readout_error: f64,
}

/// One calibration run of one device (see the module docs).
///
/// # Examples
///
/// ```
/// use codar_arch::{CalibrationSnapshot, Device};
///
/// let device = Device::ibm_q20_tokyo();
/// let snap = CalibrationSnapshot::synthetic(&device, 7);
/// assert_eq!(snap.num_qubits(), 20);
/// let drifted = snap.drifted(1);
/// assert_eq!(drifted.version, snap.version + 1);
/// // JSON round-trips exactly (floats use shortest-round-trip form).
/// let back = CalibrationSnapshot::from_json(&snap.to_json()).unwrap();
/// assert_eq!(back, snap);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSnapshot {
    /// Canonical name of the device this snapshot calibrates.
    pub device: String,
    /// Version tag of this calibration run. Caches key on it: two
    /// snapshots with the same version are assumed interchangeable.
    pub version: u64,
    /// Duration of one scheduling cycle in nanoseconds (`0` disables
    /// the T1/T2 ↔ cycle conversion, like an unreported gate time).
    pub cycle_ns: f64,
    /// Single-qubit gate error probability (devices rarely publish it
    /// per qubit; one scalar matches the Table I reporting).
    pub single_qubit_error: f64,
    /// Per-qubit calibration, indexed by physical qubit.
    qubits: Vec<QubitCalibration>,
    /// Per-edge calibration, sorted by normalized `(a, b)` with
    /// `a < b` — the same normal form `CouplingGraph` keeps.
    edges: Vec<(usize, usize, EdgeCalibration)>,
}

impl CalibrationSnapshot {
    /// Builds a snapshot from explicit parts, normalizing and sorting
    /// the edge list.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range probabilities, non-positive edge durations,
    /// self-loops, duplicate edges and edge endpoints beyond the qubit
    /// count.
    pub fn new(
        device: impl Into<String>,
        version: u64,
        cycle_ns: f64,
        single_qubit_error: f64,
        qubits: Vec<QubitCalibration>,
        edges: Vec<(usize, usize, EdgeCalibration)>,
    ) -> Result<Self, String> {
        if !(cycle_ns.is_finite() && cycle_ns >= 0.0) {
            return Err(format!("cycle_ns {cycle_ns} must be finite and >= 0"));
        }
        check_probability("single_qubit_error", single_qubit_error)?;
        for (q, cal) in qubits.iter().enumerate() {
            for (name, v) in [("t1_us", cal.t1_us), ("t2_us", cal.t2_us)] {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("qubit {q} {name} {v} must be finite and >= 0"));
                }
            }
            check_probability(&format!("qubit {q} readout_error"), cal.readout_error)?;
        }
        let mut normalized: Vec<(usize, usize, EdgeCalibration)> = Vec::with_capacity(edges.len());
        for (a, b, cal) in edges {
            if a == b {
                return Err(format!("self-loop ({a},{a}) is not a coupler"));
            }
            if a >= qubits.len() || b >= qubits.len() {
                return Err(format!(
                    "edge ({a},{b}) out of range for {} qubits",
                    qubits.len()
                ));
            }
            check_probability(&format!("edge ({a},{b}) error"), cal.error)?;
            if cal.duration == 0 {
                return Err(format!("edge ({a},{b}) duration must be positive"));
            }
            normalized.push((a.min(b), a.max(b), cal));
        }
        normalized.sort_by_key(|&(a, b, _)| (a, b));
        if normalized
            .windows(2)
            .any(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
        {
            return Err("duplicate edge in calibration".to_string());
        }
        Ok(CalibrationSnapshot {
            device: device.into(),
            version,
            cycle_ns,
            single_qubit_error,
            qubits,
            edges: normalized,
        })
    }

    /// The degenerate snapshot of a Table I column: every edge carries
    /// `1 − fidelity_2q`, every qubit the column's T1/T2 and readout
    /// error. [`FidelityModel::from_snapshot`] recovers exactly
    /// [`FidelityModel::from_technology`] from it (bit-for-bit EPS).
    pub fn from_technology(device: &Device, params: &TechnologyParams) -> Self {
        let readout_error = 1.0 - params.fidelity_readout.unwrap_or(0.95);
        let qubit = QubitCalibration {
            t1_us: params.t1_us.unwrap_or(0.0),
            t2_us: params.t2_us.unwrap_or(0.0),
            readout_error,
        };
        let edge = EdgeCalibration {
            error: 1.0 - params.fidelity_2q,
            duration: device.durations().two_qubit(),
        };
        CalibrationSnapshot::new(
            device.name(),
            0,
            params.time_1q_ns.unwrap_or(0.0),
            1.0 - params.fidelity_1q,
            vec![qubit; device.num_qubits()],
            device
                .graph()
                .edges()
                .iter()
                .map(|&(a, b)| (a, b, edge))
                .collect(),
        )
        .expect("technology parameters are valid probabilities")
    }

    /// The degenerate snapshot of a scalar [`FidelityModel`]: every
    /// edge and qubit identical. For models without a T2 penalty the
    /// reduction back through [`FidelityModel::from_snapshot`] is exact
    /// (fidelities ≥ 0.5 round-trip through `1 − error` bit-for-bit);
    /// a model carrying `t2_cycles` is stored as `t2_us` against a
    /// 1000 ns cycle and may differ by 1 ulp on reconstruction — use
    /// [`CalibrationSnapshot::from_technology`] when T2 must be exact.
    pub fn uniform(device: &Device, model: &FidelityModel) -> Self {
        let (cycle_ns, t2_us) = match model.t2_cycles {
            Some(t2_cycles) => (1000.0, t2_cycles),
            None => (0.0, 0.0),
        };
        let qubit = QubitCalibration {
            t1_us: 0.0,
            t2_us,
            readout_error: 1.0 - model.readout,
        };
        let edge = EdgeCalibration {
            error: 1.0 - model.two_qubit,
            duration: device.durations().two_qubit(),
        };
        CalibrationSnapshot::new(
            device.name(),
            0,
            cycle_ns,
            1.0 - model.single_qubit,
            vec![qubit; device.num_qubits()],
            device
                .graph()
                .edges()
                .iter()
                .map(|&(a, b)| (a, b, edge))
                .collect(),
        )
        .expect("a valid model yields valid probabilities")
    }

    /// A deterministic synthetic calibration run: plausible
    /// superconducting numbers with strong per-edge and per-qubit
    /// spread (errors span roughly 0.002–0.06), seeded so every
    /// `(device, seed)` pair always produces the same snapshot.
    /// Version starts at 1.
    pub fn synthetic(device: &Device, seed: u64) -> Self {
        // Fold the device name into the seed so the same seed gives
        // decorrelated snapshots on different devices.
        let mut folded = 0xcbf2_9ce4_8422_2325u64 ^ seed;
        for byte in device.name().as_bytes() {
            folded ^= u64::from(*byte);
            folded = folded.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = StdRng::seed_from_u64(folded);
        let qubits = (0..device.num_qubits())
            .map(|_| {
                let t1 = 40.0 + 110.0 * rng.gen::<f64>();
                QubitCalibration {
                    t1_us: t1,
                    t2_us: (15.0 + 100.0 * rng.gen::<f64>()).min(2.0 * t1),
                    readout_error: 0.005 + 0.06 * rng.gen::<f64>(),
                }
            })
            .collect();
        let edges = device
            .graph()
            .edges()
            .iter()
            .map(|&(a, b)| {
                let spread = rng.gen::<f64>();
                let cal = EdgeCalibration {
                    // Quadratic spread: most edges good, a long bad tail.
                    error: 0.002 + 0.06 * spread * spread,
                    duration: device.durations().two_qubit() + u64::from(rng.gen_bool(0.15)),
                };
                (a, b, cal)
            })
            .collect();
        CalibrationSnapshot::new(
            device.name(),
            1,
            50.0,
            0.0003 + 0.0015 * rng.gen::<f64>(),
            qubits,
            edges,
        )
        .expect("synthetic values are in range by construction")
    }

    /// The same snapshot restamped to `version` — the hook fuzzers and
    /// generators use to play version games (stale, equal, far-future)
    /// against the daemon's high-water-mark acceptance check without
    /// re-deriving the physical numbers.
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// The next calibration run: every parameter drifts by a seeded
    /// multiplicative factor (errors ×[0.6, 1.5], T1/T2 ±20 %), the
    /// version is bumped. Deterministic per `(self, seed)`; chaining
    /// `drifted` builds a synthetic snapshot *sequence*.
    pub fn drifted(&self, seed: u64) -> Self {
        let mut rng =
            StdRng::seed_from_u64(seed ^ self.version.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let drift_err = |rng: &mut StdRng, e: f64| -> f64 {
            (e * (0.6 + 0.9 * rng.gen::<f64>())).clamp(1e-5, 0.4)
        };
        let drift_time = |rng: &mut StdRng, t: f64| -> f64 {
            if t == 0.0 {
                0.0
            } else {
                (t * (0.8 + 0.4 * rng.gen::<f64>())).max(1.0)
            }
        };
        let mut next = self.clone();
        next.version = self.version + 1;
        next.single_qubit_error = drift_err(&mut rng, self.single_qubit_error);
        for q in &mut next.qubits {
            q.t1_us = drift_time(&mut rng, q.t1_us);
            q.t2_us = drift_time(&mut rng, q.t2_us);
            if q.t1_us > 0.0 {
                q.t2_us = q.t2_us.min(2.0 * q.t1_us);
            }
            q.readout_error = drift_err(&mut rng, q.readout_error);
        }
        for (_, _, e) in &mut next.edges {
            e.error = drift_err(&mut rng, e.error);
        }
        next
    }

    /// Number of calibrated qubits.
    pub fn num_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Per-qubit calibrations, indexed by physical qubit.
    pub fn qubits(&self) -> &[QubitCalibration] {
        &self.qubits
    }

    /// Per-edge calibrations, sorted by normalized `(a, b)`.
    pub fn edges(&self) -> &[(usize, usize, EdgeCalibration)] {
        &self.edges
    }

    /// The calibration of edge `(a, b)` (order-insensitive).
    pub fn edge(&self, a: usize, b: usize) -> Option<&EdgeCalibration> {
        let key = (a.min(b), a.max(b));
        self.edges
            .binary_search_by_key(&key, |&(a, b, _)| (a, b))
            .ok()
            .map(|i| &self.edges[i].2)
    }

    /// Two-qubit error of edge `(a, b)`, `None` off the coupling map.
    pub fn edge_error(&self, a: usize, b: usize) -> Option<f64> {
        self.edge(a, b).map(|e| e.error)
    }

    /// The worst two-qubit error over all edges (`0` when edgeless) —
    /// the normalizer of the noise-adaptive routing penalty.
    pub fn max_edge_error(&self) -> f64 {
        self.edges
            .iter()
            .map(|&(_, _, e)| e.error)
            .fold(0.0, f64::max)
    }

    /// Whether every edge and every qubit carry bit-identical values —
    /// the degenerate snapshots [`uniform`](CalibrationSnapshot::uniform)
    /// and [`from_technology`](CalibrationSnapshot::from_technology)
    /// produce, which reduce exactly to a scalar [`FidelityModel`].
    pub fn is_uniform(&self) -> bool {
        let edges_uniform = self.edges.windows(2).all(|w| {
            bits(w[0].2.error) == bits(w[1].2.error) && w[0].2.duration == w[1].2.duration
        });
        let qubits_uniform = self.qubits.windows(2).all(|w| {
            bits(w[0].t1_us) == bits(w[1].t1_us)
                && bits(w[0].t2_us) == bits(w[1].t2_us)
                && bits(w[0].readout_error) == bits(w[1].readout_error)
        });
        edges_uniform && qubits_uniform
    }

    /// Checks that this snapshot covers `device` exactly: same qubit
    /// count and one entry per coupling (no more, no fewer).
    ///
    /// # Errors
    ///
    /// A human-readable mismatch description.
    pub fn validate_for(&self, device: &Device) -> Result<(), String> {
        if self.qubits.len() != device.num_qubits() {
            return Err(format!(
                "snapshot calibrates {} qubits but {} has {}",
                self.qubits.len(),
                device.name(),
                device.num_qubits()
            ));
        }
        let device_edges = device.graph().edges();
        if self.edges.len() != device_edges.len() {
            return Err(format!(
                "snapshot calibrates {} edges but {} has {}",
                self.edges.len(),
                device.name(),
                device_edges.len()
            ));
        }
        for (&(sa, sb, _), &(da, db)) in self.edges.iter().zip(device_edges) {
            if (sa, sb) != (da, db) {
                return Err(format!(
                    "snapshot edge ({sa},{sb}) does not match device coupling ({da},{db})"
                ));
            }
        }
        Ok(())
    }

    /// Serializes the snapshot as deterministic JSON. Floats use
    /// Rust's shortest-round-trip formatting, so
    /// [`CalibrationSnapshot::from_json`] recovers every value
    /// bit-for-bit.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"codar-calibration\",");
        let _ = writeln!(out, "  \"schema\": {CALIBRATION_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"device\": {},", json_escape(&self.device));
        let _ = writeln!(out, "  \"version\": {},", self.version);
        let _ = writeln!(out, "  \"cycle_ns\": {},", self.cycle_ns);
        let _ = writeln!(
            out,
            "  \"single_qubit_error\": {},",
            self.single_qubit_error
        );
        out.push_str("  \"qubits\": [\n");
        for (i, q) in self.qubits.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"t1_us\": {}, \"t2_us\": {}, \"readout_error\": {}}}",
                q.t1_us, q.t2_us, q.readout_error
            );
            out.push_str(if i + 1 < self.qubits.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, &(a, b, e)) in self.edges.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"a\": {a}, \"b\": {b}, \"error\": {}, \"duration\": {}}}",
                e.error, e.duration
            );
            out.push_str(if i + 1 < self.edges.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a snapshot from the [`CalibrationSnapshot::to_json`]
    /// format (field order irrelevant, unknown fields rejected by the
    /// strict value grammar but tolerated by name).
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, a wrong `format`
    /// tag, missing fields or out-of-range values.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = mini_json::parse(text)?;
        let obj = value
            .as_object()
            .ok_or("calibration must be a JSON object")?;
        let field = |name: &str| -> Result<&mini_json::Value, String> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing `{name}` field"))
        };
        match field("format")?.as_str() {
            Some("codar-calibration") => {}
            _ => return Err("`format` must be \"codar-calibration\"".to_string()),
        }
        let schema = field("schema")?
            .as_u64()
            .ok_or("`schema` must be a non-negative integer")?;
        if schema != u64::from(CALIBRATION_SCHEMA_VERSION) {
            return Err(format!(
                "unsupported calibration schema {schema} (expected {CALIBRATION_SCHEMA_VERSION})"
            ));
        }
        let device = field("device")?
            .as_str()
            .ok_or("`device` must be a string")?
            .to_string();
        let version = field("version")?
            .as_u64()
            .ok_or("`version` must be a non-negative integer")?;
        let cycle_ns = field("cycle_ns")?
            .as_f64()
            .ok_or("`cycle_ns` must be a number")?;
        let single_qubit_error = field("single_qubit_error")?
            .as_f64()
            .ok_or("`single_qubit_error` must be a number")?;
        let qubits = field("qubits")?
            .as_array()
            .ok_or("`qubits` must be an array")?
            .iter()
            .enumerate()
            .map(|(i, q)| -> Result<QubitCalibration, String> {
                let obj = q
                    .as_object()
                    .ok_or(format!("qubit {i} must be an object"))?;
                let num = |name: &str| -> Result<f64, String> {
                    obj.iter()
                        .find(|(k, _)| k == name)
                        .and_then(|(_, v)| v.as_f64())
                        .ok_or_else(|| format!("qubit {i} needs a numeric `{name}`"))
                };
                Ok(QubitCalibration {
                    t1_us: num("t1_us")?,
                    t2_us: num("t2_us")?,
                    readout_error: num("readout_error")?,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let edges = field("edges")?
            .as_array()
            .ok_or("`edges` must be an array")?
            .iter()
            .enumerate()
            .map(
                |(i, e)| -> Result<(usize, usize, EdgeCalibration), String> {
                    let obj = e.as_object().ok_or(format!("edge {i} must be an object"))?;
                    let get = |name: &str| -> Result<&mini_json::Value, String> {
                        obj.iter()
                            .find(|(k, _)| k == name)
                            .map(|(_, v)| v)
                            .ok_or_else(|| format!("edge {i} needs `{name}`"))
                    };
                    let endpoint = |name: &str| -> Result<usize, String> {
                        get(name)?
                            .as_u64()
                            .and_then(|v| usize::try_from(v).ok())
                            .ok_or_else(|| {
                                format!("edge {i} `{name}` must be a non-negative integer")
                            })
                    };
                    Ok((
                        endpoint("a")?,
                        endpoint("b")?,
                        EdgeCalibration {
                            error: get("error")?
                                .as_f64()
                                .ok_or_else(|| format!("edge {i} `error` must be a number"))?,
                            duration: get("duration")?.as_u64().ok_or_else(|| {
                                format!("edge {i} `duration` must be a non-negative integer")
                            })?,
                        },
                    ))
                },
            )
            .collect::<Result<Vec<_>, _>>()?;
        CalibrationSnapshot::new(device, version, cycle_ns, single_qubit_error, qubits, edges)
    }
}

fn check_probability(name: &str, v: f64) -> Result<(), String> {
    if v.is_finite() && (0.0..1.0).contains(&v) {
        Ok(())
    } else {
        Err(format!("{name} {v} must be in [0, 1)"))
    }
}

#[inline]
fn bits(v: f64) -> u64 {
    v.to_bits()
}

/// JSON string escaping for the snapshot writer (device names are
/// control-free in practice, but escape defensively anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal strict JSON reader, private to the calibration format.
///
/// The full protocol-grade parser lives in `codar-service`; this crate
/// sits below it in the dependency graph, so the snapshot format keeps
/// its own small reader: objects, arrays, strings (standard escapes,
/// no surrogate pairs — calibration data is ASCII), numbers, literals,
/// with a nesting-depth cap.
mod mini_json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(v) => Some(*v),
                _ => None,
            }
        }

        /// Exact non-negative integer (rejects fractions and values
        /// beyond 2^53, which `f64` cannot represent exactly).
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 => {
                    Some(*v as u64)
                }
                _ => None,
            }
        }
    }

    const MAX_DEPTH: usize = 32;

    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(bytes, pos);
                    let key = match parse_value(bytes, pos, depth + 1)? {
                        Value::Str(s) => s,
                        _ => return Err(format!("object key at byte {pos} must be a string")),
                    };
                    skip_ws(bytes, pos);
                    if bytes.get(*pos) != Some(&b':') {
                        return Err(format!("expected `:` at byte {pos}"));
                    }
                    *pos += 1;
                    fields.push((key, parse_value(bytes, pos, depth + 1)?));
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(bytes, pos);
                if bytes.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(bytes, pos, depth + 1)?);
                    skip_ws(bytes, pos);
                    match bytes.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                    }
                }
            }
            Some(b'"') => parse_string(bytes, pos).map(Value::Str),
            Some(b't') if bytes[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if bytes[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if bytes[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            // Exactly four hex digits — from_str_radix
                            // alone would tolerate a leading sign.
                            if !hex.iter().all(u8::is_ascii_hexdigit) {
                                return Err("bad \\u escape".to_string());
                            }
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            let c = char::from_u32(code)
                                .ok_or("surrogate \\u escapes are not supported here")?;
                            out.push(c);
                            *pos += 4;
                        }
                        _ => return Err("unknown escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err("raw control character in string".to_string());
                    }
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let digits = |pos: &mut usize| {
            let from = *pos;
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            *pos > from
        };
        // Integer part: `0` or a non-zero-led digit run.
        match bytes.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(b'1'..=b'9') => {
                digits(pos);
            }
            _ => return Err(format!("invalid number at byte {start}")),
        }
        if bytes.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !digits(pos) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !digits(pos) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number");
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number `{text}`"))?;
        if !v.is_finite() {
            return Err(format!("number `{text}` overflows f64"));
        }
        Ok(Value::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::ibm_q5_yorktown()
    }

    #[test]
    fn synthetic_is_deterministic_and_valid() {
        let d = device();
        let a = CalibrationSnapshot::synthetic(&d, 42);
        let b = CalibrationSnapshot::synthetic(&d, 42);
        assert_eq!(a, b);
        assert_ne!(a, CalibrationSnapshot::synthetic(&d, 43));
        a.validate_for(&d).unwrap();
        assert!(!a.is_uniform());
        assert!(a.max_edge_error() > 0.0);
        // Same seed on a different device decorrelates.
        let q20 = Device::ibm_q20_tokyo();
        let other = CalibrationSnapshot::synthetic(&q20, 42);
        assert_ne!(a.qubits()[0], other.qubits()[0]);
    }

    #[test]
    fn drift_sequences_bump_versions_and_change_values() {
        let d = device();
        let s0 = CalibrationSnapshot::synthetic(&d, 7);
        let s1 = s0.drifted(9);
        let s2 = s1.drifted(9);
        assert_eq!((s0.version, s1.version, s2.version), (1, 2, 3));
        assert_ne!(s0.edges()[0].2.error, s1.edges()[0].2.error);
        // Deterministic: the same drift twice is the same snapshot.
        assert_eq!(s1, s0.drifted(9));
        s2.validate_for(&d).unwrap();
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        let d = Device::ibm_q20_tokyo();
        let mut snap = CalibrationSnapshot::synthetic(&d, 1).drifted(3);
        snap.device = "weird \"name\"\n".to_string();
        let json = snap.to_json();
        let back = CalibrationSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Bit-for-bit, not just approximately.
        for ((_, _, a), (_, _, b)) in snap.edges().iter().zip(back.edges()) {
            assert_eq!(a.error.to_bits(), b.error.to_bits());
        }
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for (text, needle) in [
            ("", "unexpected end"),
            ("[1,2]", "must be a JSON object"),
            ("{\"format\": \"nope\"}", "`format`"),
            (
                "{\"format\": \"codar-calibration\", \"schema\": 99}",
                "unsupported calibration schema",
            ),
            (
                "{\"format\": \"codar-calibration\", \"schema\": 1}",
                "missing `device`",
            ),
            ("{\"a\": .5}", "invalid number"),
            ("{\"a\": 01}", "expected `,` or `}`"),
            ("{\"a\": \"\\u+041\"}", "bad \\u escape"),
            ("{\"a\": \"\\uBEEG\"}", "bad \\u escape"),
            ("{\"a\": 1,}", "invalid number"),
            ("{\"a\": 1e999}", "overflows"),
        ] {
            let err = CalibrationSnapshot::from_json(text).expect_err(text);
            assert!(err.contains(needle), "`{text}` gave `{err}`");
        }
        // Depth cap: deeply nested input errors instead of overflowing.
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(CalibrationSnapshot::from_json(&deep)
            .unwrap_err()
            .contains("nesting"));
    }

    #[test]
    fn constructor_validates_edges_and_probabilities() {
        let q = QubitCalibration {
            t1_us: 50.0,
            t2_us: 40.0,
            readout_error: 0.02,
        };
        let e = EdgeCalibration {
            error: 0.01,
            duration: 2,
        };
        let bad_cases: Vec<(Vec<(usize, usize, EdgeCalibration)>, &str)> = vec![
            (vec![(0, 0, e)], "self-loop"),
            (vec![(0, 9, e)], "out of range"),
            (vec![(0, 1, e), (1, 0, e)], "duplicate"),
            (
                vec![(
                    0,
                    1,
                    EdgeCalibration {
                        error: 1.5,
                        duration: 2,
                    },
                )],
                "must be in [0, 1)",
            ),
            (
                vec![(
                    0,
                    1,
                    EdgeCalibration {
                        error: 0.1,
                        duration: 0,
                    },
                )],
                "duration must be positive",
            ),
        ];
        for (edges, needle) in bad_cases {
            let err =
                CalibrationSnapshot::new("d", 0, 50.0, 0.001, vec![q; 3], edges).expect_err(needle);
            assert!(err.contains(needle), "{err}");
        }
        // Edges normalize and sort.
        let snap =
            CalibrationSnapshot::new("d", 0, 50.0, 0.001, vec![q; 3], vec![(2, 1, e), (1, 0, e)])
                .unwrap();
        assert_eq!(snap.edges()[0].0, 0);
        assert_eq!(snap.edge(2, 1).unwrap().error, 0.01);
        assert_eq!(snap.edge_error(0, 2), None);
    }

    #[test]
    fn uniform_and_technology_snapshots_are_uniform() {
        let d = device();
        let model = FidelityModel::new(0.999, 0.97, 0.95);
        let snap = CalibrationSnapshot::uniform(&d, &model);
        assert!(snap.is_uniform());
        snap.validate_for(&d).unwrap();
        for params in TechnologyParams::table1() {
            let snap = CalibrationSnapshot::from_technology(&d, &params);
            assert!(snap.is_uniform(), "{}", params.device);
            snap.validate_for(&d).unwrap();
        }
    }

    #[test]
    fn validate_for_catches_wrong_devices() {
        let snap = CalibrationSnapshot::synthetic(&device(), 1);
        let err = snap.validate_for(&Device::ibm_q20_tokyo()).unwrap_err();
        assert!(err.contains("qubits"), "{err}");
    }
}
