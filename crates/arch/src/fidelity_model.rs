//! Analytic circuit success estimation from device error rates.
//!
//! The reliability-oriented mappers the paper discusses (Sec. II-A-b)
//! score circuits by their *estimated success probability* — the
//! product of per-gate fidelities, optionally discounted by idle
//! decoherence. This module provides that metric over the Table I
//! numbers, complementing the trajectory simulator (which is exact but
//! only feasible for small circuits).

use crate::calibration::CalibrationSnapshot;
use crate::duration::GateDurations;
use crate::technology::TechnologyParams;
use codar_circuit::schedule::Schedule;
use codar_circuit::{Circuit, Gate, GateKind};

/// Per-edge/per-qubit fidelity tables derived from a non-uniform
/// [`CalibrationSnapshot`] (see [`FidelityModel::from_snapshot`]).
#[derive(Debug, Clone, PartialEq)]
struct CalibrationTables {
    num_qubits: usize,
    /// `edge_fidelity[a * n + b]` for normalized `a < b`; `-1.0` marks
    /// "no entry" (falls back to the scalar `two_qubit`).
    edge_fidelity: Vec<f64>,
    /// Per-qubit readout fidelity.
    readout_fidelity: Vec<f64>,
    /// Per-qubit T2 in cycles; `0.0` disables the idle penalty for
    /// that qubit.
    t2_cycles: Vec<f64>,
}

/// Per-operation fidelities of a device.
///
/// The scalar fields describe a *uniform* device (the Table I view).
/// [`FidelityModel::from_snapshot`] generalizes the model to consume a
/// [`CalibrationSnapshot`]: a uniform snapshot collapses back to the
/// scalar model (so EPS stays bit-identical with the pre-calibration
/// code path), while a drifted snapshot attaches per-edge and
/// per-qubit tables that [`FidelityModel::success_probability`] reads
/// per gate.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityModel {
    /// Single-qubit gate fidelity.
    pub single_qubit: f64,
    /// Two-qubit gate fidelity.
    pub two_qubit: f64,
    /// Readout fidelity (per measurement).
    pub readout: f64,
    /// Coherence time expressed in *cycles* (T2 / cycle time); idle
    /// qubits decay as `exp(-idle_cycles / t2_cycles)`. `None` disables
    /// the idle penalty.
    pub t2_cycles: Option<f64>,
    /// Per-edge/per-qubit overrides from a non-uniform snapshot. The
    /// scalar fields above then hold means, for display only.
    calibration: Option<CalibrationTables>,
}

impl FidelityModel {
    /// Builds a model from explicit fidelities.
    ///
    /// # Panics
    ///
    /// Panics if a fidelity is outside `(0, 1]`.
    pub fn new(single_qubit: f64, two_qubit: f64, readout: f64) -> Self {
        for (name, f) in [
            ("single-qubit", single_qubit),
            ("two-qubit", two_qubit),
            ("readout", readout),
        ] {
            assert!(f > 0.0 && f <= 1.0, "{name} fidelity {f} out of (0, 1]");
        }
        FidelityModel {
            single_qubit,
            two_qubit,
            readout,
            t2_cycles: None,
            calibration: None,
        }
    }

    /// Adds an idle-decoherence penalty with the given T2 in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `t2_cycles` is not positive.
    pub fn with_t2_cycles(mut self, t2_cycles: f64) -> Self {
        assert!(t2_cycles > 0.0, "T2 must be positive");
        self.t2_cycles = Some(t2_cycles);
        self
    }

    /// Builds the model from a Table I column (readout defaults to 0.95
    /// when unreported; T2 converted using the device's 1q gate time as
    /// the cycle).
    pub fn from_technology(params: &TechnologyParams) -> Self {
        let mut model = FidelityModel::new(
            params.fidelity_1q,
            params.fidelity_2q,
            params.fidelity_readout.unwrap_or(0.95),
        );
        if let (Some(t2_us), Some(t1q_ns)) = (params.t2_us, params.time_1q_ns) {
            if t1q_ns > 0.0 {
                model = model.with_t2_cycles(t2_us * 1000.0 / t1q_ns);
            }
        }
        model
    }

    /// Builds the model a [`CalibrationSnapshot`] describes.
    ///
    /// A **uniform** snapshot (every edge and qubit bit-identical —
    /// what [`CalibrationSnapshot::uniform`] and
    /// [`CalibrationSnapshot::from_technology`] produce) is the
    /// degenerate case and collapses to the plain scalar model, so its
    /// [`FidelityModel::success_probability`] runs the exact
    /// pre-calibration code path and returns bit-identical EPS. A
    /// non-uniform snapshot attaches per-edge and per-qubit tables:
    /// each two-qubit gate is charged its own edge's fidelity, each
    /// measurement its qubit's readout fidelity, and the idle penalty
    /// integrates `idle_q / t2_q` per qubit.
    ///
    /// T2 is converted from microseconds with the snapshot's
    /// `cycle_ns` using the same expression as
    /// [`FidelityModel::from_technology`]
    /// (`t2_us * 1000.0 / cycle_ns`); `cycle_ns == 0` disables the
    /// idle penalty, like an unreported gate time.
    pub fn from_snapshot(snapshot: &CalibrationSnapshot) -> FidelityModel {
        let n = snapshot.num_qubits();
        let single_qubit = 1.0 - snapshot.single_qubit_error;
        let t2_cycles_of = |t2_us: f64| -> Option<f64> {
            (snapshot.cycle_ns > 0.0 && t2_us > 0.0).then(|| t2_us * 1000.0 / snapshot.cycle_ns)
        };
        if snapshot.is_uniform() {
            // The degenerate reduction: reconstruct the scalar model
            // from any representative edge/qubit (they are all
            // bit-identical). `1 - (1 - f)` is exact for f >= 0.5.
            let two_qubit = 1.0 - snapshot.edges().first().map_or(0.0, |&(_, _, e)| e.error);
            let readout = 1.0 - snapshot.qubits().first().map_or(0.05, |q| q.readout_error);
            let mut model = FidelityModel::new(single_qubit, two_qubit, readout);
            if let Some(t2) = snapshot
                .qubits()
                .first()
                .and_then(|q| t2_cycles_of(q.t2_us))
            {
                model = model.with_t2_cycles(t2);
            }
            return model;
        }
        let mut edge_fidelity = vec![-1.0; n * n];
        let mut error_sum = 0.0;
        for &(a, b, e) in snapshot.edges() {
            edge_fidelity[a * n + b] = 1.0 - e.error;
            error_sum += e.error;
        }
        let readout_fidelity: Vec<f64> = snapshot
            .qubits()
            .iter()
            .map(|q| 1.0 - q.readout_error)
            .collect();
        let t2_cycles: Vec<f64> = snapshot
            .qubits()
            .iter()
            .map(|q| t2_cycles_of(q.t2_us).unwrap_or(0.0))
            .collect();
        let mean = |values: &[f64]| -> f64 {
            if values.is_empty() {
                1.0
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        let mean_t2: Vec<f64> = t2_cycles.iter().copied().filter(|&t| t > 0.0).collect();
        FidelityModel {
            single_qubit,
            two_qubit: 1.0
                - if snapshot.edges().is_empty() {
                    0.0
                } else {
                    error_sum / snapshot.edges().len() as f64
                },
            readout: mean(&readout_fidelity),
            t2_cycles: (!mean_t2.is_empty()).then(|| mean(&mean_t2)),
            calibration: Some(CalibrationTables {
                num_qubits: n,
                edge_fidelity,
                readout_fidelity,
                t2_cycles,
            }),
        }
    }

    /// Whether this model carries per-edge/per-qubit calibration
    /// tables (false for scalar models and uniform snapshots).
    pub fn is_calibrated(&self) -> bool {
        self.calibration.is_some()
    }

    /// The fidelity charged for one gate.
    pub fn of_gate(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Barrier => 1.0,
            GateKind::Measure => self.readout,
            GateKind::Reset => self.single_qubit,
            GateKind::Swap => self.two_qubit.powi(3), // 3 CNOTs
            GateKind::Ccx | GateKind::Cswap => self.two_qubit.powi(6),
            k if k.is_two_qubit() => self.two_qubit,
            _ => self.single_qubit,
        }
    }

    /// The fidelity charged for one gate under the calibration tables
    /// (two-qubit gates read their physical edge, measurements their
    /// qubit's readout; everything else falls back to the scalars).
    /// Gate endpoints must therefore be *physical* qubit indices —
    /// i.e. the circuit has been routed.
    fn of_gate_at(&self, gate: &Gate, tables: &CalibrationTables) -> f64 {
        let edge = |qubits: &[usize]| -> f64 {
            let (a, b) = (qubits[0].min(qubits[1]), qubits[0].max(qubits[1]));
            match tables.edge_fidelity.get(a * tables.num_qubits + b) {
                Some(&f) if f >= 0.0 => f,
                _ => self.two_qubit,
            }
        };
        match gate.kind {
            GateKind::Barrier => 1.0,
            GateKind::Measure => tables
                .readout_fidelity
                .get(gate.qubits[0])
                .copied()
                .unwrap_or(self.readout),
            GateKind::Reset => self.single_qubit,
            GateKind::Swap => edge(&gate.qubits).powi(3), // 3 CNOTs
            GateKind::Ccx | GateKind::Cswap => self.two_qubit.powi(6),
            k if k.is_two_qubit() => edge(&gate.qubits),
            _ => self.single_qubit,
        }
    }

    /// Estimated success probability of `circuit`: the product of gate
    /// fidelities, times an idle-decoherence factor when T2 is set
    /// (idle time measured on the ASAP schedule under `durations`).
    ///
    /// With calibration tables attached (see
    /// [`FidelityModel::from_snapshot`]) every factor is read from the
    /// gate's own edge/qubit and the idle penalty uses each qubit's
    /// own T2; the circuit's qubit indices must then be physical.
    pub fn success_probability(&self, circuit: &Circuit, durations: &GateDurations) -> f64 {
        match &self.calibration {
            None => self.success_probability_scalar(circuit, durations),
            Some(tables) => self.success_probability_calibrated(circuit, durations, tables),
        }
    }

    /// The scalar (pre-calibration) EPS path, byte-for-byte unchanged.
    fn success_probability_scalar(&self, circuit: &Circuit, durations: &GateDurations) -> f64 {
        let mut p: f64 = circuit
            .gates()
            .iter()
            .map(|g| self.of_gate(g.kind))
            .product();
        if let Some(t2) = self.t2_cycles {
            let schedule = Schedule::asap(circuit, |g| durations.of(g));
            let mut busy = vec![0u64; circuit.num_qubits()];
            for (i, gate) in circuit.gates().iter().enumerate() {
                let dur = durations.of(gate);
                let _ = schedule.start[i];
                for &q in &gate.qubits {
                    busy[q] += dur;
                }
            }
            // A qubit idles from its first gate to the makespan minus
            // its busy time; approximate the active window as the whole
            // makespan for qubits that are used at all.
            let idle_total: u64 = busy
                .iter()
                .filter(|&&b| b > 0)
                .map(|&b| schedule.makespan.saturating_sub(b))
                .sum();
            p *= (-(idle_total as f64) / t2).exp();
        }
        p
    }

    /// The table-driven EPS path: per-edge gate factors and a
    /// per-qubit idle penalty `exp(-Σ_q idle_q / t2_q)`.
    fn success_probability_calibrated(
        &self,
        circuit: &Circuit,
        durations: &GateDurations,
        tables: &CalibrationTables,
    ) -> f64 {
        let mut p: f64 = circuit
            .gates()
            .iter()
            .map(|g| self.of_gate_at(g, tables))
            .product();
        if tables.t2_cycles.iter().any(|&t| t > 0.0) {
            let schedule = Schedule::asap(circuit, |g| durations.of(g));
            let mut busy = vec![0u64; circuit.num_qubits()];
            for gate in circuit.gates() {
                let dur = durations.of(gate);
                for &q in &gate.qubits {
                    busy[q] += dur;
                }
            }
            let mut idle_ratio = 0.0;
            for (q, &b) in busy.iter().enumerate() {
                let t2 = tables.t2_cycles.get(q).copied().unwrap_or(0.0);
                if b > 0 && t2 > 0.0 {
                    idle_ratio += schedule.makespan.saturating_sub(b) as f64 / t2;
                }
            }
            p *= (-idle_ratio).exp();
        }
        p
    }
}

/// The portfolio selection score of one routed candidate: EPS under
/// `model` when a calibration model is active, otherwise the
/// depth+swap fallback `1 / (1 + weighted_depth + swaps)`.
///
/// Both branches are strictly positive finite f64s, so ordering by
/// `score.to_bits()` descending is exactly numeric descending — the
/// property the portfolio's deterministic tie-break (score bits, then
/// variant label) relies on. The fallback prefers fewer weighted-depth
/// cycles and fewer SWAPs, which is monotone with the scalar EPS model
/// on a uniform device.
pub fn selection_score(
    model: Option<&FidelityModel>,
    circuit: &Circuit,
    durations: &GateDurations,
    weighted_depth: u64,
    swaps: u64,
) -> f64 {
    match model {
        Some(model) => model.success_probability(circuit, durations),
        None => 1.0 / (1.0 + weighted_depth as f64 + swaps as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::Circuit;

    fn model() -> FidelityModel {
        FidelityModel::new(0.999, 0.97, 0.95)
    }

    #[test]
    fn empty_circuit_succeeds_certainly() {
        let c = Circuit::new(3);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert_eq!(p, 1.0);
    }

    #[test]
    fn gate_fidelities_multiply() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.measure(0, 0);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert!((p - 0.999 * 0.97 * 0.95).abs() < 1e-12);
    }

    #[test]
    fn swap_costs_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert!((p - 0.97f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn idle_penalty_reduces_success() {
        let mut c = Circuit::new(2);
        c.h(0);
        for _ in 0..20 {
            c.t(1); // q0 idles 19 cycles
        }
        let tau = GateDurations::superconducting();
        let without = model().success_probability(&c, &tau);
        let with = model().with_t2_cycles(100.0).success_probability(&c, &tau);
        assert!(with < without);
    }

    #[test]
    fn shorter_schedule_scores_higher_with_t2() {
        // Same unitary gate multiset; barriers force the serial variant
        // into twice the makespan, so each qubit idles half the time.
        let mut serial = Circuit::new(2);
        for _ in 0..10 {
            serial.t(0);
            serial.barrier(vec![0, 1]);
            serial.t(1);
            serial.barrier(vec![0, 1]);
        }
        let parallel = {
            let mut c = Circuit::new(2);
            for _ in 0..10 {
                c.t(0);
                c.t(1);
            }
            c
        };
        let m = model().with_t2_cycles(50.0);
        let tau = GateDurations::superconducting();
        assert!(m.success_probability(&parallel, &tau) > m.success_probability(&serial, &tau));
    }

    #[test]
    fn from_table1_produces_valid_models() {
        for params in TechnologyParams::table1() {
            let m = FidelityModel::from_technology(&params);
            assert!(m.single_qubit > 0.9);
            assert!(m.two_qubit > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn invalid_fidelity_rejected() {
        FidelityModel::new(1.2, 0.9, 0.9);
    }

    #[test]
    fn uniform_snapshot_collapses_to_the_scalar_model() {
        use crate::devices::Device;
        let device = Device::ibm_q5_yorktown();
        let scalar = model();
        let snap = CalibrationSnapshot::uniform(&device, &scalar);
        let from_snap = FidelityModel::from_snapshot(&snap);
        assert!(!from_snap.is_calibrated());
        assert_eq!(from_snap, scalar);
        // EPS runs the identical code path → bit-identical results.
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.swap(1, 2);
        c.measure(2, 0);
        let tau = GateDurations::superconducting();
        assert_eq!(
            from_snap.success_probability(&c, &tau).to_bits(),
            scalar.success_probability(&c, &tau).to_bits()
        );
    }

    #[test]
    fn technology_snapshot_matches_from_technology_bit_for_bit() {
        use crate::devices::Device;
        let device = Device::ibm_q5_yorktown();
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.measure(0, 0);
        let tau = device.durations();
        for params in TechnologyParams::table1() {
            let old = FidelityModel::from_technology(&params);
            let snap = CalibrationSnapshot::from_technology(&device, &params);
            let new = FidelityModel::from_snapshot(&snap);
            assert_eq!(new, old, "{}", params.device);
            assert_eq!(
                new.success_probability(&c, tau).to_bits(),
                old.success_probability(&c, tau).to_bits(),
                "{}",
                params.device
            );
        }
    }

    #[test]
    fn drifted_snapshot_charges_per_edge_fidelities() {
        use crate::devices::Device;
        let device = Device::ibm_q5_yorktown();
        let snap = CalibrationSnapshot::synthetic(&device, 3);
        let model = FidelityModel::from_snapshot(&snap);
        assert!(model.is_calibrated());
        // A single CX on each edge: EPS must track that edge's error
        // (modulo the identical idle penalty of a 1-gate circuit).
        let tau = device.durations();
        let mut eps_by_edge = Vec::new();
        for &(a, b, e) in snap.edges() {
            let mut c = Circuit::new(device.num_qubits());
            c.cx(a, b);
            eps_by_edge.push((e.error, model.success_probability(&c, tau)));
        }
        // Higher edge error → lower EPS, strictly.
        let mut sorted = eps_by_edge.clone();
        sorted.sort_by(|x, y| x.0.total_cmp(&y.0));
        for w in sorted.windows(2) {
            assert!(
                w[0].1 >= w[1].1,
                "edge with error {} scored below edge with error {}",
                w[0].0,
                w[1].0
            );
        }
    }

    #[test]
    fn per_qubit_readout_is_charged_for_measurements() {
        use crate::devices::Device;
        let device = Device::ibm_q5_yorktown();
        let mut snap = CalibrationSnapshot::synthetic(&device, 5);
        // Make qubit readout errors strongly unequal via drift.
        snap = snap.drifted(2);
        let model = FidelityModel::from_snapshot(&snap);
        let tau = device.durations();
        let eps_of = |q: usize| {
            let mut c = Circuit::new(device.num_qubits());
            c.measure(q, 0);
            model.success_probability(&c, tau)
        };
        let (q_best, q_worst) = {
            let mut idx: Vec<usize> = (0..device.num_qubits()).collect();
            idx.sort_by(|&a, &b| {
                snap.qubits()[a]
                    .readout_error
                    .total_cmp(&snap.qubits()[b].readout_error)
            });
            (idx[0], idx[device.num_qubits() - 1])
        };
        assert!(eps_of(q_best) > eps_of(q_worst));
    }
}
