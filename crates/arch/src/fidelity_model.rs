//! Analytic circuit success estimation from device error rates.
//!
//! The reliability-oriented mappers the paper discusses (Sec. II-A-b)
//! score circuits by their *estimated success probability* — the
//! product of per-gate fidelities, optionally discounted by idle
//! decoherence. This module provides that metric over the Table I
//! numbers, complementing the trajectory simulator (which is exact but
//! only feasible for small circuits).

use crate::duration::GateDurations;
use crate::technology::TechnologyParams;
use codar_circuit::schedule::Schedule;
use codar_circuit::{Circuit, GateKind};

/// Per-operation fidelities of a device.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityModel {
    /// Single-qubit gate fidelity.
    pub single_qubit: f64,
    /// Two-qubit gate fidelity.
    pub two_qubit: f64,
    /// Readout fidelity (per measurement).
    pub readout: f64,
    /// Coherence time expressed in *cycles* (T2 / cycle time); idle
    /// qubits decay as `exp(-idle_cycles / t2_cycles)`. `None` disables
    /// the idle penalty.
    pub t2_cycles: Option<f64>,
}

impl FidelityModel {
    /// Builds a model from explicit fidelities.
    ///
    /// # Panics
    ///
    /// Panics if a fidelity is outside `(0, 1]`.
    pub fn new(single_qubit: f64, two_qubit: f64, readout: f64) -> Self {
        for (name, f) in [
            ("single-qubit", single_qubit),
            ("two-qubit", two_qubit),
            ("readout", readout),
        ] {
            assert!(f > 0.0 && f <= 1.0, "{name} fidelity {f} out of (0, 1]");
        }
        FidelityModel {
            single_qubit,
            two_qubit,
            readout,
            t2_cycles: None,
        }
    }

    /// Adds an idle-decoherence penalty with the given T2 in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `t2_cycles` is not positive.
    pub fn with_t2_cycles(mut self, t2_cycles: f64) -> Self {
        assert!(t2_cycles > 0.0, "T2 must be positive");
        self.t2_cycles = Some(t2_cycles);
        self
    }

    /// Builds the model from a Table I column (readout defaults to 0.95
    /// when unreported; T2 converted using the device's 1q gate time as
    /// the cycle).
    pub fn from_technology(params: &TechnologyParams) -> Self {
        let mut model = FidelityModel::new(
            params.fidelity_1q,
            params.fidelity_2q,
            params.fidelity_readout.unwrap_or(0.95),
        );
        if let (Some(t2_us), Some(t1q_ns)) = (params.t2_us, params.time_1q_ns) {
            if t1q_ns > 0.0 {
                model = model.with_t2_cycles(t2_us * 1000.0 / t1q_ns);
            }
        }
        model
    }

    /// The fidelity charged for one gate.
    pub fn of_gate(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Barrier => 1.0,
            GateKind::Measure => self.readout,
            GateKind::Reset => self.single_qubit,
            GateKind::Swap => self.two_qubit.powi(3), // 3 CNOTs
            GateKind::Ccx | GateKind::Cswap => self.two_qubit.powi(6),
            k if k.is_two_qubit() => self.two_qubit,
            _ => self.single_qubit,
        }
    }

    /// Estimated success probability of `circuit`: the product of gate
    /// fidelities, times an idle-decoherence factor when T2 is set
    /// (idle time measured on the ASAP schedule under `durations`).
    pub fn success_probability(&self, circuit: &Circuit, durations: &GateDurations) -> f64 {
        let mut p: f64 = circuit
            .gates()
            .iter()
            .map(|g| self.of_gate(g.kind))
            .product();
        if let Some(t2) = self.t2_cycles {
            let schedule = Schedule::asap(circuit, |g| durations.of(g));
            let mut busy = vec![0u64; circuit.num_qubits()];
            for (i, gate) in circuit.gates().iter().enumerate() {
                let dur = durations.of(gate);
                let _ = schedule.start[i];
                for &q in &gate.qubits {
                    busy[q] += dur;
                }
            }
            // A qubit idles from its first gate to the makespan minus
            // its busy time; approximate the active window as the whole
            // makespan for qubits that are used at all.
            let idle_total: u64 = busy
                .iter()
                .filter(|&&b| b > 0)
                .map(|&b| schedule.makespan.saturating_sub(b))
                .sum();
            p *= (-(idle_total as f64) / t2).exp();
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::Circuit;

    fn model() -> FidelityModel {
        FidelityModel::new(0.999, 0.97, 0.95)
    }

    #[test]
    fn empty_circuit_succeeds_certainly() {
        let c = Circuit::new(3);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert_eq!(p, 1.0);
    }

    #[test]
    fn gate_fidelities_multiply() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.measure(0, 0);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert!((p - 0.999 * 0.97 * 0.95).abs() < 1e-12);
    }

    #[test]
    fn swap_costs_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let p = model().success_probability(&c, &GateDurations::superconducting());
        assert!((p - 0.97f64.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn idle_penalty_reduces_success() {
        let mut c = Circuit::new(2);
        c.h(0);
        for _ in 0..20 {
            c.t(1); // q0 idles 19 cycles
        }
        let tau = GateDurations::superconducting();
        let without = model().success_probability(&c, &tau);
        let with = model().with_t2_cycles(100.0).success_probability(&c, &tau);
        assert!(with < without);
    }

    #[test]
    fn shorter_schedule_scores_higher_with_t2() {
        // Same unitary gate multiset; barriers force the serial variant
        // into twice the makespan, so each qubit idles half the time.
        let mut serial = Circuit::new(2);
        for _ in 0..10 {
            serial.t(0);
            serial.barrier(vec![0, 1]);
            serial.t(1);
            serial.barrier(vec![0, 1]);
        }
        let parallel = {
            let mut c = Circuit::new(2);
            for _ in 0..10 {
                c.t(0);
                c.t(1);
            }
            c
        };
        let m = model().with_t2_cycles(50.0);
        let tau = GateDurations::superconducting();
        assert!(m.success_probability(&parallel, &tau) > m.success_probability(&serial, &tau));
    }

    #[test]
    fn from_table1_produces_valid_models() {
        for params in TechnologyParams::table1() {
            let m = FidelityModel::from_technology(&params);
            assert!(m.single_qubit > 0.9);
            assert!(m.two_qubit > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "fidelity")]
    fn invalid_fidelity_rejected() {
        FidelityModel::new(1.2, 0.9, 0.9);
    }
}
