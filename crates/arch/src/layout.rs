//! 2-D physical layouts for lattice devices.
//!
//! CODAR's fine heuristic `Hfine` (paper Eq. 2) needs the horizontal and
//! vertical distance between two physical qubits on a 2-D lattice. A
//! [`Layout2d`] assigns integer coordinates to each qubit; devices that
//! are not lattices simply have no layout and `Hfine` degrades to 0.

use crate::graph::PhysQubit;

/// Integer 2-D coordinates for each physical qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout2d {
    coords: Vec<(i32, i32)>,
}

impl Layout2d {
    /// Creates a layout from per-qubit `(row, col)` coordinates.
    pub fn new(coords: Vec<(i32, i32)>) -> Self {
        Layout2d { coords }
    }

    /// Row-major grid coordinates for `rows × cols` qubits.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut coords = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                coords.push((r as i32, c as i32));
            }
        }
        Layout2d { coords }
    }

    /// Number of qubits covered.
    pub fn num_qubits(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates of `q`.
    pub fn coord(&self, q: PhysQubit) -> (i32, i32) {
        self.coords[q]
    }

    /// Vertical distance `VD` between two qubits (paper Eq. 2).
    pub fn vertical_distance(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        (self.coords[a].0 - self.coords[b].0).unsigned_abs()
    }

    /// Horizontal distance `HD` between two qubits (paper Eq. 2).
    pub fn horizontal_distance(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        (self.coords[a].1 - self.coords[b].1).unsigned_abs()
    }

    /// `|VD − HD|` — the quantity `Hfine` minimizes: the smaller it is,
    /// the more shortest Manhattan routes remain available.
    pub fn axis_imbalance(&self, a: PhysQubit, b: PhysQubit) -> u32 {
        self.vertical_distance(a, b)
            .abs_diff(self.horizontal_distance(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_coords_row_major() {
        let l = Layout2d::grid(2, 3);
        assert_eq!(l.coord(0), (0, 0));
        assert_eq!(l.coord(2), (0, 2));
        assert_eq!(l.coord(3), (1, 0));
        assert_eq!(l.num_qubits(), 6);
    }

    #[test]
    fn distances() {
        let l = Layout2d::grid(3, 3);
        // q0 = (0,0), q8 = (2,2)
        assert_eq!(l.vertical_distance(0, 8), 2);
        assert_eq!(l.horizontal_distance(0, 8), 2);
        assert_eq!(l.axis_imbalance(0, 8), 0);
        // q0 = (0,0), q2 = (0,2)
        assert_eq!(l.axis_imbalance(0, 2), 2);
    }

    #[test]
    fn imbalance_symmetric() {
        let l = Layout2d::grid(4, 5);
        for a in 0..20 {
            for b in 0..20 {
                assert_eq!(l.axis_imbalance(a, b), l.axis_imbalance(b, a));
            }
        }
    }

    #[test]
    fn custom_coordinates() {
        let l = Layout2d::new(vec![(0, 0), (5, -3)]);
        assert_eq!(l.vertical_distance(0, 1), 5);
        assert_eq!(l.horizontal_distance(0, 1), 3);
        assert_eq!(l.axis_imbalance(0, 1), 2);
    }
}
