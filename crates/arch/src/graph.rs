//! Coupling graphs: which physical qubit pairs admit a two-qubit gate.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a physical qubit on a device.
pub type PhysQubit = usize;

/// An undirected coupling graph `M = (QH, EH)` (paper Table II).
///
/// Two-qubit gates may be applied only across edges. The graph is
/// undirected: modern devices (and the paper) treat CNOT direction as
/// free, since a reversed CNOT costs only single-qubit basis changes.
///
/// # Examples
///
/// ```
/// use codar_arch::CouplingGraph;
///
/// let line = CouplingGraph::line(4);
/// assert!(line.are_adjacent(1, 2));
/// assert!(!line.are_adjacent(0, 3));
/// assert_eq!(line.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    num_qubits: usize,
    adjacency: Vec<Vec<PhysQubit>>,
    edges: Vec<(PhysQubit, PhysQubit)>,
}

impl CouplingGraph {
    /// Builds a graph over `num_qubits` qubits from an edge list.
    ///
    /// Duplicate and reversed duplicates are deduplicated; self-loops are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop appears.
    pub fn new(num_qubits: usize, edge_list: &[(PhysQubit, PhysQubit)]) -> Self {
        let mut set: BTreeSet<(PhysQubit, PhysQubit)> = BTreeSet::new();
        for &(a, b) in edge_list {
            assert!(
                a < num_qubits && b < num_qubits,
                "edge ({a},{b}) out of range for {num_qubits} qubits"
            );
            assert_ne!(a, b, "self-loop ({a},{a}) is not a valid coupling");
            set.insert((a.min(b), a.max(b)));
        }
        let edges: Vec<(PhysQubit, PhysQubit)> = set.into_iter().collect();
        let mut adjacency = vec![Vec::new(); num_qubits];
        for &(a, b) in &edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        for neighbors in &mut adjacency {
            neighbors.sort_unstable();
        }
        CouplingGraph {
            num_qubits,
            adjacency,
            edges,
        }
    }

    /// Number of physical qubits `N`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The deduplicated, canonically ordered edge list.
    pub fn edges(&self) -> &[(PhysQubit, PhysQubit)] {
        &self.edges
    }

    /// Neighbors of `q` in ascending order.
    pub fn neighbors(&self, q: PhysQubit) -> &[PhysQubit] {
        &self.adjacency[q]
    }

    /// Degree of `q`.
    pub fn degree(&self, q: PhysQubit) -> usize {
        self.adjacency[q].len()
    }

    /// Whether a two-qubit gate may be applied across `(a, b)`.
    pub fn are_adjacent(&self, a: PhysQubit, b: PhysQubit) -> bool {
        self.adjacency[a].binary_search(&b).is_ok()
    }

    /// Whether the graph is connected (empty and 1-qubit graphs are).
    pub fn is_connected(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        let mut seen = vec![false; self.num_qubits];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(q) = stack.pop() {
            for &n in self.neighbors(q) {
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.num_qubits
    }

    // ---- generators -------------------------------------------------

    /// A path `0 — 1 — … — n-1`.
    pub fn line(n: usize) -> Self {
        let edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        CouplingGraph::new(n, &edges)
    }

    /// A cycle of `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i)).collect();
        edges.push((n - 1, 0));
        CouplingGraph::new(n, &edges)
    }

    /// A `rows × cols` 2-D lattice, row-major numbering.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let q = r * cols + c;
                if c + 1 < cols {
                    edges.push((q, q + 1));
                }
                if r + 1 < rows {
                    edges.push((q, q + cols));
                }
            }
        }
        CouplingGraph::new(rows * cols, &edges)
    }

    /// The fully connected graph (ion-trap-style all-to-all coupling).
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        CouplingGraph::new(n, &edges)
    }
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coupling graph: {} qubits, {} edges",
            self.num_qubits,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sorting() {
        let g = CouplingGraph::new(3, &[(1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        CouplingGraph::new(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CouplingGraph::new(2, &[(0, 2)]);
    }

    #[test]
    fn line_topology() {
        let g = CouplingGraph::line(5);
        assert_eq!(g.num_qubits(), 5);
        assert_eq!(g.edges().len(), 4);
        assert!(g.are_adjacent(2, 3));
        assert!(!g.are_adjacent(0, 2));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_topology() {
        let g = CouplingGraph::ring(4);
        assert!(g.are_adjacent(3, 0));
        assert_eq!(g.edges().len(), 4);
        for q in 0..4 {
            assert_eq!(g.degree(q), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        CouplingGraph::ring(2);
    }

    #[test]
    fn grid_topology() {
        let g = CouplingGraph::grid(2, 3);
        // 0 1 2
        // 3 4 5
        assert!(g.are_adjacent(0, 1));
        assert!(g.are_adjacent(1, 4));
        assert!(!g.are_adjacent(0, 4));
        assert_eq!(g.edges().len(), 7);
        assert!(g.is_connected());
    }

    #[test]
    fn complete_topology() {
        let g = CouplingGraph::complete(5);
        assert_eq!(g.edges().len(), 10);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert!(g.are_adjacent(a, b));
                }
            }
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn single_qubit_graph_is_connected() {
        assert!(CouplingGraph::new(1, &[]).is_connected());
        assert!(CouplingGraph::new(0, &[]).is_connected());
    }
}
