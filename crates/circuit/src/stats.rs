//! Circuit statistics: a one-stop summary used by the experiment
//! harnesses and reports.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use crate::schedule::{weighted_depth, Time};
use std::collections::BTreeMap;
use std::fmt;

/// A summary of a circuit's size and composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Declared number of qubits.
    pub num_qubits: usize,
    /// Qubits actually touched by gates.
    pub qubits_used: usize,
    /// Total operation count.
    pub gate_count: usize,
    /// Count of coupling-constrained (2-qubit unitary) gates.
    pub two_qubit_gates: usize,
    /// Count of SWAPs (routing overhead when diffed against the input).
    pub swap_count: usize,
    /// Unweighted depth.
    pub depth: usize,
    /// Per-kind gate histogram.
    pub histogram: BTreeMap<GateKind, usize>,
}

impl CircuitStats {
    /// Gathers statistics for `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let mut histogram = BTreeMap::new();
        for g in circuit.gates() {
            *histogram.entry(g.kind).or_insert(0) += 1;
        }
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            qubits_used: circuit.qubits_used(),
            gate_count: circuit.len(),
            two_qubit_gates: circuit.two_qubit_gate_count(),
            swap_count: circuit.count_kind(GateKind::Swap),
            depth: circuit.depth(),
            histogram,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} qubits ({} used), {} gates ({} two-qubit, {} swap), depth {}",
            self.num_qubits,
            self.qubits_used,
            self.gate_count,
            self.two_qubit_gates,
            self.swap_count,
            self.depth
        )?;
        for (kind, count) in &self.histogram {
            writeln!(f, "  {kind:>8}: {count}")?;
        }
        Ok(())
    }
}

/// Compares an input circuit with its routed version under a duration
/// model, producing the numbers reported by the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingReport {
    /// Gates in the original circuit.
    pub original_gates: usize,
    /// Gates after routing (includes inserted SWAPs).
    pub routed_gates: usize,
    /// SWAPs inserted by the router.
    pub swaps_inserted: usize,
    /// Weighted depth of the original circuit (coupling ignored).
    pub original_weighted_depth: Time,
    /// Weighted depth of the routed circuit.
    pub routed_weighted_depth: Time,
}

impl RoutingReport {
    /// Builds a report from the original and routed circuits.
    pub fn new(
        original: &Circuit,
        routed: &Circuit,
        mut duration_of: impl FnMut(&Gate) -> Time,
    ) -> Self {
        RoutingReport {
            original_gates: original.len(),
            routed_gates: routed.len(),
            swaps_inserted: routed.count_kind(GateKind::Swap) - original.count_kind(GateKind::Swap),
            original_weighted_depth: weighted_depth(original, &mut duration_of),
            routed_weighted_depth: weighted_depth(routed, &mut duration_of),
        }
    }

    /// Routed-over-original weighted depth: the slowdown incurred to
    /// satisfy the coupling constraints (≥ 1 in practice).
    pub fn depth_overhead(&self) -> f64 {
        if self.original_weighted_depth == 0 {
            1.0
        } else {
            self.routed_weighted_depth as f64 / self.original_weighted_depth as f64
        }
    }
}

/// Parallelism profile of a scheduled circuit: how many qubits are busy
/// at each cycle, and the average utilization.
///
/// This is the quantity CODAR optimizes for — a duration-aware remap
/// raises the busy-qubit average of the same gate multiset by packing
/// work into fewer cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelismProfile {
    /// `busy[t]` = number of qubits occupied during cycle `t`.
    pub busy_per_cycle: Vec<usize>,
    /// Mean busy qubits per cycle over the makespan.
    pub average_busy: f64,
    /// Peak busy qubits in any cycle.
    pub peak_busy: usize,
    /// Fraction of qubit-cycles spent busy among qubits that are used
    /// at all (1.0 = perfectly packed).
    pub utilization: f64,
}

impl ParallelismProfile {
    /// Computes the profile of `circuit` under `duration_of` (ASAP
    /// schedule).
    pub fn of(circuit: &Circuit, mut duration_of: impl FnMut(&Gate) -> Time) -> Self {
        let schedule = crate::schedule::Schedule::asap(circuit, &mut duration_of);
        let makespan = schedule.makespan as usize;
        let mut busy_per_cycle = vec![0usize; makespan];
        let mut used = vec![false; circuit.num_qubits()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            let dur = if gate.kind == GateKind::Barrier {
                0
            } else {
                duration_of(gate) as usize
            };
            let start = schedule.start[i] as usize;
            for t in start..start + dur {
                busy_per_cycle[t] += gate.qubits.len();
            }
            for &q in &gate.qubits {
                used[q] = true;
            }
        }
        let total_busy: usize = busy_per_cycle.iter().sum();
        let average_busy = if makespan == 0 {
            0.0
        } else {
            total_busy as f64 / makespan as f64
        };
        let used_qubits = used.iter().filter(|&&u| u).count();
        let utilization = if makespan == 0 || used_qubits == 0 {
            1.0
        } else {
            total_busy as f64 / (makespan * used_qubits) as f64
        };
        ParallelismProfile {
            peak_busy: busy_per_cycle.iter().copied().max().unwrap_or(0),
            busy_per_cycle,
            average_busy,
            utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_of_parallel_layer() {
        let mut c = Circuit::new(4);
        c.t(0);
        c.t(1);
        c.t(2);
        c.t(3);
        let p = ParallelismProfile::of(&c, |_| 1);
        assert_eq!(p.busy_per_cycle, vec![4]);
        assert_eq!(p.peak_busy, 4);
        assert!((p.average_busy - 4.0).abs() < 1e-12);
        assert!((p.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallelism_of_serial_chain() {
        let mut c = Circuit::new(2);
        c.t(0);
        c.t(0);
        c.t(1);
        // ASAP: t(1) runs parallel to the first t(0): cycles = 2,
        // busy = [2, 1].
        let p = ParallelismProfile::of(&c, |_| 1);
        assert_eq!(p.busy_per_cycle, vec![2, 1]);
        assert!((p.utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn durations_weight_the_profile() {
        let mut c = Circuit::new(3);
        c.t(1); // 1 cycle
        c.cx(0, 2); // 2 cycles
        let p = ParallelismProfile::of(&c, |g| if g.kind == GateKind::Cx { 2 } else { 1 });
        assert_eq!(p.busy_per_cycle, vec![3, 2]);
    }

    #[test]
    fn empty_profile() {
        let p = ParallelismProfile::of(&Circuit::new(3), |_| 1);
        assert_eq!(p.average_busy, 0.0);
        assert_eq!(p.peak_busy, 0);
        assert_eq!(p.utilization, 1.0);
    }

    #[test]
    fn stats_collects_histogram() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.h(1);
        c.cx(0, 1);
        c.swap(1, 2);
        let s = CircuitStats::of(&c);
        assert_eq!(s.gate_count, 4);
        assert_eq!(s.two_qubit_gates, 2);
        assert_eq!(s.swap_count, 1);
        assert_eq!(s.histogram[&GateKind::H], 2);
        assert_eq!(s.qubits_used, 3);
    }

    #[test]
    fn display_mentions_counts() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let text = CircuitStats::of(&c).to_string();
        assert!(text.contains("1 gates"));
        assert!(text.contains("cx"));
    }

    #[test]
    fn routing_report_diffs_swaps() {
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        let mut routed = Circuit::new(3);
        routed.swap(0, 1);
        routed.cx(1, 2);
        let dur = |g: &Gate| match g.kind {
            GateKind::Swap => 6,
            GateKind::Cx => 2,
            _ => 1,
        };
        let report = RoutingReport::new(&original, &routed, dur);
        assert_eq!(report.swaps_inserted, 1);
        assert_eq!(report.original_weighted_depth, 2);
        assert_eq!(report.routed_weighted_depth, 8);
        assert!((report.depth_overhead() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_overhead_is_one() {
        let c = Circuit::new(1);
        let report = RoutingReport::new(&c, &c, |_| 1);
        assert_eq!(report.depth_overhead(), 1.0);
    }
}
