//! ASAP scheduling and the *weighted depth* metric.
//!
//! The paper's execution-time model: each gate kind has a duration in
//! quantum clock cycles (`τ`); a gate starts as soon as all its operand
//! qubits are free; the circuit's *weighted depth* is the makespan of
//! this as-soon-as-possible schedule. This is the quantity Fig. 8
//! compares between CODAR and SABRE.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Time in quantum clock cycles.
pub type Time = u64;

/// An ASAP schedule for a circuit: per-gate start times and the makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Start time of each gate, indexed like `circuit.gates()`.
    pub start: Vec<Time>,
    /// Completion time of the whole circuit (the weighted depth).
    pub makespan: Time,
}

impl Schedule {
    /// Computes the ASAP schedule of `circuit` under the duration model
    /// `duration_of` (cycles per gate; barriers should return 0).
    ///
    /// Gates are scheduled in program order: each starts at the max
    /// free-time of its operands, exactly the semantics of the paper's
    /// qubit locks for an already-ordered gate sequence.
    ///
    /// # Examples
    ///
    /// ```
    /// use codar_circuit::{Circuit, GateKind, Schedule};
    ///
    /// let mut c = Circuit::new(3);
    /// c.t(1);          // duration 1
    /// c.cx(0, 2);      // duration 2, parallel with the t
    /// c.cx(1, 2);      // must wait for both
    /// let s = Schedule::asap(&c, |g| match g.kind {
    ///     GateKind::Cx => 2,
    ///     _ => 1,
    /// });
    /// assert_eq!(s.start, vec![0, 0, 2]);
    /// assert_eq!(s.makespan, 4);
    /// ```
    pub fn asap(circuit: &Circuit, mut duration_of: impl FnMut(&Gate) -> Time) -> Schedule {
        let mut free_at = vec![0u64; circuit.num_qubits()];
        let mut start = Vec::with_capacity(circuit.len());
        let mut makespan = 0;
        for gate in circuit.gates() {
            let begin = gate.qubits.iter().map(|&q| free_at[q]).max().unwrap_or(0);
            let dur = if gate.kind == GateKind::Barrier {
                0
            } else {
                duration_of(gate)
            };
            let end = begin + dur;
            for &q in &gate.qubits {
                free_at[q] = end;
            }
            start.push(begin);
            makespan = makespan.max(end);
        }
        Schedule { start, makespan }
    }

    /// End time of gate `i` under the same duration model used to build
    /// the schedule.
    pub fn end_of(&self, i: usize, duration: Time) -> Time {
        self.start[i] + duration
    }

    /// Groups gate indices by start time, ascending — a time-slice view
    /// used by the noisy simulator.
    pub fn slices(&self) -> Vec<(Time, Vec<usize>)> {
        let mut order: Vec<usize> = (0..self.start.len()).collect();
        order.sort_by_key(|&i| self.start[i]);
        let mut out: Vec<(Time, Vec<usize>)> = Vec::new();
        for i in order {
            match out.last_mut() {
                Some((t, v)) if *t == self.start[i] => v.push(i),
                _ => out.push((self.start[i], vec![i])),
            }
        }
        out
    }
}

/// Computes the weighted depth (makespan) of `circuit` under
/// `duration_of` without keeping the per-gate schedule.
pub fn weighted_depth(circuit: &Circuit, duration_of: impl FnMut(&Gate) -> Time) -> Time {
    Schedule::asap(circuit, duration_of).makespan
}

/// A simple lower bound on any schedule's makespan: the maximum over
/// qubits of the total busy time of that qubit.
pub fn busy_time_lower_bound(
    circuit: &Circuit,
    mut duration_of: impl FnMut(&Gate) -> Time,
) -> Time {
    let mut busy = vec![0u64; circuit.num_qubits()];
    for gate in circuit.gates() {
        if gate.kind == GateKind::Barrier {
            continue;
        }
        let dur = duration_of(gate);
        for &q in &gate.qubits {
            busy[q] += dur;
        }
    }
    busy.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dur(g: &Gate) -> Time {
        match g.kind {
            GateKind::Cx | GateKind::Cz => 2,
            GateKind::Swap => 6,
            GateKind::Barrier => 0,
            _ => 1,
        }
    }

    #[test]
    fn paper_fig2_durations() {
        // T q2 and CX q0,q2 both start at 0 if independent; with the
        // duration model T finishes at 1, CX at 2.
        let mut c = Circuit::new(4);
        c.t(1);
        c.cx(0, 2);
        let s = Schedule::asap(&c, dur);
        assert_eq!(s.start, vec![0, 0]);
        assert_eq!(s.makespan, 2);
    }

    #[test]
    fn serial_dependency_accumulates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(0, 1);
        c.h(0);
        let s = Schedule::asap(&c, dur);
        assert_eq!(s.start, vec![0, 2, 4]);
        assert_eq!(s.makespan, 5);
    }

    #[test]
    fn swap_costs_six() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(weighted_depth(&c, dur), 6);
    }

    #[test]
    fn barrier_synchronizes_at_zero_cost() {
        let mut c = Circuit::new(2);
        c.cx(0, 1); // ends at 2
        c.barrier(vec![0, 1]);
        c.t(0);
        c.t(1);
        let s = Schedule::asap(&c, dur);
        assert_eq!(s.start, vec![0, 2, 2, 2]);
        assert_eq!(s.makespan, 3);
    }

    #[test]
    fn slices_group_by_start() {
        let mut c = Circuit::new(3);
        c.t(0);
        c.t(1);
        c.cx(0, 1);
        let s = Schedule::asap(&c, dur);
        let slices = s.slices();
        assert_eq!(slices.len(), 2);
        assert_eq!(slices[0], (0, vec![0, 1]));
        assert_eq!(slices[1], (1, vec![2]));
    }

    #[test]
    fn lower_bound_never_exceeds_makespan() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        c.t(0);
        c.swap(0, 2);
        let lb = busy_time_lower_bound(&c, dur);
        let ws = weighted_depth(&c, dur);
        assert!(lb <= ws, "lb {lb} > makespan {ws}");
    }

    #[test]
    fn empty_circuit_zero_makespan() {
        let c = Circuit::new(3);
        assert_eq!(weighted_depth(&c, dur), 0);
    }

    #[test]
    fn unit_durations_match_depth() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.h(2);
        let wd = weighted_depth(&c, |_| 1);
        assert_eq!(wd as usize, c.depth());
    }
}
