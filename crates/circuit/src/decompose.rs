//! Gate decomposition passes.
//!
//! NISQ devices implement one- and two-qubit primitives only, and the
//! routers operate on at-most-two-qubit gates. [`decompose_three_qubit_gates`]
//! lowers `ccx`/`cswap` using the textbook `qelib1.inc` constructions;
//! [`decompose_to_cx_basis`] goes further and rewrites every multi-qubit
//! gate into `{1q, cx}` (useful for devices whose only 2-qubit primitive
//! is CNOT, and for the simulator's noise accounting).

use crate::circuit::Circuit;
use crate::gate::GateKind;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

fn push_ccx(out: &mut Circuit, a: usize, b: usize, c: usize) {
    // Standard 6-CNOT Toffoli (qelib1.inc).
    out.h(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(c);
    out.cx(b, c);
    out.tdg(c);
    out.cx(a, c);
    out.t(b);
    out.t(c);
    out.h(c);
    out.cx(a, b);
    out.t(a);
    out.tdg(b);
    out.cx(a, b);
}

fn push_cswap(out: &mut Circuit, a: usize, b: usize, c: usize) {
    // qelib1.inc: cswap a,b,c = cx c,b; ccx a,b,c; cx c,b
    out.cx(c, b);
    push_ccx(out, a, b, c);
    out.cx(c, b);
}

/// Rewrites all 3-qubit gates (`ccx`, `cswap`) into 1- and 2-qubit gates.
///
/// All other gates pass through unchanged. The result is suitable input
/// for the routers, which require at-most-2-qubit operations.
///
/// # Examples
///
/// ```
/// use codar_circuit::{Circuit, decompose::decompose_three_qubit_gates};
///
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let lowered = decompose_three_qubit_gates(&c);
/// assert!(lowered.gates().iter().all(|g| g.qubits.len() <= 2));
/// ```
pub fn decompose_three_qubit_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    for g in circuit.gates() {
        match g.kind {
            GateKind::Ccx => push_ccx(&mut out, g.qubits[0], g.qubits[1], g.qubits[2]),
            GateKind::Cswap => push_cswap(&mut out, g.qubits[0], g.qubits[1], g.qubits[2]),
            _ => out.push(g.clone()),
        }
    }
    out
}

/// Rewrites every multi-qubit gate into the `{single-qubit, cx}` basis.
///
/// SWAPs become 3 CNOTs; `cz`, `cy`, `ch`, `crz`, `cu1`, `cu3`, `rzz` use
/// their `qelib1.inc` definitions; 3-qubit gates are lowered first.
pub fn decompose_to_cx_basis(circuit: &Circuit) -> Circuit {
    let two = decompose_three_qubit_gates(circuit);
    let mut out = Circuit::with_bits(two.num_qubits(), two.num_bits());
    for g in two.gates() {
        match g.kind {
            GateKind::Swap => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                out.cx(a, b);
                out.cx(b, a);
                out.cx(a, b);
            }
            GateKind::Cz => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                out.h(b);
                out.cx(a, b);
                out.h(b);
            }
            GateKind::Cy => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                out.sdg(b);
                out.cx(a, b);
                out.s(b);
            }
            GateKind::Ch => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                out.h(b);
                out.sdg(b);
                out.cx(a, b);
                out.h(b);
                out.t(b);
                out.cx(a, b);
                out.t(b);
                out.h(b);
                out.s(b);
                out.x(b);
                out.s(a);
            }
            GateKind::Crz => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                let lambda = g.params[0];
                out.u1(lambda / 2.0, b);
                out.cx(a, b);
                out.u1(-lambda / 2.0, b);
                out.cx(a, b);
            }
            GateKind::Cu1 => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                let lambda = g.params[0];
                out.u1(lambda / 2.0, a);
                out.cx(a, b);
                out.u1(-lambda / 2.0, b);
                out.cx(a, b);
                out.u1(lambda / 2.0, b);
            }
            GateKind::Cu3 => {
                let (c, t) = (g.qubits[0], g.qubits[1]);
                let (theta, phi, lambda) = (g.params[0], g.params[1], g.params[2]);
                out.u1((lambda - phi) / 2.0, t);
                out.cx(c, t);
                out.add(
                    GateKind::U3,
                    vec![t],
                    vec![-theta / 2.0, 0.0, -(phi + lambda) / 2.0],
                );
                out.cx(c, t);
                out.add(GateKind::U3, vec![t], vec![theta / 2.0, phi, 0.0]);
            }
            GateKind::Rzz => {
                let (a, b) = (g.qubits[0], g.qubits[1]);
                out.cx(a, b);
                out.u1(g.params[0], b);
                out.cx(a, b);
            }
            _ => out.push(g.clone()),
        }
    }
    out
}

/// Translates a `{1q, cx}` circuit into the ion-trap native basis
/// `{rz, r(θ,φ), rxx}` (Table I: single-qubit `R^θ_α` rotations and the
/// Mølmer–Sørensen `XX` interaction).
///
/// * every CNOT becomes one `rxx(π/2)` and four `R` rotations (the
///   standard trapped-ion construction, cf. Debnath et al. 2016),
/// * every single-qubit gate becomes `rz · r(θ, π/2) · rz` (ZYZ Euler
///   form; `rz` is a free virtual frame rotation on ion hardware),
/// * other multi-qubit gates are first lowered via
///   [`decompose_to_cx_basis`].
///
/// The result is exact up to global phase.
pub fn translate_to_ion_basis(circuit: &Circuit) -> Circuit {
    use crate::optimize::euler_angles;
    let cx_basis = decompose_to_cx_basis(circuit);
    let mut out = Circuit::with_bits(cx_basis.num_qubits(), cx_basis.num_bits());
    let push_1q = |out: &mut Circuit, q: usize, theta: f64, phi: f64, lambda: f64| {
        // u3(θ, φ, λ) = Rz(φ) · Ry(θ) · Rz(λ) up to global phase,
        // and Ry(θ) = r(θ, π/2).
        if lambda.abs() > 1e-12 {
            out.rz(lambda, q);
        }
        if theta.abs() > 1e-12 {
            out.add(GateKind::R, vec![q], vec![theta, FRAC_PI_2]);
        }
        if phi.abs() > 1e-12 {
            out.rz(phi, q);
        }
    };
    for g in cx_basis.gates() {
        match g.kind {
            GateKind::Cx => {
                let (c, t) = (g.qubits[0], g.qubits[1]);
                // CNOT = (Ry(-π/2) ⊗ I) · (Rx(-π/2) ⊗ Rx(-π/2)) ·
                //        XX(π/2-worth of MS) · (Ry(π/2) ⊗ I), reading
                //        right-to-left; in circuit (time) order:
                out.add(GateKind::R, vec![c], vec![FRAC_PI_2, FRAC_PI_2]); // Ry(π/2) on control
                out.add(GateKind::Rxx, vec![c, t], vec![FRAC_PI_2]);
                out.add(GateKind::R, vec![c], vec![-FRAC_PI_2, 0.0]); // Rx(-π/2)
                out.add(GateKind::R, vec![t], vec![-FRAC_PI_2, 0.0]); // Rx(-π/2)
                out.add(GateKind::R, vec![c], vec![-FRAC_PI_2, FRAC_PI_2]); // Ry(-π/2)
            }
            kind if kind.arity() == Some(1) && kind.is_unitary() => {
                let (theta, phi, lambda) = euler_angles(kind, &g.params)
                    .expect("single-qubit unitaries have Euler angles");
                push_1q(&mut out, g.qubits[0], theta, phi, lambda);
            }
            _ => out.push(g.clone()),
        }
    }
    out
}

/// Rewrites every single-qubit gate into `u3` form (its `(θ, φ, λ)`
/// Euler angles) while leaving multi-qubit and non-unitary operations
/// untouched. Useful for uniform duration/noise treatment.
pub fn canonicalize_single_qubit_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    for g in circuit.gates() {
        let angles = match g.kind {
            GateKind::Id => Some((0.0, 0.0, 0.0)),
            GateKind::X => Some((std::f64::consts::PI, 0.0, std::f64::consts::PI)),
            GateKind::Y => Some((std::f64::consts::PI, FRAC_PI_2, FRAC_PI_2)),
            GateKind::Z => Some((0.0, 0.0, std::f64::consts::PI)),
            GateKind::H => Some((FRAC_PI_2, 0.0, std::f64::consts::PI)),
            GateKind::S => Some((0.0, 0.0, FRAC_PI_2)),
            GateKind::Sdg => Some((0.0, 0.0, -FRAC_PI_2)),
            GateKind::T => Some((0.0, 0.0, FRAC_PI_4)),
            GateKind::Tdg => Some((0.0, 0.0, -FRAC_PI_4)),
            GateKind::Rx => Some((g.params[0], -FRAC_PI_2, FRAC_PI_2)),
            GateKind::Ry => Some((g.params[0], 0.0, 0.0)),
            GateKind::Rz | GateKind::U1 => Some((0.0, 0.0, g.params[0])),
            GateKind::R => Some((
                g.params[0],
                g.params[1] - FRAC_PI_2,
                FRAC_PI_2 - g.params[1],
            )),
            GateKind::U2 => Some((FRAC_PI_2, g.params[0], g.params[1])),
            GateKind::U3 => Some((g.params[0], g.params[1], g.params[2])),
            _ => None,
        };
        match angles {
            Some((theta, phi, lambda)) => {
                out.add(GateKind::U3, g.qubits.clone(), vec![theta, phi, lambda]);
            }
            None => out.push(g.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccx_becomes_six_cnots() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let d = decompose_three_qubit_gates(&c);
        assert_eq!(d.count_kind(GateKind::Cx), 6);
        assert!(d.gates().iter().all(|g| g.qubits.len() <= 2));
    }

    #[test]
    fn cswap_lowered() {
        let mut c = Circuit::new(3);
        c.add(GateKind::Cswap, vec![0, 1, 2], vec![]);
        let d = decompose_three_qubit_gates(&c);
        assert_eq!(d.count_kind(GateKind::Cx), 8);
        assert!(d.gates().iter().all(|g| g.qubits.len() <= 2));
    }

    #[test]
    fn other_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.measure(1, 0);
        let d = decompose_three_qubit_gates(&c);
        assert_eq!(d.gates(), c.gates());
    }

    #[test]
    fn cx_basis_leaves_only_cx_and_1q() {
        let mut c = Circuit::new(3);
        c.cz(0, 1);
        c.swap(1, 2);
        c.rzz(0.5, 0, 2);
        c.ccx(0, 1, 2);
        c.add(GateKind::Cu3, vec![0, 1], vec![0.1, 0.2, 0.3]);
        c.add(GateKind::Crz, vec![0, 1], vec![0.7]);
        c.add(GateKind::Cu1, vec![0, 1], vec![0.7]);
        c.add(GateKind::Cy, vec![0, 1], vec![]);
        c.add(GateKind::Ch, vec![0, 1], vec![]);
        let d = decompose_to_cx_basis(&c);
        for g in d.gates() {
            assert!(
                g.qubits.len() == 1 || g.kind == GateKind::Cx,
                "unexpected {g}"
            );
        }
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let d = decompose_to_cx_basis(&c);
        assert_eq!(d.count_kind(GateKind::Cx), 3);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn canonicalize_rewrites_1q_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.t(1);
        c.rx(0.3, 0);
        c.cx(0, 1);
        let d = canonicalize_single_qubit_gates(&c);
        assert_eq!(d.count_kind(GateKind::U3), 3);
        assert_eq!(d.count_kind(GateKind::Cx), 1);
    }

    #[test]
    fn decomposition_preserves_qubit_counts() {
        let mut c = Circuit::new(5);
        c.ccx(0, 2, 4);
        let d = decompose_three_qubit_gates(&c);
        assert_eq!(d.num_qubits(), 5);
        // Only the three operand qubits are touched.
        let touched: std::collections::BTreeSet<usize> =
            d.gates().iter().flat_map(|g| g.qubits.clone()).collect();
        assert_eq!(touched.into_iter().collect::<Vec<_>>(), vec![0, 2, 4]);
    }
}
