//! ASCII rendering of scheduled circuits.
//!
//! Turns a circuit plus its ASAP schedule into a per-qubit timeline,
//! making duration effects visible at a glance — the same pictures the
//! paper draws in Figs. 1–3:
//!
//! ```text
//! q0: |CX CX|SWAP SWAP SWAP SWAP SWAP SWAP|..
//! q1: |T |SWAP SWAP SWAP SWAP SWAP SWAP|....
//! ```

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use crate::schedule::{Schedule, Time};

/// Renders a per-qubit timeline of `circuit` under `duration_of`.
///
/// Each qubit gets one row; each cycle one column slot filled with the
/// (upper-cased) gate name while the gate occupies the qubit, `.` when
/// idle. Rendering is clamped to `max_cycles` columns (a trailing `>`
/// marks truncation).
///
/// # Examples
///
/// ```
/// use codar_circuit::{Circuit, GateKind};
/// use codar_circuit::render::render_timeline;
///
/// let mut c = Circuit::new(2);
/// c.t(0);
/// c.cx(0, 1);
/// let text = render_timeline(&c, |g| match g.kind {
///     GateKind::Cx => 2,
///     _ => 1,
/// }, 80);
/// assert!(text.contains("q0"));
/// assert!(text.contains("T"));
/// ```
pub fn render_timeline(
    circuit: &Circuit,
    mut duration_of: impl FnMut(&Gate) -> Time,
    max_cycles: usize,
) -> String {
    let schedule = Schedule::asap(circuit, &mut duration_of);
    render_with_schedule(circuit, &schedule, duration_of, max_cycles)
}

/// Renders against a precomputed schedule (e.g. a router's own start
/// times).
pub fn render_with_schedule(
    circuit: &Circuit,
    schedule: &Schedule,
    mut duration_of: impl FnMut(&Gate) -> Time,
    max_cycles: usize,
) -> String {
    let cycles = (schedule.makespan as usize).min(max_cycles);
    // cell[q][t] = label occupying qubit q at cycle t.
    let mut cells: Vec<Vec<Option<String>>> = vec![vec![None; cycles]; circuit.num_qubits()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        let start = schedule.start[i] as usize;
        let dur = if gate.kind == GateKind::Barrier {
            0
        } else {
            duration_of(gate) as usize
        };
        let label = gate.kind.name().to_ascii_uppercase();
        for t in start..(start + dur.max(0)).min(cycles) {
            for &q in &gate.qubits {
                cells[q][t] = Some(label.clone());
            }
        }
    }
    // Column widths: widest label in that cycle (min 1).
    let width_at = |t: usize| -> usize {
        cells
            .iter()
            .filter_map(|row| row[t].as_ref().map(|s| s.len()))
            .max()
            .unwrap_or(1)
    };
    let widths: Vec<usize> = (0..cycles).map(width_at).collect();
    let mut out = String::new();
    for (q, row) in cells.iter().enumerate() {
        out.push_str(&format!("q{q:<3}|"));
        for (t, cell) in row.iter().enumerate() {
            let text = cell.clone().unwrap_or_else(|| ".".to_string());
            out.push_str(&format!("{text:^w$}|", w = widths[t]));
        }
        if (schedule.makespan as usize) > cycles {
            out.push('>');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tau(g: &Gate) -> Time {
        match g.kind {
            GateKind::Swap => 6,
            k if k.is_two_qubit() => 2,
            GateKind::Barrier => 0,
            _ => 1,
        }
    }

    #[test]
    fn renders_paper_fig2_shape() {
        // t q1 (1 cycle) in parallel with cx q0,q2 (2 cycles).
        let mut c = Circuit::new(3);
        c.t(1);
        c.cx(0, 2);
        let text = render_timeline(&c, tau, 80);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains('T'));
        assert!(lines[0].contains("CX"));
        // q1 idles in cycle 2 while the CX still runs.
        assert!(lines[1].contains('.'));
    }

    #[test]
    fn swap_occupies_six_cells() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let text = render_timeline(&c, tau, 80);
        assert_eq!(text.matches("SWAP").count(), 12); // 6 cycles x 2 qubits
    }

    #[test]
    fn truncation_marks_overflow() {
        let mut c = Circuit::new(1);
        for _ in 0..20 {
            c.t(0);
        }
        let text = render_timeline(&c, tau, 5);
        assert!(text.ends_with(">\n"));
        assert_eq!(text.matches('T').count(), 5);
    }

    #[test]
    fn empty_circuit_renders_rows() {
        let c = Circuit::new(2);
        let text = render_timeline(&c, tau, 10);
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn idle_cells_are_dots() {
        let mut c = Circuit::new(2);
        c.t(0);
        c.t(0);
        let text = render_timeline(&c, tau, 80);
        let q1 = text.lines().nth(1).expect("two rows");
        assert!(q1.contains('.'));
        assert!(!q1.contains('T'));
    }
}
