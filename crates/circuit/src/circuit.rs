//! The [`Circuit`] container and its builder API.

use crate::gate::{Gate, GateKind, QubitId};
use std::fmt;

/// A quantum circuit: an ordered list of [`Gate`]s over `num_qubits`
/// logical qubits.
///
/// The builder methods (`h`, `cx`, …) push gates in program order and
/// panic on out-of-range operands — circuits are construction-checked so
/// every downstream pass can assume well-formedness.
///
/// # Examples
///
/// ```
/// use codar_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0);
/// bell.cx(0, 1);
/// assert_eq!(bell.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_bits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            num_bits: 0,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with classical bits (for measurements).
    pub fn with_bits(num_qubits: usize, num_bits: usize) -> Self {
        Circuit {
            num_qubits,
            num_bits,
            gates: Vec::new(),
        }
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a pre-built gate.
    ///
    /// # Panics
    ///
    /// Panics if any operand is out of range for this circuit.
    pub fn push(&mut self, gate: Gate) {
        for &q in &gate.qubits {
            assert!(
                q < self.num_qubits,
                "qubit q[{q}] out of range for circuit of {} qubits",
                self.num_qubits
            );
        }
        if let Some(bit) = gate.classical_bit {
            if bit >= self.num_bits {
                self.num_bits = bit + 1;
            }
        }
        self.gates.push(gate);
    }

    /// Appends a gate by kind, operands and parameters.
    ///
    /// # Panics
    ///
    /// Panics on arity/parameter/range violations.
    pub fn add(&mut self, kind: GateKind, qubits: Vec<QubitId>, params: Vec<f64>) {
        self.push(Gate::new(kind, qubits, params));
    }

    /// Grows the circuit to at least `n` qubits.
    pub fn expand_to(&mut self, n: usize) {
        if n > self.num_qubits {
            self.num_qubits = n;
        }
    }

    /// Returns the same circuit with gates in reverse order (used by
    /// SABRE's reverse-traversal initial-mapping search).
    pub fn reversed(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            num_bits: self.num_bits,
            gates: self.gates.iter().rev().cloned().collect(),
        }
    }

    /// Returns the circuit with every qubit relabelled through `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` maps an operand out of `[0, num_qubits)`.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Circuit {
        let mut out = Circuit::with_bits(self.num_qubits, self.num_bits);
        for g in &self.gates {
            out.push(g.map_qubits(&mut f));
        }
        out
    }

    /// Unweighted circuit depth: longest chain of overlapping gates
    /// (barriers synchronize but do not add depth).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for g in &self.gates {
            let start = g.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
            let end = if g.kind == GateKind::Barrier {
                start
            } else {
                start + 1
            };
            for &q in &g.qubits {
                level[q] = end;
            }
            max = max.max(end);
        }
        max
    }

    /// Number of coupling-constrained (2-qubit unitary) gates.
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of gates of a given kind.
    pub fn count_kind(&self, kind: GateKind) -> usize {
        self.gates.iter().filter(|g| g.kind == kind).count()
    }

    /// Iterator over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// The highest qubit index actually used, plus one (0 for empty).
    pub fn qubits_used(&self) -> usize {
        self.gates
            .iter()
            .flat_map(|g| g.qubits.iter())
            .map(|&q| q + 1)
            .max()
            .unwrap_or(0)
    }

    // ---- builder convenience methods -------------------------------

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: QubitId) {
        self.add(GateKind::H, vec![q], vec![]);
    }

    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: QubitId) {
        self.add(GateKind::X, vec![q], vec![]);
    }

    /// Appends a Pauli-Y on `q`.
    pub fn y(&mut self, q: QubitId) {
        self.add(GateKind::Y, vec![q], vec![]);
    }

    /// Appends a Pauli-Z on `q`.
    pub fn z(&mut self, q: QubitId) {
        self.add(GateKind::Z, vec![q], vec![]);
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: QubitId) {
        self.add(GateKind::S, vec![q], vec![]);
    }

    /// Appends an S† gate on `q`.
    pub fn sdg(&mut self, q: QubitId) {
        self.add(GateKind::Sdg, vec![q], vec![]);
    }

    /// Appends a T gate on `q`.
    pub fn t(&mut self, q: QubitId) {
        self.add(GateKind::T, vec![q], vec![]);
    }

    /// Appends a T† gate on `q`.
    pub fn tdg(&mut self, q: QubitId) {
        self.add(GateKind::Tdg, vec![q], vec![]);
    }

    /// Appends `rx(theta)` on `q`.
    pub fn rx(&mut self, theta: f64, q: QubitId) {
        self.add(GateKind::Rx, vec![q], vec![theta]);
    }

    /// Appends `ry(theta)` on `q`.
    pub fn ry(&mut self, theta: f64, q: QubitId) {
        self.add(GateKind::Ry, vec![q], vec![theta]);
    }

    /// Appends `rz(phi)` on `q`.
    pub fn rz(&mut self, phi: f64, q: QubitId) {
        self.add(GateKind::Rz, vec![q], vec![phi]);
    }

    /// Appends `u1(lambda)` on `q`.
    pub fn u1(&mut self, lambda: f64, q: QubitId) {
        self.add(GateKind::U1, vec![q], vec![lambda]);
    }

    /// Appends a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: QubitId, target: QubitId) {
        self.add(GateKind::Cx, vec![control, target], vec![]);
    }

    /// Appends a controlled-Z.
    pub fn cz(&mut self, a: QubitId, b: QubitId) {
        self.add(GateKind::Cz, vec![a, b], vec![]);
    }

    /// Appends a controlled-`u1(lambda)`.
    pub fn cu1(&mut self, lambda: f64, control: QubitId, target: QubitId) {
        self.add(GateKind::Cu1, vec![control, target], vec![lambda]);
    }

    /// Appends `rzz(theta)` between `a` and `b`.
    pub fn rzz(&mut self, theta: f64, a: QubitId, b: QubitId) {
        self.add(GateKind::Rzz, vec![a, b], vec![theta]);
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: QubitId, b: QubitId) {
        self.add(GateKind::Swap, vec![a, b], vec![]);
    }

    /// Appends a Toffoli with controls `a`, `b` and target `c`.
    pub fn ccx(&mut self, a: QubitId, b: QubitId, c: QubitId) {
        self.add(GateKind::Ccx, vec![a, b, c], vec![]);
    }

    /// Appends a measurement of `q` into classical bit `bit`.
    pub fn measure(&mut self, q: QubitId, bit: usize) {
        self.push(Gate::measure(q, bit));
    }

    /// Appends a barrier over the given qubits.
    pub fn barrier(&mut self, qubits: Vec<QubitId>) {
        self.push(Gate::barrier(qubits));
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g};")?;
        }
        Ok(())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_pushes_in_order() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.gates()[0].kind, GateKind::H);
        assert_eq!(c.gates()[1].kind, GateKind::Cx);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_operand_panics() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = Circuit::new(3);
        c.h(0); // level 1 on q0
        c.h(1); // level 1 on q1
        c.cx(0, 1); // level 2
        c.h(2); // level 1 on q2 (parallel)
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn barrier_synchronizes_without_depth() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.barrier(vec![0, 1]);
        a.h(1);
        // h(1) must wait for the barrier (which waited for h(0)),
        // so depth is 2 even though the two h's touch different qubits.
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn reversed_reverses_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let r = c.reversed();
        assert_eq!(r.gates()[0].kind, GateKind::Cx);
        assert_eq!(r.gates()[1].kind, GateKind::H);
    }

    #[test]
    fn map_qubits_relabels_whole_circuit() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.h(2);
        let perm = [2, 0, 1];
        let mapped = c.map_qubits(|q| perm[q]);
        assert_eq!(mapped.gates()[0].qubits, vec![2, 0]);
        assert_eq!(mapped.gates()[1].qubits, vec![1]);
    }

    #[test]
    fn measure_grows_classical_bits() {
        let mut c = Circuit::new(2);
        assert_eq!(c.num_bits(), 0);
        c.measure(0, 5);
        assert_eq!(c.num_bits(), 6);
    }

    #[test]
    fn counts() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.ccx(0, 1, 2);
        assert_eq!(c.two_qubit_gate_count(), 2); // ccx is 3-qubit
        assert_eq!(c.count_kind(GateKind::Cx), 2);
        assert_eq!(c.qubits_used(), 3);
    }

    #[test]
    fn extend_from_iterator() {
        let mut c = Circuit::new(2);
        c.extend(vec![
            Gate::new(GateKind::H, vec![0], vec![]),
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("cx q[0], q[1];"));
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert_eq!(c.qubits_used(), 0);
    }
}
