//! Dependency DAG over a circuit's gates.
//!
//! Edges follow per-qubit program order: gate *v* depends on gate *u*
//! when *u* is the most recent earlier gate touching one of *v*'s qubits.
//! This is the structure SABRE's front layer is computed on; CODAR's
//! commutative front is computed separately (it relaxes these edges by
//! commutation, see `codar-router`).

use crate::circuit::Circuit;

/// An immutable dependency DAG for a [`Circuit`].
///
/// # Examples
///
/// ```
/// use codar_circuit::{Circuit, CircuitDag};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// c.h(0);
/// let dag = CircuitDag::new(&c);
/// // cx(1,2) depends on cx(0,1); h(0) also depends on cx(0,1).
/// assert_eq!(dag.predecessors(1), &[0]);
/// assert_eq!(dag.predecessors(2), &[0]);
/// assert_eq!(dag.front_layer(), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl CircuitDag {
    /// Builds the DAG for `circuit` in O(gates × arity).
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            for &q in &gate.qubits {
                if let Some(p) = last_on_qubit[q] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_qubit[q] = Some(i);
            }
        }
        CircuitDag { preds, succs }
    }

    /// Number of nodes (gates).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Direct predecessors of gate `i`.
    pub fn predecessors(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// Direct successors of gate `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succs[i]
    }

    /// Gates with no predecessors (the initial front layer).
    pub fn front_layer(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.preds[i].is_empty())
            .collect()
    }

    /// A topological order (program order is always one).
    pub fn topological_order(&self) -> Vec<usize> {
        (0..self.len()).collect()
    }

    /// Length of the longest path (in gates) through the DAG — equals the
    /// circuit depth when every gate has unit duration and barriers are
    /// counted as nodes.
    pub fn longest_path_len(&self) -> usize {
        let mut dist = vec![0usize; self.len()];
        let mut best = 0;
        for i in 0..self.len() {
            let d = self.preds[i]
                .iter()
                .map(|&p| dist[p] + 1)
                .max()
                .unwrap_or(1);
            dist[i] = d;
            best = best.max(d);
        }
        best
    }
}

/// Tracks how many unresolved dependencies each gate has, supporting
/// incremental front-layer maintenance during routing.
#[derive(Debug, Clone)]
pub struct FrontTracker {
    remaining_preds: Vec<usize>,
    resolved: Vec<bool>,
    front: Vec<usize>,
    num_resolved: usize,
}

impl FrontTracker {
    /// Creates a tracker with nothing resolved.
    pub fn new(dag: &CircuitDag) -> Self {
        let remaining_preds: Vec<usize> =
            (0..dag.len()).map(|i| dag.predecessors(i).len()).collect();
        let front = dag.front_layer();
        FrontTracker {
            remaining_preds,
            resolved: vec![false; dag.len()],
            front,
            num_resolved: 0,
        }
    }

    /// The current front layer (gates whose predecessors are all resolved).
    pub fn front(&self) -> &[usize] {
        &self.front
    }

    /// Number of gates already resolved.
    pub fn num_resolved(&self) -> usize {
        self.num_resolved
    }

    /// True when every gate has been resolved.
    pub fn is_done(&self) -> bool {
        self.num_resolved == self.resolved.len()
    }

    /// Whether gate `i` has been resolved.
    pub fn is_resolved(&self, i: usize) -> bool {
        self.resolved[i]
    }

    /// Marks gate `i` (which must be in the front) as executed and
    /// promotes any successors that become ready.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not currently in the front layer.
    pub fn resolve(&mut self, i: usize, dag: &CircuitDag) {
        let pos = self
            .front
            .iter()
            .position(|&g| g == i)
            .expect("gate to resolve must be in the front layer");
        self.front.swap_remove(pos);
        self.resolved[i] = true;
        self.num_resolved += 1;
        for &s in dag.successors(i) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.front.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Circuit {
        let mut c = Circuit::new(3);
        c.cx(0, 1); // 0
        c.cx(1, 2); // 1 depends on 0
        c.cx(0, 2); // 2 depends on 0 (q0) and 1 (q2)
        c
    }

    #[test]
    fn builds_expected_edges() {
        let c = chain();
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(0), &[] as &[usize]);
        assert_eq!(dag.predecessors(1), &[0]);
        let mut p2 = dag.predecessors(2).to_vec();
        p2.sort_unstable();
        assert_eq!(p2, vec![0, 1]);
        assert_eq!(dag.front_layer(), vec![0]);
    }

    #[test]
    fn no_duplicate_edges_for_two_shared_qubits() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(1, 0); // shares both qubits with the first
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn parallel_gates_are_both_front() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.front_layer(), vec![0, 1]);
    }

    #[test]
    fn longest_path() {
        let dag = CircuitDag::new(&chain());
        assert_eq!(dag.longest_path_len(), 3);
    }

    #[test]
    fn longest_path_empty() {
        let dag = CircuitDag::new(&Circuit::new(2));
        assert_eq!(dag.longest_path_len(), 0);
        assert!(dag.is_empty());
    }

    #[test]
    fn front_tracker_walks_the_dag() {
        let c = chain();
        let dag = CircuitDag::new(&c);
        let mut tracker = FrontTracker::new(&dag);
        assert_eq!(tracker.front(), &[0]);
        tracker.resolve(0, &dag);
        assert_eq!(tracker.front(), &[1]);
        tracker.resolve(1, &dag);
        assert_eq!(tracker.front(), &[2]);
        assert!(!tracker.is_done());
        tracker.resolve(2, &dag);
        assert!(tracker.is_done());
    }

    #[test]
    #[should_panic(expected = "front layer")]
    fn resolving_non_front_gate_panics() {
        let c = chain();
        let dag = CircuitDag::new(&c);
        let mut tracker = FrontTracker::new(&dag);
        tracker.resolve(2, &dag);
    }

    #[test]
    fn barrier_creates_dependencies() {
        let mut c = Circuit::new(2);
        c.h(0); // 0
        c.barrier(vec![0, 1]); // 1
        c.h(1); // 2
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(2), &[1]);
    }
}
