//! The logical qubit interaction graph of a circuit.
//!
//! Nodes are logical qubits; the weight of edge `(a, b)` counts the
//! two-qubit gates between `a` and `b`. Initial-mapping heuristics use
//! this structure: frequently-interacting qubits should be placed on
//! adjacent (or near) physical qubits.

use crate::circuit::Circuit;
use crate::gate::QubitId;
use std::collections::BTreeMap;

/// Weighted interaction graph over a circuit's logical qubits.
///
/// # Examples
///
/// ```
/// use codar_circuit::{Circuit, interaction::InteractionGraph};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// let ig = InteractionGraph::of(&c);
/// assert_eq!(ig.weight(0, 1), 2);
/// assert_eq!(ig.weight(1, 2), 1);
/// assert_eq!(ig.weight(0, 2), 0);
/// assert_eq!(ig.degree(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionGraph {
    num_qubits: usize,
    weights: BTreeMap<(QubitId, QubitId), usize>,
    degree: Vec<usize>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit` (barriers and 1-qubit
    /// operations contribute nothing; 3-qubit gates contribute each of
    /// their qubit pairs).
    pub fn of(circuit: &Circuit) -> Self {
        let mut weights: BTreeMap<(QubitId, QubitId), usize> = BTreeMap::new();
        let mut degree = vec![0usize; circuit.num_qubits()];
        for gate in circuit.gates() {
            if !gate.kind.is_unitary() || gate.qubits.len() < 2 {
                continue;
            }
            for (i, &a) in gate.qubits.iter().enumerate() {
                for &b in &gate.qubits[i + 1..] {
                    let key = (a.min(b), a.max(b));
                    *weights.entry(key).or_insert(0) += 1;
                    degree[a] += 1;
                    degree[b] += 1;
                }
            }
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            weights,
            degree,
        }
    }

    /// Number of logical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of two-qubit interactions between `a` and `b`.
    pub fn weight(&self, a: QubitId, b: QubitId) -> usize {
        *self.weights.get(&(a.min(b), a.max(b))).unwrap_or(&0)
    }

    /// Total interaction count incident to `q`.
    pub fn degree(&self, q: QubitId) -> usize {
        self.degree[q]
    }

    /// All weighted edges `((a, b), weight)` in canonical order.
    pub fn edges(&self) -> impl Iterator<Item = ((QubitId, QubitId), usize)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Logical qubits sorted by descending interaction degree — the
    /// placement priority order used by density-based initial mappings.
    pub fn qubits_by_degree(&self) -> Vec<QubitId> {
        let mut order: Vec<QubitId> = (0..self.num_qubits).collect();
        order.sort_by_key(|&q| std::cmp::Reverse(self.degree[q]));
        order
    }

    /// The neighbors of `q` with their weights, heaviest first.
    pub fn neighbors(&self, q: QubitId) -> Vec<(QubitId, usize)> {
        let mut out: Vec<(QubitId, usize)> = self
            .weights
            .iter()
            .filter_map(|(&(a, b), &w)| {
                if a == q {
                    Some((b, w))
                } else if b == q {
                    Some((a, w))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_pairwise_interactions() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cz(1, 0); // same pair, other order/kind
        c.cx(2, 3);
        c.h(0); // ignored
        let ig = InteractionGraph::of(&c);
        assert_eq!(ig.weight(0, 1), 2);
        assert_eq!(ig.weight(2, 3), 1);
        assert_eq!(ig.degree(1), 2);
    }

    #[test]
    fn three_qubit_gate_counts_all_pairs() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let ig = InteractionGraph::of(&c);
        assert_eq!(ig.weight(0, 1), 1);
        assert_eq!(ig.weight(0, 2), 1);
        assert_eq!(ig.weight(1, 2), 1);
    }

    #[test]
    fn barriers_do_not_count() {
        let mut c = Circuit::new(3);
        c.barrier(vec![0, 1, 2]);
        let ig = InteractionGraph::of(&c);
        assert_eq!(ig.edges().count(), 0);
    }

    #[test]
    fn degree_ordering() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(0, 3);
        c.cx(1, 2);
        let ig = InteractionGraph::of(&c);
        let order = ig.qubits_by_degree();
        assert_eq!(order[0], 0); // degree 3
        assert_eq!(*order.last().expect("non-empty"), 3); // degree 1
    }

    #[test]
    fn neighbors_sorted_by_weight() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(0, 2);
        c.cx(0, 2);
        let ig = InteractionGraph::of(&c);
        assert_eq!(ig.neighbors(0), vec![(2, 2), (1, 1)]);
        assert_eq!(ig.neighbors(1), vec![(0, 1)]);
    }
}
