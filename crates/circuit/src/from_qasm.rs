//! Conversion from the OpenQASM frontend's [`FlatProgram`] to the circuit
//! IR, and back.

use crate::circuit::Circuit;
use crate::gate::GateKind;
use codar_qasm::semantic::{FlatOp, FlatProgram, PrimitiveGate};
use codar_qasm::{QasmError, QasmErrorKind};

/// Maps a frontend primitive gate to the IR gate kind.
///
/// `U` is identified with `u3` (they denote the same unitary).
pub fn gate_kind_of(primitive: PrimitiveGate) -> GateKind {
    match primitive {
        PrimitiveGate::U | PrimitiveGate::U3 => GateKind::U3,
        PrimitiveGate::Id => GateKind::Id,
        PrimitiveGate::U1 => GateKind::U1,
        PrimitiveGate::U2 => GateKind::U2,
        PrimitiveGate::X => GateKind::X,
        PrimitiveGate::Y => GateKind::Y,
        PrimitiveGate::Z => GateKind::Z,
        PrimitiveGate::H => GateKind::H,
        PrimitiveGate::S => GateKind::S,
        PrimitiveGate::Sdg => GateKind::Sdg,
        PrimitiveGate::T => GateKind::T,
        PrimitiveGate::Tdg => GateKind::Tdg,
        PrimitiveGate::Rx => GateKind::Rx,
        PrimitiveGate::Ry => GateKind::Ry,
        PrimitiveGate::Rz => GateKind::Rz,
        PrimitiveGate::R => GateKind::R,
        PrimitiveGate::Cx => GateKind::Cx,
        PrimitiveGate::Cy => GateKind::Cy,
        PrimitiveGate::Cz => GateKind::Cz,
        PrimitiveGate::Ch => GateKind::Ch,
        PrimitiveGate::Crz => GateKind::Crz,
        PrimitiveGate::Cu1 => GateKind::Cu1,
        PrimitiveGate::Cu3 => GateKind::Cu3,
        PrimitiveGate::Swap => GateKind::Swap,
        PrimitiveGate::Ccx => GateKind::Ccx,
        PrimitiveGate::Cswap => GateKind::Cswap,
        PrimitiveGate::Rzz => GateKind::Rzz,
        PrimitiveGate::Rxx => GateKind::Rxx,
    }
}

/// Maps an IR gate kind back to a frontend primitive gate, when one
/// exists (`Measure`/`Reset`/`Barrier` have no primitive form).
pub fn primitive_of(kind: GateKind) -> Option<PrimitiveGate> {
    Some(match kind {
        GateKind::U3 => PrimitiveGate::U3,
        GateKind::Id => PrimitiveGate::Id,
        GateKind::U1 => PrimitiveGate::U1,
        GateKind::U2 => PrimitiveGate::U2,
        GateKind::X => PrimitiveGate::X,
        GateKind::Y => PrimitiveGate::Y,
        GateKind::Z => PrimitiveGate::Z,
        GateKind::H => PrimitiveGate::H,
        GateKind::S => PrimitiveGate::S,
        GateKind::Sdg => PrimitiveGate::Sdg,
        GateKind::T => PrimitiveGate::T,
        GateKind::Tdg => PrimitiveGate::Tdg,
        GateKind::Rx => PrimitiveGate::Rx,
        GateKind::Ry => PrimitiveGate::Ry,
        GateKind::Rz => PrimitiveGate::Rz,
        GateKind::R => PrimitiveGate::R,
        GateKind::Cx => PrimitiveGate::Cx,
        GateKind::Cy => PrimitiveGate::Cy,
        GateKind::Cz => PrimitiveGate::Cz,
        GateKind::Ch => PrimitiveGate::Ch,
        GateKind::Crz => PrimitiveGate::Crz,
        GateKind::Cu1 => PrimitiveGate::Cu1,
        GateKind::Cu3 => PrimitiveGate::Cu3,
        GateKind::Swap => PrimitiveGate::Swap,
        GateKind::Ccx => PrimitiveGate::Ccx,
        GateKind::Cswap => PrimitiveGate::Cswap,
        GateKind::Rzz => PrimitiveGate::Rzz,
        GateKind::Rxx => PrimitiveGate::Rxx,
        GateKind::Measure | GateKind::Reset | GateKind::Barrier => return None,
    })
}

/// Builds a [`Circuit`] from a lowered OpenQASM program.
///
/// Classical conditions on gates are dropped (routing must be valid for
/// either branch, see the `codar-qasm` crate docs).
pub fn circuit_from_flat(flat: &FlatProgram) -> Circuit {
    let mut circuit = Circuit::with_bits(flat.num_qubits, flat.num_bits);
    for op in &flat.ops {
        match op {
            FlatOp::Gate {
                gate,
                params,
                qubits,
                conditional: _,
            } => {
                circuit.add(gate_kind_of(*gate), qubits.clone(), params.clone());
            }
            FlatOp::Measure { qubit, bit } => circuit.measure(*qubit, *bit),
            FlatOp::Reset { qubit } => {
                circuit.add(GateKind::Reset, vec![*qubit], vec![]);
            }
            FlatOp::Barrier { qubits } => circuit.barrier(qubits.clone()),
        }
    }
    circuit
}

/// Parses OpenQASM 2.0 source straight into a [`Circuit`].
///
/// # Errors
///
/// Propagates any [`QasmError`] from parsing or lowering.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let c = codar_circuit::from_qasm::circuit_from_source(
///     "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; h q[0]; cx q[0],q[1];",
/// )?;
/// assert_eq!(c.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn circuit_from_source(source: &str) -> Result<Circuit, QasmError> {
    Ok(circuit_from_flat(&codar_qasm::parse_and_flatten(source)?))
}

/// Converts a circuit back into a [`FlatProgram`] (for QASM emission).
///
/// # Errors
///
/// Returns a semantic [`QasmError`] if the circuit contains a `Measure`
/// without classical destination.
pub fn flat_from_circuit(circuit: &Circuit) -> Result<FlatProgram, QasmError> {
    let mut flat = FlatProgram {
        num_qubits: circuit.num_qubits(),
        num_bits: circuit.num_bits(),
        qregs: vec![("q".to_string(), circuit.num_qubits())],
        cregs: if circuit.num_bits() > 0 {
            vec![("c".to_string(), circuit.num_bits())]
        } else {
            vec![]
        },
        ops: Vec::new(),
    };
    for gate in circuit.gates() {
        match gate.kind {
            GateKind::Measure => {
                let bit = gate.classical_bit.ok_or_else(|| {
                    QasmError::new(
                        QasmErrorKind::Semantic,
                        "measure without classical destination cannot be emitted",
                    )
                })?;
                flat.ops.push(FlatOp::Measure {
                    qubit: gate.qubits[0],
                    bit,
                });
            }
            GateKind::Reset => flat.ops.push(FlatOp::Reset {
                qubit: gate.qubits[0],
            }),
            GateKind::Barrier => flat.ops.push(FlatOp::Barrier {
                qubits: gate.qubits.clone(),
            }),
            kind => {
                let primitive =
                    primitive_of(kind).expect("unitary kinds always have a primitive form");
                flat.ops.push(FlatOp::Gate {
                    gate: primitive,
                    params: gate.params.clone(),
                    qubits: gate.qubits.clone(),
                    conditional: None,
                });
            }
        }
    }
    Ok(flat)
}

/// Renders a circuit as OpenQASM 2.0 source.
///
/// # Errors
///
/// Same conditions as [`flat_from_circuit`].
pub fn circuit_to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    Ok(codar_qasm::writer::write(&flat_from_circuit(circuit)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_simple_program() {
        let c = circuit_from_source(
            "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[3]; creg c[3]; \
             h q[0]; cx q[0], q[1]; ccx q[0], q[1], q[2]; measure q -> c;",
        )
        .unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.len(), 6);
        assert_eq!(c.count_kind(GateKind::Measure), 3);
    }

    #[test]
    fn u_builtin_becomes_u3() {
        let c = circuit_from_source("qreg q[1]; U(0.1, 0.2, 0.3) q[0];").unwrap();
        assert_eq!(c.gates()[0].kind, GateKind::U3);
        assert_eq!(c.gates()[0].params, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn qasm_round_trip_through_ir() {
        let src = "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[4]; creg c[4]; \
                   h q[0]; cx q[0], q[1]; rz(pi/8) q[2]; swap q[2], q[3]; \
                   barrier q[0], q[1]; measure q[0] -> c[0];";
        let c1 = circuit_from_source(src).unwrap();
        let emitted = circuit_to_qasm(&c1).unwrap();
        let c2 = circuit_from_source(&emitted).unwrap();
        assert_eq!(c1.gates(), c2.gates());
    }

    #[test]
    fn primitive_mapping_is_inverse() {
        for &kind in GateKind::all_unitary() {
            if kind == GateKind::U3 {
                continue; // U and u3 both map to U3; inverse picks u3
            }
            let p = primitive_of(kind).unwrap();
            assert_eq!(gate_kind_of(p), kind);
        }
    }

    #[test]
    fn reset_round_trips() {
        let c = circuit_from_source("qreg q[2]; reset q[1];").unwrap();
        assert_eq!(c.gates()[0].kind, GateKind::Reset);
        let qasm = circuit_to_qasm(&c).unwrap();
        assert!(qasm.contains("reset q[1];"));
    }
}
