//! Peephole circuit optimization passes.
//!
//! Qubit mapping quality depends on the input circuit; real toolchains
//! clean circuits up before routing. This module provides the classic
//! passes:
//!
//! * [`cancel_inverse_pairs`] — drops adjacent self-inverse pairs
//!   (`h h`, `cx cx`, `s sdg`, …),
//! * [`merge_rotations`] — fuses adjacent same-axis rotations
//!   (`rz(a) rz(b)` → `rz(a+b)`, likewise `rx`/`ry`/`u1`/`cu1`/`crz`/
//!   `rzz`) and drops the result when the angle vanishes,
//! * [`fuse_single_qubit_gates`] — collapses every maximal run of
//!   single-qubit gates on a qubit into one `u3`,
//! * [`optimize`] — runs the cheap passes to a fixpoint.
//!
//! "Adjacent" means adjacent in the per-qubit dependency order: for a
//! multi-qubit gate, *all* operand qubits must see the candidate as
//! their immediately preceding gate.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};

/// Whether `kind` is its own inverse (for identical operand lists).
fn self_inverse(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::H
            | GateKind::Cx
            | GateKind::Cy
            | GateKind::Cz
            | GateKind::Ch
            | GateKind::Swap
            | GateKind::Ccx
            | GateKind::Cswap
    )
}

/// Whether gates `a` then `b` cancel to the identity.
fn are_inverse_pair(a: &Gate, b: &Gate) -> bool {
    if a.qubits != b.qubits {
        // Symmetric gates cancel regardless of operand order.
        let symmetric = matches!(a.kind, GateKind::Cz | GateKind::Swap | GateKind::Rzz);
        let same_set =
            a.qubits.len() == b.qubits.len() && a.qubits.iter().all(|q| b.qubits.contains(q));
        if !(symmetric && same_set && a.kind == b.kind && a.params == b.params) {
            return false;
        }
        return matches!(a.kind, GateKind::Cz | GateKind::Swap);
    }
    match (a.kind, b.kind) {
        (x, y) if x == y && self_inverse(x) => true,
        (GateKind::S, GateKind::Sdg) | (GateKind::Sdg, GateKind::S) => true,
        (GateKind::T, GateKind::Tdg) | (GateKind::Tdg, GateKind::T) => true,
        _ => false,
    }
}

/// One pass of inverse-pair cancellation; returns the cleaned circuit
/// and whether anything changed.
fn cancel_pass(circuit: &Circuit) -> (Circuit, bool) {
    let gates = circuit.gates();
    let mut removed = vec![false; gates.len()];
    // last_on_qubit[q] = index of the latest surviving gate touching q.
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    let mut changed = false;
    for (i, gate) in gates.iter().enumerate() {
        if gate.kind == GateKind::Barrier {
            for &q in &gate.qubits {
                last_on_qubit[q] = Some(i);
            }
            continue;
        }
        // The candidate predecessor must be the immediately preceding
        // gate on every operand qubit.
        let pred = gate
            .qubits
            .iter()
            .map(|&q| last_on_qubit[q])
            .collect::<Vec<_>>();
        let cancellable = match pred.first() {
            Some(&Some(p)) if pred.iter().all(|&x| x == Some(p)) => {
                !removed[p]
                    && gates[p].kind != GateKind::Barrier
                    && gates[p].qubits.len() == gate.qubits.len()
                    && are_inverse_pair(&gates[p], gate)
            }
            _ => false,
        };
        if cancellable {
            let p = pred[0].expect("checked above");
            removed[p] = true;
            removed[i] = true;
            changed = true;
            // Roll the per-qubit pointers back past the removed pair.
            for &q in &gate.qubits {
                let mut newest = None;
                for (j, g) in gates.iter().enumerate().take(i) {
                    if !removed[j] && g.acts_on(q) {
                        newest = Some(j);
                    }
                }
                last_on_qubit[q] = newest;
            }
        } else {
            for &q in &gate.qubits {
                last_on_qubit[q] = Some(i);
            }
        }
    }
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    for (i, gate) in gates.iter().enumerate() {
        if !removed[i] {
            out.push(gate.clone());
        }
    }
    (out, changed)
}

/// Removes adjacent inverse pairs (`h h`, `cx cx`, `t tdg`, symmetric
/// `cz`/`swap` in either operand order) until none remain.
pub fn cancel_inverse_pairs(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let (next, changed) = cancel_pass(&current);
        current = next;
        if !changed {
            return current;
        }
    }
}

/// Whether the rotation kind is periodic in 2π and droppable at 0.
fn mergeable_rotation(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::U1
            | GateKind::Crz
            | GateKind::Cu1
            | GateKind::Rzz
    )
}

fn angle_is_zero(angle: f64) -> bool {
    let tau = 2.0 * std::f64::consts::PI;
    let r = angle.rem_euclid(tau);
    r.abs() < 1e-12 || (tau - r).abs() < 1e-12
}

/// Merges adjacent same-kind rotations on identical operands; drops
/// rotations whose merged angle is a multiple of 2π.
///
/// Note: `rz(2π) = −I` (a global phase), so dropping it is exact up to
/// global phase — the standard compiler convention.
pub fn merge_rotations(circuit: &Circuit) -> Circuit {
    let gates = circuit.gates();
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
    for gate in gates {
        let gate = gate.clone();
        if mergeable_rotation(gate.kind) {
            let pred: Vec<Option<usize>> = gate.qubits.iter().map(|&q| last_on_qubit[q]).collect();
            if let Some(&Some(p)) = pred.first() {
                if pred.iter().all(|&x| x == Some(p))
                    && out[p].kind == gate.kind
                    && out[p].qubits == gate.qubits
                {
                    // Merge into the predecessor in place.
                    let merged = out[p].params[0] + gate.params[0];
                    if angle_is_zero(merged) {
                        // Remove the predecessor entirely.
                        out.remove(p);
                        for slot in last_on_qubit.iter_mut() {
                            *slot = match *slot {
                                Some(j) if j == p => None,
                                Some(j) if j > p => Some(j - 1),
                                other => other,
                            };
                        }
                        // Recompute the freed qubits' predecessors.
                        for &q in &gate.qubits {
                            let mut newest = None;
                            for (j, g) in out.iter().enumerate() {
                                if g.acts_on(q) {
                                    newest = Some(j);
                                }
                            }
                            last_on_qubit[q] = newest;
                        }
                    } else {
                        out[p].params[0] = merged;
                    }
                    continue;
                }
            }
            if angle_is_zero(gate.params[0]) {
                continue; // rotation by 0: drop outright
            }
        }
        let index = out.len();
        for &q in &gate.qubits {
            last_on_qubit[q] = Some(index);
        }
        out.push(gate);
    }
    let mut result = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    result.extend(out);
    result
}

// ---- single-qubit fusion ---------------------------------------------

#[derive(Clone, Copy)]
struct C(f64, f64); // re, im

impl C {
    const ZERO: C = C(0.0, 0.0);
    fn mul(self, o: C) -> C {
        C(self.0 * o.0 - self.1 * o.1, self.0 * o.1 + self.1 * o.0)
    }
    fn add(self, o: C) -> C {
        C(self.0 + o.0, self.1 + o.1)
    }
    fn expi(t: f64) -> C {
        C(t.cos(), t.sin())
    }
    fn scale(self, k: f64) -> C {
        C(self.0 * k, self.1 * k)
    }
    fn abs(self) -> f64 {
        (self.0 * self.0 + self.1 * self.1).sqrt()
    }
    fn arg(self) -> f64 {
        self.1.atan2(self.0)
    }
}

type Mat = [[C; 2]; 2];

fn u3_mat(theta: f64, phi: f64, lambda: f64) -> Mat {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    [
        [C(c, 0.0), C::expi(lambda).scale(-s)],
        [C::expi(phi).scale(s), C::expi(phi + lambda).scale(c)],
    ]
}

fn mat_mul(a: &Mat, b: &Mat) -> Mat {
    let mut m = [[C::ZERO; 2]; 2];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0].mul(b[0][j]).add(a[i][1].mul(b[1][j]));
        }
    }
    m
}

/// Euler angles of a single-qubit gate kind (same table as the
/// simulator's; `None` for non-1q or non-unitary kinds).
pub fn euler_angles(kind: GateKind, params: &[f64]) -> Option<(f64, f64, f64)> {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    Some(match kind {
        GateKind::Id => (0.0, 0.0, 0.0),
        GateKind::X => (PI, 0.0, PI),
        GateKind::Y => (PI, FRAC_PI_2, FRAC_PI_2),
        GateKind::Z => (0.0, 0.0, PI),
        GateKind::H => (FRAC_PI_2, 0.0, PI),
        GateKind::S => (0.0, 0.0, FRAC_PI_2),
        GateKind::Sdg => (0.0, 0.0, -FRAC_PI_2),
        GateKind::T => (0.0, 0.0, FRAC_PI_4),
        GateKind::Tdg => (0.0, 0.0, -FRAC_PI_4),
        GateKind::Rx => (params[0], -FRAC_PI_2, FRAC_PI_2),
        GateKind::Ry => (params[0], 0.0, 0.0),
        GateKind::Rz | GateKind::U1 => (0.0, 0.0, params[0]),
        GateKind::R => (params[0], params[1] - FRAC_PI_2, FRAC_PI_2 - params[1]),
        GateKind::U2 => (FRAC_PI_2, params[0], params[1]),
        GateKind::U3 => (params[0], params[1], params[2]),
        _ => return None,
    })
}

/// Recovers `u3` angles from a unitary 2×2 matrix, up to global phase.
fn mat_to_u3(m: &Mat) -> (f64, f64, f64) {
    let theta = 2.0 * m[1][0].abs().atan2(m[0][0].abs());
    // Normalize the global phase so that m00 is real non-negative.
    let g = m[0][0].arg();
    let phi = if m[1][0].abs() > 1e-12 {
        m[1][0].arg() - g
    } else {
        0.0
    };
    let lambda = if m[0][1].abs() > 1e-12 {
        (m[0][1].arg() - g) - std::f64::consts::PI - 0.0
    } else if m[1][1].abs() > 1e-12 {
        (m[1][1].arg() - g) - phi
    } else {
        0.0
    };
    (theta, phi, lambda)
}

/// Collapses every maximal run of single-qubit unitaries on each qubit
/// into a single `u3` gate (runs of length 1 are kept verbatim, and
/// runs that multiply out to the identity are dropped).
pub fn fuse_single_qubit_gates(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    // Pending accumulated matrix per qubit.
    let mut pending: Vec<Option<(Mat, usize)>> = vec![None; circuit.num_qubits()];
    let flush = |out: &mut Circuit, pending: &mut Vec<Option<(Mat, usize)>>, q: usize| {
        if let Some((m, count)) = pending[q].take() {
            let (theta, phi, lambda) = mat_to_u3(&m);
            let trivial = theta.abs() < 1e-12 && angle_is_zero(phi + lambda);
            if !trivial {
                let _ = count;
                out.add(GateKind::U3, vec![q], vec![theta, phi, lambda]);
            }
        }
    };
    for gate in circuit.gates() {
        if gate.qubits.len() == 1 {
            if let Some((theta, phi, lambda)) = euler_angles(gate.kind, &gate.params) {
                let m = u3_mat(theta, phi, lambda);
                let q = gate.qubits[0];
                pending[q] = Some(match pending[q].take() {
                    Some((acc, n)) => (mat_mul(&m, &acc), n + 1),
                    None => (m, 1),
                });
                continue;
            }
        }
        for &q in &gate.qubits {
            flush(&mut out, &mut pending, q);
        }
        out.push(gate.clone());
    }
    for q in 0..circuit.num_qubits() {
        flush(&mut out, &mut pending, q);
    }
    out
}

/// Runs [`cancel_inverse_pairs`] and [`merge_rotations`] to a fixpoint.
///
/// (Single-qubit fusion is *not* included: it rewrites named gates into
/// `u3`, which destroys the commutation classes CODAR exploits; apply
/// it explicitly when targeting hardware that executes raw `u3`.)
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let before = current.len();
        current = merge_rotations(&cancel_inverse_pairs(&current));
        if current.len() == before {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_hadamard_cancels() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.h(0);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn chained_cancellation() {
        // h x x h -> h h -> empty, needs the fixpoint loop.
        let mut c = Circuit::new(1);
        c.h(0);
        c.x(0);
        c.x(0);
        c.h(0);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn intervening_gate_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.t(0);
        c.h(0);
        assert_eq!(cancel_inverse_pairs(&c).len(), 3);
    }

    #[test]
    fn cx_pair_cancels_only_with_same_orientation() {
        let mut same = Circuit::new(2);
        same.cx(0, 1);
        same.cx(0, 1);
        assert!(cancel_inverse_pairs(&same).is_empty());
        let mut flipped = Circuit::new(2);
        flipped.cx(0, 1);
        flipped.cx(1, 0);
        assert_eq!(cancel_inverse_pairs(&flipped).len(), 2);
    }

    #[test]
    fn symmetric_gates_cancel_in_either_order() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        c.cz(1, 0);
        assert!(cancel_inverse_pairs(&c).is_empty());
        let mut s = Circuit::new(2);
        s.swap(0, 1);
        s.swap(1, 0);
        assert!(cancel_inverse_pairs(&s).is_empty());
    }

    #[test]
    fn partial_overlap_blocks_two_qubit_cancellation() {
        // cx(0,1) t(1) cx(0,1): the t on the target blocks it.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.t(1);
        c.cx(0, 1);
        assert_eq!(cancel_inverse_pairs(&c).len(), 3);
    }

    #[test]
    fn t_tdg_cancels() {
        let mut c = Circuit::new(1);
        c.t(0);
        c.tdg(0);
        assert!(cancel_inverse_pairs(&c).is_empty());
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.barrier(vec![0]);
        c.h(0);
        assert_eq!(cancel_inverse_pairs(&c).len(), 3);
    }

    #[test]
    fn rotations_merge() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0);
        c.rz(0.4, 0);
        let m = merge_rotations(&c);
        assert_eq!(m.len(), 1);
        assert!((m.gates()[0].params[0] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn opposite_rotations_vanish() {
        let mut c = Circuit::new(1);
        c.rz(0.5, 0);
        c.rz(-0.5, 0);
        assert!(merge_rotations(&c).is_empty());
    }

    #[test]
    fn zero_rotation_dropped() {
        let mut c = Circuit::new(1);
        c.rz(0.0, 0);
        c.h(0);
        let m = merge_rotations(&c);
        assert_eq!(m.len(), 1);
        assert_eq!(m.gates()[0].kind, GateKind::H);
    }

    #[test]
    fn two_qubit_rotations_merge() {
        let mut c = Circuit::new(2);
        c.rzz(0.2, 0, 1);
        c.rzz(0.3, 0, 1);
        c.cu1(0.1, 0, 1);
        c.cu1(0.1, 0, 1);
        let m = merge_rotations(&c);
        assert_eq!(m.len(), 2);
        assert!((m.gates()[0].params[0] - 0.5).abs() < 1e-12);
        assert!((m.gates()[1].params[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_respects_intervening_gates() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0);
        c.cx(0, 1);
        c.rz(0.4, 0);
        assert_eq!(merge_rotations(&c).len(), 3);
    }

    #[test]
    fn fusion_collapses_runs() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.t(0);
        c.s(0);
        c.cx(0, 1);
        c.h(1);
        let f = fuse_single_qubit_gates(&c);
        // one u3 (fused h t s), cx, one u3 (lone h — still rewritten).
        assert_eq!(f.len(), 3);
        assert_eq!(f.gates()[0].kind, GateKind::U3);
        assert_eq!(f.gates()[1].kind, GateKind::Cx);
        assert_eq!(f.gates()[2].kind, GateKind::U3);
    }

    #[test]
    fn fusion_drops_identity_runs() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.h(0);
        assert!(fuse_single_qubit_gates(&c).is_empty());
        let mut c2 = Circuit::new(1);
        c2.s(0);
        c2.sdg(0);
        assert!(fuse_single_qubit_gates(&c2).is_empty());
    }

    #[test]
    fn optimize_reaches_fixpoint() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        c.rz(0.25, 1);
        c.rz(-0.25, 1);
        c.cx(0, 1);
        c.cx(0, 1);
        c.t(0);
        assert_eq!(optimize(&c).len(), 1);
    }

    #[test]
    fn optimize_keeps_meaningful_gates() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        c.rz(0.5, 1);
        assert_eq!(optimize(&c).len(), 3);
    }

    #[test]
    fn measure_and_reset_pass_through() {
        let mut c = Circuit::new(1);
        c.measure(0, 0);
        c.add(GateKind::Reset, vec![0], vec![]);
        assert_eq!(optimize(&c).len(), 2);
        assert_eq!(fuse_single_qubit_gates(&c).len(), 2);
    }
}
