//! Quantum circuit intermediate representation for the CODAR reproduction.
//!
//! The IR is a flat gate list over logical qubits, with supporting passes:
//!
//! * [`gate`] — the gate set and per-gate metadata,
//! * [`circuit`] — the [`Circuit`] container and builder API,
//! * [`from_qasm`] — conversion from the OpenQASM frontend,
//! * [`dag`] — dependency DAG (per-qubit program order),
//! * [`commute`] — structural gate commutation rules (paper Sec. IV-B),
//! * [`decompose`] — lowering of 3-qubit gates to the `{1q, CX}` basis,
//! * [`schedule`] — ASAP scheduling and *weighted depth* (the paper's
//!   execution-time metric),
//! * [`stats`] — circuit statistics.
//!
//! # Examples
//!
//! ```
//! use codar_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0);
//! c.cx(0, 1);
//! c.cx(1, 2);
//! assert_eq!(c.len(), 3);
//! assert_eq!(c.two_qubit_gate_count(), 2);
//! ```

pub mod circuit;
pub mod commute;
pub mod dag;
pub mod decompose;
pub mod from_qasm;
pub mod gate;
pub mod interaction;
pub mod optimize;
pub mod render;
pub mod schedule;
pub mod stats;

pub use circuit::Circuit;
pub use commute::{commutes, QubitAction};
pub use dag::CircuitDag;
pub use gate::{Gate, GateKind, QubitId};
pub use schedule::{weighted_depth, Schedule};
