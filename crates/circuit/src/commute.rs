//! Structural gate commutation rules (paper Sec. IV-B).
//!
//! The paper resolves commutation of gates sharing qubits "by checking the
//! relevant unitary operators ÂB̂ = B̂Â". For the `qelib1` gate family every
//! gate factors per qubit into one of a few *action classes*; two gates
//! commute whenever, on every shared qubit, their action classes commute.
//! This is the standard structural criterion (cf. Qiskit's commutation
//! analysis) and it is **sound** (never claims commutation that does not
//! hold) for the controlled-gate family used here, while capturing the
//! cases that matter for lookahead, e.g. two CNOTs sharing a control or
//! sharing a target.
//!
//! # Examples
//!
//! ```
//! use codar_circuit::{commutes, Gate, GateKind};
//!
//! let a = Gate::new(GateKind::Cx, vec![1, 3], vec![]);
//! let b = Gate::new(GateKind::Cx, vec![2, 3], vec![]);
//! // Both act on q3 as X-type targets, so they commute (paper's example).
//! assert!(commutes(&a, &b));
//!
//! let c = Gate::new(GateKind::Cx, vec![3, 2], vec![]);
//! // a targets q3, c controls on q3: they do not commute.
//! assert!(!commutes(&a, &c));
//! ```

use crate::gate::{Gate, GateKind, QubitId};

/// How a gate acts on one of its qubit operands, up to commutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QubitAction {
    /// Acts as the identity (commutes with everything).
    Identity,
    /// Diagonal in the Z basis (Z, S, T, Rz, U1, CZ/CRZ/CU1/RZZ on either
    /// qubit, the control of any controlled gate).
    ZDiagonal,
    /// An X-axis action (X, Rx, the target of CX/CCX).
    XAxis,
    /// A Y-axis action (Y, Ry, the target of CY).
    YAxis,
    /// Anything else (H, U2/U3, SWAP, measure, reset, …).
    Arbitrary,
}

impl QubitAction {
    /// Whether two single-qubit action classes commute.
    ///
    /// Conservative: `Arbitrary` commutes with nothing but `Identity`.
    pub fn commutes_with(self, other: QubitAction) -> bool {
        use QubitAction::*;
        match (self, other) {
            (Identity, _) | (_, Identity) => true,
            (ZDiagonal, ZDiagonal) => true,
            (XAxis, XAxis) => true,
            (YAxis, YAxis) => true,
            _ => false,
        }
    }
}

/// Classifies how `gate` acts on `qubit` (which must be an operand).
///
/// # Panics
///
/// Panics if `qubit` is not an operand of `gate`.
pub fn action_on(gate: &Gate, qubit: QubitId) -> QubitAction {
    let pos = gate
        .qubits
        .iter()
        .position(|&q| q == qubit)
        .expect("qubit is not an operand of this gate");
    match gate.kind {
        GateKind::Id => QubitAction::Identity,
        GateKind::Z
        | GateKind::S
        | GateKind::Sdg
        | GateKind::T
        | GateKind::Tdg
        | GateKind::Rz
        | GateKind::U1 => QubitAction::ZDiagonal,
        GateKind::X | GateKind::Rx => QubitAction::XAxis,
        GateKind::Y | GateKind::Ry => QubitAction::YAxis,
        GateKind::H | GateKind::U2 | GateKind::U3 => QubitAction::Arbitrary,
        // r(θ, φ): an X rotation at φ = 0, a Y rotation at φ = π/2,
        // otherwise a general axis in the XY plane.
        GateKind::R => {
            let phi = gate.params[1].rem_euclid(std::f64::consts::PI);
            if phi.abs() < 1e-12 {
                QubitAction::XAxis
            } else if (phi - std::f64::consts::FRAC_PI_2).abs() < 1e-12 {
                QubitAction::YAxis
            } else {
                QubitAction::Arbitrary
            }
        }
        // The Mølmer–Sørensen interaction is X-diagonal on both qubits.
        GateKind::Rxx => QubitAction::XAxis,
        // Fully diagonal two-qubit gates.
        GateKind::Cz | GateKind::Crz | GateKind::Cu1 | GateKind::Rzz => QubitAction::ZDiagonal,
        // Controlled gates: control is Z-diagonal, target depends on gate.
        GateKind::Cx => {
            if pos == 0 {
                QubitAction::ZDiagonal
            } else {
                QubitAction::XAxis
            }
        }
        GateKind::Cy => {
            if pos == 0 {
                QubitAction::ZDiagonal
            } else {
                QubitAction::YAxis
            }
        }
        GateKind::Ch | GateKind::Cu3 => {
            if pos == 0 {
                QubitAction::ZDiagonal
            } else {
                QubitAction::Arbitrary
            }
        }
        GateKind::Ccx => {
            if pos <= 1 {
                QubitAction::ZDiagonal
            } else {
                QubitAction::XAxis
            }
        }
        GateKind::Cswap => {
            if pos == 0 {
                QubitAction::ZDiagonal
            } else {
                QubitAction::Arbitrary
            }
        }
        GateKind::Swap => QubitAction::Arbitrary,
        GateKind::Measure | GateKind::Reset | GateKind::Barrier => QubitAction::Arbitrary,
    }
}

/// Decides whether two gates commute.
///
/// * A [`GateKind::Barrier`] commutes with nothing that shares a qubit
///   with it (it is a scheduling fence).
/// * Gates on disjoint qubits always commute.
/// * Otherwise, the gates commute iff their action classes commute on
///   every shared qubit.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    if !a.overlaps(b) {
        return true;
    }
    if a.kind == GateKind::Barrier || b.kind == GateKind::Barrier {
        return false;
    }
    // Identical unitary operations trivially commute (A·A = A·A); this
    // matters for e.g. back-to-back Hadamards, which the action classes
    // below would conservatively reject.
    if a.kind.is_unitary() && a == b {
        return true;
    }
    for &q in &a.qubits {
        if b.acts_on(q) && !action_on(a, q).commutes_with(action_on(b, q)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(c: QubitId, t: QubitId) -> Gate {
        Gate::new(GateKind::Cx, vec![c, t], vec![])
    }

    fn g1(kind: GateKind, q: QubitId) -> Gate {
        let params = vec![0.3; kind.num_params()];
        Gate::new(kind, vec![q], params)
    }

    #[test]
    fn disjoint_gates_commute() {
        assert!(commutes(&cx(0, 1), &cx(2, 3)));
        assert!(commutes(&g1(GateKind::H, 0), &g1(GateKind::H, 1)));
    }

    #[test]
    fn paper_example_shared_target_cnots_commute() {
        // Sec. IV-B: CX q1,q3 and CX q2,q3 are both CF gates.
        assert!(commutes(&cx(1, 3), &cx(2, 3)));
    }

    #[test]
    fn shared_control_cnots_commute() {
        assert!(commutes(&cx(0, 1), &cx(0, 2)));
    }

    #[test]
    fn control_target_conflict_does_not_commute() {
        assert!(!commutes(&cx(0, 1), &cx(1, 2)));
        assert!(!commutes(&cx(1, 2), &cx(0, 1)));
    }

    #[test]
    fn opposite_direction_cnots_do_not_commute() {
        assert!(!commutes(&cx(0, 1), &cx(1, 0)));
    }

    #[test]
    fn diagonal_commutes_with_control() {
        for kind in [
            GateKind::Z,
            GateKind::S,
            GateKind::T,
            GateKind::Rz,
            GateKind::U1,
        ] {
            assert!(commutes(&g1(kind, 0), &cx(0, 1)), "{kind} vs control");
            assert!(!commutes(&g1(kind, 1), &cx(0, 1)), "{kind} vs target");
        }
    }

    #[test]
    fn x_commutes_with_target() {
        assert!(commutes(&g1(GateKind::X, 1), &cx(0, 1)));
        assert!(commutes(&g1(GateKind::Rx, 1), &cx(0, 1)));
        assert!(!commutes(&g1(GateKind::X, 0), &cx(0, 1)));
    }

    #[test]
    fn h_commutes_with_nothing_shared() {
        assert!(!commutes(&g1(GateKind::H, 0), &cx(0, 1)));
        assert!(!commutes(&g1(GateKind::H, 1), &cx(0, 1)));
        assert!(!commutes(&g1(GateKind::H, 0), &g1(GateKind::T, 0)));
    }

    #[test]
    fn cz_commutes_symmetrically_with_cx_control() {
        let czg = Gate::new(GateKind::Cz, vec![0, 1], vec![]);
        // CZ is diagonal; CX control on 0 is diagonal, target on 1 is X.
        assert!(commutes(&czg, &cx(0, 2))); // share q0: diag/diag
        assert!(!commutes(&czg, &cx(2, 1))); // share q1: diag/X
    }

    #[test]
    fn rzz_acts_diagonally_on_both() {
        let rzz = Gate::new(GateKind::Rzz, vec![0, 1], vec![0.5]);
        assert!(commutes(&rzz, &g1(GateKind::T, 0)));
        assert!(commutes(&rzz, &g1(GateKind::T, 1)));
        let rzz2 = Gate::new(GateKind::Rzz, vec![1, 2], vec![0.25]);
        assert!(commutes(&rzz, &rzz2));
    }

    #[test]
    fn ccx_controls_and_target() {
        let t = Gate::new(GateKind::Ccx, vec![0, 1, 2], vec![]);
        assert!(commutes(&t, &g1(GateKind::T, 0)));
        assert!(commutes(&t, &g1(GateKind::T, 1)));
        assert!(commutes(&t, &g1(GateKind::X, 2)));
        assert!(!commutes(&t, &g1(GateKind::X, 0)));
        // Two Toffolis sharing controls commute.
        let t2 = Gate::new(GateKind::Ccx, vec![0, 1, 3], vec![]);
        assert!(commutes(&t, &t2));
        // Control of one is target of the other: no.
        let t3 = Gate::new(GateKind::Ccx, vec![2, 3, 4], vec![]);
        assert!(!commutes(&t, &t3));
    }

    #[test]
    fn cx_and_ccx_same_target_commute() {
        let a = cx(0, 2);
        let b = Gate::new(GateKind::Ccx, vec![1, 3, 2], vec![]);
        assert!(commutes(&a, &b));
    }

    #[test]
    fn swap_conservative() {
        let s = Gate::new(GateKind::Swap, vec![0, 1], vec![]);
        assert!(!commutes(&s, &cx(0, 2)));
        assert!(!commutes(&s, &g1(GateKind::T, 1)));
        assert!(commutes(&s, &cx(2, 3)));
    }

    #[test]
    fn barrier_blocks_shared() {
        let b = Gate::barrier(vec![0, 1]);
        assert!(!commutes(&b, &g1(GateKind::Id, 0)));
        assert!(commutes(&b, &g1(GateKind::T, 2)));
    }

    #[test]
    fn identity_commutes_with_everything_shared() {
        assert!(commutes(&g1(GateKind::Id, 0), &g1(GateKind::H, 0)));
        assert!(commutes(&g1(GateKind::Id, 1), &cx(0, 1)));
    }

    #[test]
    fn measure_does_not_commute_when_shared() {
        let m = Gate::measure(0, 0);
        assert!(!commutes(&m, &g1(GateKind::T, 0)));
        assert!(commutes(&m, &g1(GateKind::T, 1)));
    }

    #[test]
    fn identical_gates_commute() {
        let h = g1(GateKind::H, 0);
        assert!(commutes(&h, &h));
        let s = Gate::new(GateKind::Swap, vec![0, 1], vec![]);
        assert!(commutes(&s, &s));
        // Same kind but different params: not identical, stays blocked.
        let r1 = Gate::new(GateKind::U3, vec![0], vec![0.1, 0.2, 0.3]);
        let r2 = Gate::new(GateKind::U3, vec![0], vec![0.4, 0.5, 0.6]);
        assert!(!commutes(&r1, &r2));
        // Identical measures to the same bit are order-independent, but
        // measurement is non-unitary: stay conservative.
        let m = Gate::measure(0, 0);
        assert!(!commutes(&m, &m));
    }

    #[test]
    fn commutation_is_symmetric() {
        let samples = [
            cx(0, 1),
            cx(1, 0),
            cx(0, 2),
            cx(2, 1),
            g1(GateKind::T, 0),
            g1(GateKind::X, 1),
            g1(GateKind::H, 2),
            Gate::new(GateKind::Cz, vec![0, 1], vec![]),
            Gate::new(GateKind::Swap, vec![1, 2], vec![]),
            Gate::new(GateKind::Ccx, vec![0, 1, 2], vec![]),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(commutes(a, b), commutes(b, a), "{a} vs {b}");
            }
        }
    }
}
