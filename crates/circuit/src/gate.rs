//! The gate set of the circuit IR.
//!
//! [`GateKind`] mirrors the primitive gates of `qelib1.inc` (as produced by
//! the `codar-qasm` frontend) plus the non-unitary operations `measure`,
//! `reset` and `barrier`, and the router-inserted `swap`.

use std::fmt;

/// Index of a qubit within a circuit (logical) or device (physical).
pub type QubitId = usize;

/// Every operation kind the IR understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Identity / explicit idle.
    Id,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// X rotation `rx(θ)`.
    Rx,
    /// Y rotation `ry(θ)`.
    Ry,
    /// Z rotation `rz(φ)` (≡ `u1` up to global phase).
    Rz,
    /// Ion-trap native rotation `r(θ, φ)` about the axis
    /// `cos(φ)X + sin(φ)Y` (Table I's `R^θ_α`).
    R,
    /// Diagonal phase gate `u1(λ)`.
    U1,
    /// `u2(φ, λ)` = `U(π/2, φ, λ)`.
    U2,
    /// Full single-qubit unitary `u3(θ, φ, λ)` (the OpenQASM builtin `U`).
    U3,
    /// Controlled-NOT.
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled-Hadamard.
    Ch,
    /// Controlled `rz(λ)`.
    Crz,
    /// Controlled `u1(λ)`.
    Cu1,
    /// Controlled `u3(θ, φ, λ)`.
    Cu3,
    /// Ising interaction `rzz(θ)` (diagonal two-qubit gate).
    Rzz,
    /// Ion-trap native Mølmer–Sørensen interaction `rxx(θ)` =
    /// exp(−iθ/2·X⊗X) (Table I's `XX`).
    Rxx,
    /// SWAP of two qubits (inserted by routing; 3 back-to-back CNOTs).
    Swap,
    /// Toffoli.
    Ccx,
    /// Fredkin (controlled SWAP).
    Cswap,
    /// Z-basis measurement (classical destination tracked separately).
    Measure,
    /// Reset to |0⟩.
    Reset,
    /// Scheduling barrier (variable arity, zero duration).
    Barrier,
}

impl GateKind {
    /// Number of qubit operands, or `None` for variable arity (`Barrier`).
    pub fn arity(self) -> Option<usize> {
        match self {
            GateKind::Barrier => None,
            GateKind::Ccx | GateKind::Cswap => Some(3),
            GateKind::Cx
            | GateKind::Cy
            | GateKind::Cz
            | GateKind::Ch
            | GateKind::Crz
            | GateKind::Cu1
            | GateKind::Cu3
            | GateKind::Rzz
            | GateKind::Rxx
            | GateKind::Swap => Some(2),
            _ => Some(1),
        }
    }

    /// Number of real parameters.
    pub fn num_params(self) -> usize {
        match self {
            GateKind::Rx
            | GateKind::Ry
            | GateKind::Rz
            | GateKind::U1
            | GateKind::Crz
            | GateKind::Cu1
            | GateKind::Rzz
            | GateKind::Rxx => 1,
            GateKind::U2 | GateKind::R => 2,
            GateKind::U3 | GateKind::Cu3 => 3,
            _ => 0,
        }
    }

    /// True for unitary gate operations (not measure/reset/barrier).
    pub fn is_unitary(self) -> bool {
        !matches!(
            self,
            GateKind::Measure | GateKind::Reset | GateKind::Barrier
        )
    }

    /// True for 2-qubit unitary gates (the ones constrained by coupling).
    pub fn is_two_qubit(self) -> bool {
        self.arity() == Some(2)
    }

    /// The OpenQASM surface name.
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Id => "id",
            GateKind::X => "x",
            GateKind::Y => "y",
            GateKind::Z => "z",
            GateKind::H => "h",
            GateKind::S => "s",
            GateKind::Sdg => "sdg",
            GateKind::T => "t",
            GateKind::Tdg => "tdg",
            GateKind::Rx => "rx",
            GateKind::Ry => "ry",
            GateKind::Rz => "rz",
            GateKind::R => "r",
            GateKind::U1 => "u1",
            GateKind::U2 => "u2",
            GateKind::U3 => "u3",
            GateKind::Cx => "cx",
            GateKind::Cy => "cy",
            GateKind::Cz => "cz",
            GateKind::Ch => "ch",
            GateKind::Crz => "crz",
            GateKind::Cu1 => "cu1",
            GateKind::Cu3 => "cu3",
            GateKind::Rzz => "rzz",
            GateKind::Rxx => "rxx",
            GateKind::Swap => "swap",
            GateKind::Ccx => "ccx",
            GateKind::Cswap => "cswap",
            GateKind::Measure => "measure",
            GateKind::Reset => "reset",
            GateKind::Barrier => "barrier",
        }
    }

    /// All unitary gate kinds (useful for exhaustive property tests).
    pub fn all_unitary() -> &'static [GateKind] {
        &[
            GateKind::Id,
            GateKind::X,
            GateKind::Y,
            GateKind::Z,
            GateKind::H,
            GateKind::S,
            GateKind::Sdg,
            GateKind::T,
            GateKind::Tdg,
            GateKind::Rx,
            GateKind::Ry,
            GateKind::Rz,
            GateKind::R,
            GateKind::U1,
            GateKind::U2,
            GateKind::U3,
            GateKind::Cx,
            GateKind::Cy,
            GateKind::Cz,
            GateKind::Ch,
            GateKind::Crz,
            GateKind::Cu1,
            GateKind::Cu3,
            GateKind::Rzz,
            GateKind::Rxx,
            GateKind::Swap,
            GateKind::Ccx,
            GateKind::Cswap,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One operation in a circuit: a gate kind, its qubit operands and its
/// evaluated real parameters.
///
/// For `Measure` the classical destination bit is stored in
/// [`Gate::classical_bit`]; for conditional gates the condition is not
/// modelled (routing is condition-independent).
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// The operation kind.
    pub kind: GateKind,
    /// Qubit operands; controls precede targets (e.g. `cx [control, target]`).
    pub qubits: Vec<QubitId>,
    /// Evaluated parameters, length [`GateKind::num_params`].
    pub params: Vec<f64>,
    /// Classical destination for `Measure`; `None` otherwise.
    pub classical_bit: Option<usize>,
}

impl Gate {
    /// Creates a gate, checking arity and parameter count.
    ///
    /// # Panics
    ///
    /// Panics if the operand or parameter count does not match `kind`,
    /// or if a qubit operand is repeated.
    pub fn new(kind: GateKind, qubits: Vec<QubitId>, params: Vec<f64>) -> Self {
        if let Some(arity) = kind.arity() {
            assert_eq!(
                qubits.len(),
                arity,
                "gate {kind} expects {arity} qubits, got {}",
                qubits.len()
            );
        }
        assert_eq!(
            params.len(),
            kind.num_params(),
            "gate {kind} expects {} parameters, got {}",
            kind.num_params(),
            params.len()
        );
        for (i, a) in qubits.iter().enumerate() {
            for b in &qubits[i + 1..] {
                assert_ne!(a, b, "gate {kind} has repeated qubit operand {a}");
            }
        }
        Gate {
            kind,
            qubits,
            params,
            classical_bit: None,
        }
    }

    /// Creates a measurement of `qubit` into classical `bit`.
    pub fn measure(qubit: QubitId, bit: usize) -> Self {
        Gate {
            kind: GateKind::Measure,
            qubits: vec![qubit],
            params: vec![],
            classical_bit: Some(bit),
        }
    }

    /// Creates a barrier over `qubits`.
    pub fn barrier(qubits: Vec<QubitId>) -> Self {
        Gate {
            kind: GateKind::Barrier,
            qubits,
            params: vec![],
            classical_bit: None,
        }
    }

    /// True when this gate is a 2-qubit unitary (coupling-constrained).
    pub fn is_two_qubit(&self) -> bool {
        self.kind.is_two_qubit()
    }

    /// True when `qubit` is an operand of this gate.
    pub fn acts_on(&self, qubit: QubitId) -> bool {
        self.qubits.contains(&qubit)
    }

    /// Whether this gate shares at least one qubit with `other`.
    pub fn overlaps(&self, other: &Gate) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }

    /// Returns the gate with every qubit operand remapped through `f`.
    pub fn map_qubits(&self, mut f: impl FnMut(QubitId) -> QubitId) -> Gate {
        Gate {
            kind: self.kind,
            qubits: self.qubits.iter().map(|&q| f(q)).collect(),
            params: self.params.clone(),
            classical_bit: self.classical_bit,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " ")?;
        for (i, q) in self.qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "q[{q}]")?;
        }
        if let Some(bit) = self.classical_bit {
            write!(f, " -> c[{bit}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arities() {
        assert_eq!(GateKind::H.arity(), Some(1));
        assert_eq!(GateKind::Cx.arity(), Some(2));
        assert_eq!(GateKind::Ccx.arity(), Some(3));
        assert_eq!(GateKind::Barrier.arity(), None);
    }

    #[test]
    fn param_counts() {
        assert_eq!(GateKind::Rz.num_params(), 1);
        assert_eq!(GateKind::U2.num_params(), 2);
        assert_eq!(GateKind::U3.num_params(), 3);
        assert_eq!(GateKind::Cx.num_params(), 0);
    }

    #[test]
    #[should_panic(expected = "expects 2 qubits")]
    fn wrong_arity_panics() {
        Gate::new(GateKind::Cx, vec![0], vec![]);
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn repeated_operand_panics() {
        Gate::new(GateKind::Cx, vec![1, 1], vec![]);
    }

    #[test]
    #[should_panic(expected = "parameters")]
    fn wrong_params_panics() {
        Gate::new(GateKind::Rz, vec![0], vec![]);
    }

    #[test]
    fn display_forms() {
        let g = Gate::new(GateKind::Cx, vec![0, 2], vec![]);
        assert_eq!(g.to_string(), "cx q[0], q[2]");
        let m = Gate::measure(1, 3);
        assert_eq!(m.to_string(), "measure q[1] -> c[3]");
        let r = Gate::new(GateKind::Rz, vec![0], vec![0.5]);
        assert_eq!(r.to_string(), "rz(0.5) q[0]");
    }

    #[test]
    fn overlaps_and_acts_on() {
        let a = Gate::new(GateKind::Cx, vec![0, 1], vec![]);
        let b = Gate::new(GateKind::Cx, vec![1, 2], vec![]);
        let c = Gate::new(GateKind::H, vec![3], vec![]);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.acts_on(0));
        assert!(!a.acts_on(2));
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::new(GateKind::Cx, vec![0, 1], vec![]);
        let h = g.map_qubits(|q| q + 10);
        assert_eq!(h.qubits, vec![10, 11]);
        assert_eq!(h.kind, GateKind::Cx);
    }

    #[test]
    fn all_unitary_is_consistent() {
        for &k in GateKind::all_unitary() {
            assert!(k.is_unitary());
            assert!(k.arity().is_some());
        }
    }

    #[test]
    fn unitary_classification() {
        assert!(!GateKind::Measure.is_unitary());
        assert!(!GateKind::Barrier.is_unitary());
        assert!(GateKind::Swap.is_unitary());
    }
}
