//! Portfolio selection properties: the winner is a pure function of
//! (circuit, device, members, snapshot) — invisible to scratch reuse,
//! member-list order, and engine thread count.
//!
//! * **Scratch reuse**: one [`RouteWorker`] racing the portfolio for
//!   many circuits and devices through its single scratch must pick
//!   the same winner (same label, same score bits, same routed gates)
//!   as a fresh worker per call.
//! * **Order independence**: permuting the member list changes neither
//!   the winner nor its routed circuit — the `to_bits` descending /
//!   label-ascending tie-break has no positional component.
//! * **Thread independence**: a `SuiteRunner` portfolio axis serializes
//!   byte-identically on 1 and 4 threads.

use codar_arch::{CalibrationSnapshot, Device, FidelityModel};
use codar_benchmarks::generators;
use codar_engine::{
    CalibrationSpec, EngineConfig, RouteWorker, RouterKind, RouterVariant, SuiteRunner,
};
use codar_router::Mapping;
use proptest::prelude::*;

/// The full 8-device catalog.
fn catalog() -> Vec<Device> {
    Device::presets().into_iter().map(|(_, d)| d).collect()
}

/// A deterministic random circuit sized to fit every catalog device.
fn random_circuit(seed: u64) -> codar_circuit::Circuit {
    let n = 3 + (seed % 3) as usize;
    let gates = 10 + (seed % 40) as usize;
    generators::random_clifford_t(n, gates, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fresh worker per call == one shared worker across the whole
    /// circuit × device × snapshot matrix; member order irrelevant.
    /// Even seeds race without a snapshot (depth+swap fallback
    /// scoring), odd seeds under a drifted synthetic snapshot with its
    /// EPS model.
    #[test]
    fn portfolio_winner_survives_scratch_reuse_and_member_order(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let members = RouterVariant::portfolio_members(0.5);
        let mut shared = RouteWorker::new();
        for device in catalog() {
            let (snapshot, model) = if seed % 2 == 1 {
                let snapshot =
                    CalibrationSnapshot::synthetic(&device, seed).drifted(seed % 3);
                let model = FidelityModel::from_snapshot(&snapshot);
                (Some(snapshot), Some(model))
            } else {
                (None, None)
            };
            let initial =
                Mapping::identity(circuit.num_qubits(), device.num_qubits());
            let reused = shared
                .route_portfolio(
                    &circuit,
                    &device,
                    &members,
                    Some(&initial),
                    snapshot.as_ref(),
                    model.as_ref(),
                )
                .expect("fits");
            let fresh = RouteWorker::new()
                .route_portfolio(
                    &circuit,
                    &device,
                    &members,
                    Some(&initial),
                    snapshot.as_ref(),
                    model.as_ref(),
                )
                .expect("fits");
            let context = format!("seed {seed} on {}", device.name());
            prop_assert_eq!(&reused.chosen, &fresh.chosen, "winner diverges: {}", &context);
            prop_assert_eq!(
                reused.score.to_bits(),
                fresh.score.to_bits(),
                "score diverges: {}", &context
            );
            prop_assert_eq!(
                reused.routed.circuit.gates(),
                fresh.routed.circuit.gates(),
                "routed gates diverge: {}", &context
            );
            // Member order cannot matter: reversed and rotated lists
            // elect the same winner with the same routed output.
            let mut reversed = members.clone();
            reversed.reverse();
            let mut rotated = members.clone();
            rotated.rotate_left((seed % members.len() as u64) as usize);
            for permuted in [reversed, rotated] {
                let outcome = shared
                    .route_portfolio(
                        &circuit,
                        &device,
                        &permuted,
                        Some(&initial),
                        snapshot.as_ref(),
                        model.as_ref(),
                    )
                    .expect("fits");
                prop_assert_eq!(&outcome.chosen, &fresh.chosen, "order leaked: {}", &context);
                prop_assert_eq!(
                    outcome.routed.circuit.gates(),
                    fresh.routed.circuit.gates(),
                    "order changed the routed circuit: {}", &context
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The engine's portfolio axis is thread-count invariant for random
    /// snapshot seeds and drifts — same contract the fixed axes keep.
    #[test]
    fn portfolio_axis_is_thread_invariant(seed in 0u64..100, drift in 0usize..3) {
        let entries: Vec<_> = codar_benchmarks::full_suite()
            .into_iter()
            .filter(|e| e.num_qubits <= 20 && e.circuit.len() < 120)
            .take(4)
            .collect();
        let run = |threads: usize| {
            SuiteRunner::new(EngineConfig { threads, ..EngineConfig::default() })
                .device(Device::ibm_q20_tokyo())
                .entries(entries.clone())
                .calibration(CalibrationSpec::synthetic("prop", seed, drift))
                .variant(RouterVariant::of_kind(RouterKind::Codar))
                .variant(RouterVariant::portfolio(0.5))
                .run()
        };
        let one = run(1);
        let four = run(4);
        prop_assert!(one.failures.is_empty(), "{:?}", one.failures);
        prop_assert_eq!(one.summary.to_json(), four.summary.to_json());
        prop_assert_eq!(one.summary.to_csv(), four.summary.to_csv());
    }
}
