//! Engine-level integration tests: summary determinism across thread
//! counts, and a parallel smoke run of a real suite subset on the
//! paper's IBM Q20 Tokyo device.

use codar_arch::Device;
use codar_benchmarks::suite::full_suite;
use codar_engine::{EngineConfig, RouterKind, SuiteRunner};

fn config(threads: usize) -> EngineConfig {
    EngineConfig {
        threads,
        seed: 3,
        ..EngineConfig::default()
    }
}

/// The acceptance property: 1-thread and N-thread runs of the same
/// matrix serialize to byte-identical JSON and CSV.
#[test]
fn summary_is_byte_identical_across_thread_counts() {
    let entries: Vec<_> = full_suite().into_iter().take(12).collect();
    let run = |threads: usize| {
        SuiteRunner::new(config(threads))
            .device(Device::ibm_q16_melbourne())
            .device(Device::ibm_q20_tokyo())
            .entries(entries.clone())
            .run()
    };
    let one = run(1);
    let four = run(4);
    let eight = run(8);
    assert!(one.failures.is_empty());
    assert_eq!(one.summary.to_json(), four.summary.to_json());
    assert_eq!(one.summary.to_json(), eight.summary.to_json());
    assert_eq!(one.summary.to_csv(), four.summary.to_csv());
    assert_eq!(
        one.summary.comparisons_to_csv(),
        eight.summary.comparisons_to_csv()
    );
    assert_eq!(four.stats.threads, 4);
}

/// Smoke test: a 10-circuit subset routes on `ibm_q20_tokyo` in
/// parallel with both routers, everything verifies, and the summary
/// has the expected shape.
#[test]
fn ten_circuit_smoke_on_tokyo_in_parallel() {
    let entries: Vec<_> = full_suite().into_iter().take(10).collect();
    let result = SuiteRunner::new(config(4))
        .device(Device::ibm_q20_tokyo())
        .entries(entries)
        .run();
    assert_eq!(result.stats.jobs, 20, "10 circuits x 2 routers");
    assert!(result.failures.is_empty());
    assert_eq!(result.summary.rows.len(), 20);
    assert_eq!(result.summary.comparisons.len(), 10);
    assert!(
        result.summary.rows.iter().all(|r| r.verified == Some(true)),
        "every routed circuit must pass coupling + equivalence checks"
    );
    assert!(result.summary.rows.iter().all(|r| r.weighted_depth > 0));
    // Output gate accounting: input + inserted swaps.
    for row in &result.summary.rows {
        assert_eq!(row.output_gates, row.input_gates + row.swaps);
    }
    let means = result.summary.mean_speedup_by_device();
    assert_eq!(means.len(), 1);
    assert!(means[0].1 > 0.5, "mean speedup should be sane: {means:?}");
}

/// The seed flows into initial mappings: different seeds may produce
/// different routes, but the same seed always reproduces the summary.
#[test]
fn same_seed_reproduces_summary() {
    let entries: Vec<_> = full_suite().into_iter().take(6).collect();
    let run = |seed: u64| {
        SuiteRunner::new(EngineConfig {
            threads: 3,
            seed,
            ..EngineConfig::default()
        })
        .device(Device::enfield_6x6())
        .entries(entries.clone())
        .run()
    };
    assert_eq!(run(11).summary.to_json(), run(11).summary.to_json());
}

/// Router subsets work and single-router runs yield no comparisons.
#[test]
fn codar_only_run_has_no_comparisons() {
    let entries: Vec<_> = full_suite().into_iter().take(4).collect();
    let result = SuiteRunner::new(EngineConfig {
        threads: 2,
        routers: vec![RouterKind::Codar],
        ..EngineConfig::default()
    })
    .device(Device::ibm_q20_tokyo())
    .entries(entries)
    .run();
    assert_eq!(result.summary.rows.len(), 4);
    assert!(result.summary.comparisons.is_empty());
}
