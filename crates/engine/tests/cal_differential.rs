//! Differential gates for the calibration subsystem.
//!
//! 1. `codar-cal` with `alpha = 0` must produce **byte-identical**
//!    results to plain CODAR over the full 71-entry suite — same
//!    routed gate stream, same start times, same weighted depth, same
//!    serialized report fields (modulo the variant/router labels,
//!    which name the algorithm, not the result).
//! 2. The EPS of a *uniform* calibration snapshot must match the old
//!    scalar [`FidelityModel`] **bit-for-bit** over the same suite —
//!    the degenerate-snapshot reduction.

use codar_arch::{CalibrationSnapshot, Device, FidelityModel, TechnologyParams};
use codar_benchmarks::suite::full_suite;
use codar_engine::{CalibrationSpec, EngineConfig, RouterKind, RouterVariant, SuiteRunner};

/// Routes the full suite twice — plain CODAR and codar-cal(alpha=0)
/// against a heavily drifted snapshot — and diffs every report.
#[test]
fn alpha_zero_reports_are_byte_identical_suite_wide() {
    let suite = full_suite();
    assert_eq!(suite.len(), 71, "the suite contract is 71 entries");
    let mut cal_variant = RouterVariant::of_kind(RouterKind::CodarCal);
    cal_variant.codar.cal_alpha = 0.0;
    let result = SuiteRunner::new(EngineConfig {
        threads: 0,
        keep_routed: true,
        ..EngineConfig::default()
    })
    .device(Device::ibm_q20_tokyo())
    .device(Device::google_sycamore54())
    .entries(suite)
    .variant(RouterVariant::of_kind(RouterKind::Codar))
    .variant(cal_variant)
    .calibration(CalibrationSpec::synthetic("drift3", 23, 3))
    .run();
    assert!(result.failures.is_empty(), "{:?}", result.failures);
    assert!(result.summary.rows.iter().all(|r| r.verified == Some(true)));

    let rows_of = |variant: &str| {
        let mut rows: Vec<_> = result
            .summary
            .rows
            .iter()
            .filter(|r| r.variant == variant)
            .collect();
        rows.sort_by_key(|r| (r.device.clone(), r.circuit.clone()));
        rows
    };
    let plain = rows_of("codar");
    let cal = rows_of("codar-cal");
    assert_eq!(plain.len(), cal.len());
    assert!(!plain.is_empty());
    for (p, c) in plain.iter().zip(&cal) {
        let context = format!("{} on {}", p.circuit, p.device);
        assert_eq!(
            (&p.device, &p.circuit),
            (&c.device, &c.circuit),
            "{context}"
        );
        assert_eq!(p.weighted_depth, c.weighted_depth, "{context}");
        assert_eq!(p.depth, c.depth, "{context}");
        assert_eq!(p.swaps, c.swaps, "{context}");
        assert_eq!(p.output_gates, c.output_gates, "{context}");
        // EPS is computed from the routed gate stream; identical
        // streams must give bit-identical EPS.
        assert_eq!(
            p.eps.unwrap().to_bits(),
            c.eps.unwrap().to_bits(),
            "{context}"
        );
        let (pr, cr) = (p.routed.as_ref().unwrap(), c.routed.as_ref().unwrap());
        assert_eq!(pr.circuit.gates(), cr.circuit.gates(), "{context}");
        assert_eq!(pr.start_times, cr.start_times, "{context}");
        assert_eq!(pr.final_mapping, cr.final_mapping, "{context}");
    }
}

/// EPS of every suite entry under a uniform (degenerate) snapshot,
/// for every Table I technology column, bit-for-bit against the old
/// scalar model.
#[test]
fn uniform_snapshot_eps_matches_scalar_model_bit_for_bit() {
    let device = Device::ibm_q20_tokyo();
    let suite = full_suite();
    for params in TechnologyParams::table1() {
        let scalar = FidelityModel::from_technology(&params);
        let snapshot = CalibrationSnapshot::from_technology(&device, &params);
        let from_snapshot = FidelityModel::from_snapshot(&snapshot);
        assert_eq!(from_snapshot, scalar, "{}", params.device);
        for entry in &suite {
            let old = scalar.success_probability(&entry.circuit, device.durations());
            let new = from_snapshot.success_probability(&entry.circuit, device.durations());
            assert_eq!(
                old.to_bits(),
                new.to_bits(),
                "{} under {}",
                entry.name,
                params.device
            );
        }
    }

    // The same reduction holds for a plain model without T2.
    let scalar = FidelityModel::new(0.999, 0.97, 0.95);
    let uniform = CalibrationSnapshot::uniform(&device, &scalar);
    let from_snapshot = FidelityModel::from_snapshot(&uniform);
    assert_eq!(from_snapshot, scalar);
    for entry in full_suite().iter().take(10) {
        assert_eq!(
            scalar
                .success_probability(&entry.circuit, device.durations())
                .to_bits(),
            from_snapshot
                .success_probability(&entry.circuit, device.durations())
                .to_bits(),
            "{}",
            entry.name
        );
    }
}
