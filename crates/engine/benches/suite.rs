//! Engine-level benchmark: end-to-end [`SuiteRunner`] throughput on a
//! fixed sub-matrix — the number behind `BENCH_timings.json`, in
//! `cargo bench` form. Runs on one thread so the measurement is
//! route-time, not pool scheduling (the CI container has 1 CPU).

use codar_arch::Device;
use codar_benchmarks::suite::full_suite;
use codar_engine::{EngineConfig, SuiteRunner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_suite_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_runner");
    for &limit in &[8usize, 24] {
        let entries: Vec<_> = full_suite().into_iter().take(limit).collect();
        group.bench_with_input(
            BenchmarkId::new("route_1thread", limit),
            &entries,
            |b, entries| {
                b.iter(|| {
                    let result = SuiteRunner::new(EngineConfig {
                        threads: 1,
                        ..EngineConfig::default()
                    })
                    .device(Device::ibm_q20_tokyo())
                    .entries(entries.clone())
                    .run();
                    assert!(result.failures.is_empty());
                    black_box(result.summary.rows.len())
                });
            },
        );
    }
    // Verification off isolates pure routing from the simulation-based
    // equivalence check.
    let entries: Vec<_> = full_suite().into_iter().take(24).collect();
    group.bench_with_input(
        BenchmarkId::new("route_1thread_no_verify", 24),
        &entries,
        |b, entries| {
            b.iter(|| {
                let result = SuiteRunner::new(EngineConfig {
                    threads: 1,
                    verify: false,
                    ..EngineConfig::default()
                })
                .device(Device::ibm_q20_tokyo())
                .entries(entries.clone())
                .run();
                assert!(result.failures.is_empty());
                black_box(result.summary.rows.len())
            });
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suite_runner
}
criterion_main!(benches);
