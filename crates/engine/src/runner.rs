//! The [`SuiteRunner`]: fans the job matrix across a worker pool.
//!
//! Workers are plain `std::thread`s inside a [`std::thread::scope`];
//! they claim jobs from a shared atomic cursor (cheap work stealing —
//! job granularity is a whole route call, so contention is negligible)
//! and stream `(job id, result)` pairs back over an mpsc channel.
//! Because every job is independent and its output is keyed by job id,
//! the assembled [`Summary`] is identical for any thread count.
//!
//! Each [`Device`] is constructed **once** and shared as an
//! [`Arc<Device>`]; its all-pairs distance matrix (computed eagerly at
//! construction) is therefore paid once per device, not once per job —
//! on a 54-qubit Sycamore that matrix alone is ~3k BFS visits a job
//! would otherwise repeat.

use crate::job::{build_matrix, EngineConfig, JobSpec, RouterKind};
use crate::report::{RouteReport, RunStats, Summary};
use codar_arch::Device;
use codar_benchmarks::suite::SuiteEntry;
use codar_router::sabre::reverse_traversal_mapping;
use codar_router::verify::{check_coupling, check_equivalence};
use codar_router::{CodarRouter, GreedyRouter, Mapping, RoutedCircuit, SabreRouter};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// A job that returned a router error (e.g. disconnected coupling).
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The failed job.
    pub job: JobSpec,
    /// Benchmark name.
    pub circuit: String,
    /// Device name.
    pub device: String,
    /// Stringified router error.
    pub error: String,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Deterministic summary (see [`Summary`] for the guarantees).
    pub summary: Summary,
    /// Wall-clock and sizing statistics (nondeterministic).
    pub stats: RunStats,
    /// Jobs that errored, in job-id order.
    pub failures: Vec<JobFailure>,
}

/// Parallel suite-routing engine.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_benchmarks::suite::full_suite;
/// use codar_engine::{EngineConfig, SuiteRunner};
///
/// let entries: Vec<_> = full_suite().into_iter().take(4).collect();
/// let result = SuiteRunner::new(EngineConfig::default())
///     .device(Device::ibm_q20_tokyo())
///     .entries(entries)
///     .run();
/// assert!(result.failures.is_empty());
/// assert_eq!(result.summary.rows.len(), 8); // 4 circuits x 2 routers
/// assert!(result.summary.rows.iter().all(|r| r.verified == Some(true)));
/// ```
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    config: EngineConfig,
    devices: Vec<Arc<Device>>,
    entries: Vec<SuiteEntry>,
}

impl SuiteRunner {
    /// Creates an empty runner with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        SuiteRunner {
            config,
            devices: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Adds one target device.
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.devices.push(Arc::new(device));
        self
    }

    /// Adds several target devices.
    #[must_use]
    pub fn devices(mut self, devices: impl IntoIterator<Item = Device>) -> Self {
        self.devices.extend(devices.into_iter().map(Arc::new));
        self
    }

    /// Sets the benchmark entries to route.
    #[must_use]
    pub fn entries(mut self, entries: Vec<SuiteEntry>) -> Self {
        self.entries = entries;
        self
    }

    /// Worker threads the run will use (resolving `threads == 0`).
    pub fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
    }

    /// Routes the full matrix and assembles the deterministic summary.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by the scope).
    pub fn run(&self) -> SuiteResult {
        let jobs = build_matrix(&self.entries, &self.devices, &self.config.routers);
        let threads = self.effective_threads().clamp(1, jobs.len().max(1));
        let started = Instant::now();

        // One initial-mapping slot per (entry, device) cell: the
        // reverse-traversal mapping is itself two routing passes, and
        // every router job in a cell shares the same one (the paper's
        // protocol), so compute it once — whichever worker gets there
        // first fills the slot.
        let mappings: Vec<OnceLock<Mapping>> = (0..self.entries.len() * self.devices.len())
            .map(|_| OnceLock::new())
            .collect();

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(JobSpec, Result<RouteReport, String>)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let jobs = &jobs;
                let mappings = &mappings;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&job) = jobs.get(i) else { break };
                    let outcome = self.run_job(job, mappings);
                    if tx.send((job, outcome)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let mut reports = Vec::with_capacity(jobs.len());
        let mut failures = Vec::new();
        let mut total_route_time = Duration::ZERO;
        for (job, outcome) in rx {
            match outcome {
                Ok(report) => {
                    total_route_time += report.wall;
                    reports.push(report);
                }
                Err(error) => failures.push(JobFailure {
                    job,
                    circuit: self.entries[job.entry].name.clone(),
                    device: self.devices[job.device].name().to_string(),
                    error,
                }),
            }
        }
        failures.sort_by_key(|f| f.job.id);

        let stats = RunStats {
            threads,
            jobs: jobs.len(),
            failures: failures.len(),
            wall: started.elapsed(),
            total_route_time,
        };
        SuiteResult {
            summary: Summary::from_reports(self.config.seed, reports),
            stats,
            failures,
        }
    }

    fn run_job(&self, job: JobSpec, mappings: &[OnceLock<Mapping>]) -> Result<RouteReport, String> {
        let entry = &self.entries[job.entry];
        let device = &self.devices[job.device];
        let started = Instant::now();
        let initial = mappings[job.device * self.entries.len() + job.entry]
            .get_or_init(|| reverse_traversal_mapping(&entry.circuit, device, self.config.seed))
            .clone();
        let routed: RoutedCircuit = match job.router {
            RouterKind::Codar => CodarRouter::with_config(device, self.config.codar.clone())
                .route_with_mapping(&entry.circuit, initial),
            RouterKind::Sabre => SabreRouter::with_config(device, self.config.sabre.clone())
                .route_with_mapping(&entry.circuit, initial),
            RouterKind::Greedy => {
                GreedyRouter::new(device).route_with_mapping(&entry.circuit, initial)
            }
        }
        .map_err(|e| e.to_string())?;

        let verified = if self.config.verify {
            Some(
                check_coupling(&routed.circuit, device).is_ok()
                    && check_equivalence(&entry.circuit, &routed).is_ok(),
            )
        } else {
            None
        };
        let wall = started.elapsed();

        Ok(RouteReport {
            job_id: job.id,
            circuit: entry.name.clone(),
            device: device.name().to_string(),
            num_qubits: entry.num_qubits,
            input_gates: entry.circuit.len(),
            router: job.router,
            weighted_depth: routed.weighted_depth,
            depth: routed.depth(),
            swaps: routed.swaps_inserted,
            output_gates: routed.gate_count(),
            verified,
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::full_suite;

    fn small_entries(n: usize) -> Vec<SuiteEntry> {
        full_suite().into_iter().take(n).collect()
    }

    #[test]
    fn single_thread_run_completes_and_verifies() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(5))
        .run();
        assert_eq!(result.stats.jobs, 10);
        assert_eq!(result.stats.threads, 1);
        assert!(result.failures.is_empty());
        assert!(result.summary.rows.iter().all(|r| r.verified == Some(true)));
        assert_eq!(result.summary.comparisons.len(), 5);
    }

    #[test]
    fn oversized_devices_are_skipped_not_failed() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
        .device(Device::linear(4))
        .entries(small_entries(8))
        .run();
        // Only circuits with <= 4 qubits become jobs at all.
        assert!(result.summary.rows.iter().all(|r| r.num_qubits <= 4));
        assert!(result.failures.is_empty());
    }

    #[test]
    fn greedy_router_is_supported() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 2,
            routers: vec![RouterKind::Codar, RouterKind::Sabre, RouterKind::Greedy],
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(3))
        .run();
        assert_eq!(result.stats.jobs, 9);
        assert!(result.failures.is_empty());
        // Greedy rows exist but don't produce comparisons on their own.
        assert_eq!(result.summary.comparisons.len(), 3);
    }

    #[test]
    fn verification_can_be_disabled() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 1,
            verify: false,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(2))
        .run();
        assert!(result.summary.rows.iter().all(|r| r.verified.is_none()));
    }
}
