//! The [`SuiteRunner`]: fans the job matrix across a worker pool.
//!
//! Workers are plain `std::thread`s inside a [`std::thread::scope`];
//! they claim jobs from a shared atomic cursor (cheap work stealing —
//! job granularity is a whole route call, so contention is negligible)
//! and stream `(job id, result)` pairs back over an mpsc channel.
//! Because every job is independent and its output is keyed by job id,
//! the assembled [`Summary`] is identical for any thread count.
//!
//! Each [`Device`] is constructed **once** and shared as an
//! [`Arc<Device>`]; its all-pairs distance matrix (computed eagerly at
//! construction) is therefore paid once per device, not once per job —
//! on a 54-qubit Sycamore that matrix alone is ~3k BFS visits a job
//! would otherwise repeat.
//!
//! Noise-simulation jobs seed their trajectory RNG from the *identity*
//! of the job (circuit, device, variant, noise labels folded into the
//! engine seed), never from scheduling order — which is what keeps
//! fidelity summaries byte-identical across thread counts.

use crate::job::{
    build_matrix, CalibrationSpec, EngineConfig, JobSpec, NoiseSpec, RouterKind, RouterVariant,
    DEFAULT_PORTFOLIO_ALPHA,
};
use crate::report::{FidelityStats, RouteReport, RouterTiming, RunStats, Summary};
use crate::worker::RouteWorker;
use codar_arch::{CalibrationSnapshot, Device, FidelityModel};
use codar_benchmarks::suite::SuiteEntry;
use codar_router::verify::{check_coupling, check_equivalence};
use codar_router::{Mapping, RoutedCircuit};
use codar_sim::{Backend, FidelityReport, SimBackend};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

/// A job that returned a router error (e.g. disconnected coupling).
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// The failed job.
    pub job: JobSpec,
    /// Benchmark name.
    pub circuit: String,
    /// Device name.
    pub device: String,
    /// Stringified router error.
    pub error: String,
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Deterministic summary (see [`Summary`] for the guarantees).
    pub summary: Summary,
    /// Wall-clock and sizing statistics (nondeterministic).
    pub stats: RunStats,
    /// Jobs that errored, in job-id order.
    pub failures: Vec<JobFailure>,
}

/// Parallel suite-routing engine.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_benchmarks::suite::full_suite;
/// use codar_engine::{EngineConfig, SuiteRunner};
///
/// let entries: Vec<_> = full_suite().into_iter().take(4).collect();
/// let result = SuiteRunner::new(EngineConfig::default())
///     .device(Device::ibm_q20_tokyo())
///     .entries(entries)
///     .run();
/// assert!(result.failures.is_empty());
/// assert_eq!(result.summary.rows.len(), 8); // 4 circuits x 2 routers
/// assert!(result.summary.rows.iter().all(|r| r.verified == Some(true)));
/// ```
///
/// Fidelity runs fan noise-simulation jobs across the same pool:
///
/// ```
/// use codar_arch::Device;
/// use codar_benchmarks::suite::fidelity_suite;
/// use codar_engine::{EngineConfig, NoiseSpec, SuiteRunner};
/// use codar_sim::NoiseModel;
///
/// let entries: Vec<_> = fidelity_suite().into_iter().take(2).collect();
/// let result = SuiteRunner::new(EngineConfig::default())
///     .device(Device::ibm_q20_tokyo())
///     .entries(entries)
///     .noise(NoiseSpec::new("dephasing", NoiseModel::dephasing_dominant(), 10))
///     .run();
/// assert!(result.summary.rows.iter().all(|r| r.fidelity.is_some()));
/// ```
#[derive(Debug, Clone)]
pub struct SuiteRunner {
    config: EngineConfig,
    devices: Vec<Arc<Device>>,
    entries: Vec<SuiteEntry>,
    variants: Vec<RouterVariant>,
    noise: Vec<NoiseSpec>,
    calibrations: Vec<CalibrationSpec>,
    sim: Option<Backend>,
}

impl SuiteRunner {
    /// Creates an empty runner with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        SuiteRunner {
            config,
            devices: Vec::new(),
            entries: Vec::new(),
            variants: Vec::new(),
            noise: Vec::new(),
            calibrations: Vec::new(),
            sim: None,
        }
    }

    /// Adds one target device.
    #[must_use]
    pub fn device(mut self, device: Device) -> Self {
        self.devices.push(Arc::new(device));
        self
    }

    /// Adds several target devices.
    #[must_use]
    pub fn devices(mut self, devices: impl IntoIterator<Item = Device>) -> Self {
        self.devices.extend(devices.into_iter().map(Arc::new));
        self
    }

    /// Sets the benchmark entries to route.
    #[must_use]
    pub fn entries(mut self, entries: Vec<SuiteEntry>) -> Self {
        self.entries = entries;
        self
    }

    /// Adds one router variant. When no variant is added, the runner
    /// derives default-config variants from `config.routers`.
    #[must_use]
    pub fn variant(mut self, variant: RouterVariant) -> Self {
        self.variants.push(variant);
        self
    }

    /// Adds several router variants.
    #[must_use]
    pub fn variants(mut self, variants: impl IntoIterator<Item = RouterVariant>) -> Self {
        self.variants.extend(variants);
        self
    }

    /// Adds one noise regime: every job simulates its routed circuit
    /// under it and reports a fidelity.
    #[must_use]
    pub fn noise(mut self, spec: NoiseSpec) -> Self {
        self.noise.push(spec);
        self
    }

    /// Adds several noise regimes.
    #[must_use]
    pub fn noise_specs(mut self, specs: impl IntoIterator<Item = NoiseSpec>) -> Self {
        self.noise.extend(specs);
        self
    }

    /// Adds one calibration point: the job matrix gains a snapshot
    /// axis (snapshot × circuit × device × variant), `codar-cal`
    /// variants route against each point's per-device snapshot, and
    /// every report gains an `eps` column (estimated success
    /// probability of the routed circuit under that snapshot). Without
    /// calibration points the matrix, reports and serializations are
    /// byte-identical to the pre-calibration engine.
    #[must_use]
    pub fn calibration(mut self, spec: CalibrationSpec) -> Self {
        self.calibrations.push(spec);
        self
    }

    /// Adds several calibration points.
    #[must_use]
    pub fn calibrations(mut self, specs: impl IntoIterator<Item = CalibrationSpec>) -> Self {
        self.calibrations.extend(specs);
        self
    }

    /// Turns on the simulation axis: every job additionally verifies
    /// its routed circuit *semantically* by simulating it against the
    /// original under `backend` (see [`RouteWorker::simulation_check`]).
    /// A failed check fails the job. Rows whose circuit resolved to a
    /// non-dense engine report the resolved backend in a `sim` column;
    /// dense rows (and runs without this axis) carry no new fields, so
    /// pre-existing summaries stay byte-identical.
    #[must_use]
    pub fn sim_backend(mut self, backend: Backend) -> Self {
        self.sim = Some(backend);
        self
    }

    /// Worker threads the run will use (resolving `threads == 0`).
    pub fn effective_threads(&self) -> usize {
        if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        }
    }

    /// The variant table a run will use: the explicit `.variant()`
    /// list, or default-config variants from `config.routers`.
    fn effective_variants(&self) -> Vec<RouterVariant> {
        if self.variants.is_empty() {
            self.config
                .routers
                .iter()
                .map(|&kind| RouterVariant {
                    label: kind.name().to_string(),
                    kind,
                    codar: self.config.codar.clone(),
                    sabre: self.config.sabre.clone(),
                    members: if kind == RouterKind::Portfolio {
                        RouterVariant::portfolio_members(DEFAULT_PORTFOLIO_ALPHA)
                    } else {
                        Vec::new()
                    },
                })
                .collect()
        } else {
            self.variants.clone()
        }
    }

    /// Routes the full matrix and assembles the deterministic summary.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by the scope).
    pub fn run(&self) -> SuiteResult {
        let variants = self.effective_variants();
        let mut jobs = build_matrix(
            &self.entries,
            &self.devices,
            &variants,
            self.calibrations.len(),
        );
        for job in &mut jobs {
            job.sim = self.sim;
        }
        let jobs = jobs;
        let threads = self.effective_threads().clamp(1, jobs.len().max(1));
        let started = Instant::now();

        // One snapshot + EPS model per (calibration spec, device),
        // instantiated up front (deterministically — snapshots are
        // seeded) and shared by every job of that cell.
        let cal_ctx: Vec<(Arc<CalibrationSnapshot>, Arc<FidelityModel>)> = self
            .calibrations
            .iter()
            .flat_map(|spec| {
                self.devices
                    .iter()
                    .map(move |device| spec.instantiate(device))
            })
            .collect();

        // One initial-mapping slot per (entry, device) cell: the
        // reverse-traversal mapping is itself two routing passes, and
        // every router job in a cell shares the same one (the paper's
        // protocol), so compute it once — whichever worker gets there
        // first fills the slot.
        let mappings: Vec<OnceLock<Mapping>> = (0..self.entries.len() * self.devices.len())
            .map(|_| OnceLock::new())
            .collect();

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(JobSpec, Result<Vec<RouteReport>, String>)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let jobs = &jobs;
                let mappings = &mappings;
                let variants = &variants;
                let cal_ctx = &cal_ctx;
                scope.spawn(move || {
                    // One RouteWorker per pool thread: every route call
                    // on this thread reuses the same scratch buffers
                    // (results are scratch-independent; see
                    // codar_router::scratch).
                    let mut worker = RouteWorker::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&job) = jobs.get(i) else { break };
                        let outcome = self.run_job(job, variants, mappings, cal_ctx, &mut worker);
                        if tx.send((job, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        drop(tx);

        let mut reports = Vec::with_capacity(jobs.len());
        let mut failures = Vec::new();
        let mut total_route_time = Duration::ZERO;
        let mut by_router: BTreeMap<String, (usize, Duration)> = BTreeMap::new();
        for (job, outcome) in rx {
            match outcome {
                Ok(job_reports) => {
                    for report in job_reports {
                        total_route_time += report.wall;
                        let slot = by_router.entry(report.variant.clone()).or_default();
                        slot.0 += 1;
                        slot.1 += report.wall;
                        reports.push(report);
                    }
                }
                Err(error) => failures.push(JobFailure {
                    job,
                    circuit: self.entries[job.entry].name.clone(),
                    device: self.devices[job.device].name().to_string(),
                    error,
                }),
            }
        }
        failures.sort_by_key(|f| f.job.id);

        let stats = RunStats {
            threads,
            jobs: jobs.len(),
            calibration_specs: self.calibrations.len(),
            failures: failures.len(),
            wall: started.elapsed(),
            total_route_time,
            per_router: by_router
                .into_iter()
                .map(|(router, (jobs, total))| RouterTiming {
                    router,
                    jobs,
                    total,
                })
                .collect(),
        };
        SuiteResult {
            summary: Summary::from_reports(self.config.seed, reports),
            stats,
            failures,
        }
    }

    /// Per-job noise RNG seed: the engine seed folded with a stable
    /// FNV-1a hash of the job's identity. Deterministic for a given
    /// matrix, independent of scheduling order and thread count.
    fn job_seed(&self, circuit: &str, device: &str, variant: &str, noise: &str) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET ^ self.config.seed;
        for part in [circuit, "\0", device, "\0", variant, "\0", noise] {
            for byte in part.as_bytes() {
                hash ^= u64::from(*byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        hash
    }

    /// Runs one job: route once, verify once, then (in fidelity runs)
    /// simulate the routed circuit under every noise spec — one report
    /// per regime, all sharing the single routing pass.
    fn run_job(
        &self,
        job: JobSpec,
        variants: &[RouterVariant],
        mappings: &[OnceLock<Mapping>],
        cal_ctx: &[(Arc<CalibrationSnapshot>, Arc<FidelityModel>)],
        worker: &mut RouteWorker,
    ) -> Result<Vec<RouteReport>, String> {
        let entry = &self.entries[job.entry];
        let device = &self.devices[job.device];
        let variant = &variants[job.variant];
        // Spec-major layout, matching the flat_map in `run`.
        let cal = job.cal.map(|spec| {
            (
                &self.calibrations[spec],
                &cal_ctx[spec * self.devices.len() + job.device],
            )
        });
        let started = Instant::now();
        // With shared_initial_mapping every router job in a (entry,
        // device) cell routes from the same reverse-traversal placement
        // (the paper's protocol); otherwise each variant builds its own
        // placement from its config — the initial-mapping study
        // protocol (RouteWorker routes from the variant's own placement
        // when no initial mapping is supplied).
        let initial = if self.config.shared_initial_mapping {
            Some(
                mappings[job.device * self.entries.len() + job.entry]
                    .get_or_init(|| {
                        worker.initial_mapping(&entry.circuit, device, self.config.seed)
                    })
                    .clone(),
            )
        } else {
            None
        };
        let snapshot = cal.map(|(_, (snapshot, _))| snapshot.as_ref());
        // Portfolio jobs route under every member and keep the winner
        // (scored against the job's calibration model when one is
        // active); the chosen member's label rides along into the
        // report's `chosen` column. Fixed-variant jobs route exactly as
        // before.
        let (routed, chosen): (RoutedCircuit, Option<String>) =
            if variant.kind == RouterKind::Portfolio {
                let model = cal.map(|(_, (_, model))| model.as_ref());
                let outcome = worker
                    .route_portfolio(
                        &entry.circuit,
                        device,
                        &variant.members,
                        initial.as_ref(),
                        snapshot,
                        model,
                    )
                    .map_err(|e| e.to_string())?;
                (outcome.routed, Some(outcome.chosen))
            } else {
                let routed = worker
                    .route(&entry.circuit, device, variant, initial, snapshot)
                    .map_err(|e| e.to_string())?;
                (routed, None)
            };

        let verified = if self.config.verify {
            Some(
                check_coupling(&routed.circuit, device).is_ok()
                    && check_equivalence(&entry.circuit, &routed).is_ok(),
            )
        } else {
            None
        };

        // Simulation axis: semantically verify the routed circuit by
        // simulating it against the original under the job's backend.
        // Only non-dense resolutions are reported, so summaries without
        // this axis (and dense rows within it) stay byte-identical.
        let sim_label = match job.sim {
            Some(backend) => {
                let resolved = worker
                    .simulation_check(&entry.circuit, &routed, backend)
                    .map_err(|e| format!("simulation check failed: {e}"))?;
                (resolved != SimBackend::Dense).then(|| resolved.name().to_string())
            }
            None => None,
        };

        // EPS of the *routed* (physical) circuit under the job's
        // calibration point — the fidelity-vs-depth axis of the alpha
        // sweeps. Independent of thread count: snapshot and model are
        // pure functions of (spec, device).
        let (cal_label, eps) = match cal {
            Some((spec, (_, model))) => (
                Some(spec.label.clone()),
                Some(model.success_probability(&routed.circuit, device.durations())),
            ),
            None => (None, None),
        };

        let base_report = |noise: Option<String>,
                           fidelity: Option<FidelityStats>,
                           routed_out: Option<RoutedCircuit>,
                           wall: Duration| RouteReport {
            job_id: job.id,
            circuit: entry.name.clone(),
            device: device.name().to_string(),
            num_qubits: entry.num_qubits,
            input_gates: entry.circuit.len(),
            router: variant.kind,
            variant: variant.label.clone(),
            noise,
            cal: cal_label.clone(),
            eps,
            sim: sim_label.clone(),
            chosen: chosen.clone(),
            weighted_depth: routed.weighted_depth,
            depth: routed.depth(),
            swaps: routed.swaps_inserted,
            output_gates: routed.gate_count(),
            verified,
            fidelity,
            routed: routed_out,
            wall,
        };

        if self.noise.is_empty() {
            let routed_out = self.config.keep_routed.then(|| routed.clone());
            return Ok(vec![base_report(None, None, routed_out, started.elapsed())]);
        }

        // Fidelity run: the routing pass above is shared; each regime
        // pays only its own simulation time (the first report also
        // carries the routing wall).
        let mut reports = Vec::with_capacity(self.noise.len());
        let mut previous = started.elapsed();
        for spec in &self.noise {
            let seed = self.job_seed(&entry.name, device.name(), &variant.label, &spec.label);
            let tau = device.durations();
            let estimate = FidelityReport::estimate(
                &routed.circuit,
                |g| tau.of(g),
                &spec.model,
                spec.trajectories,
                seed,
            );
            let now = started.elapsed();
            let wall = if reports.is_empty() {
                now
            } else {
                now - previous
            };
            let routed_out = self.config.keep_routed.then(|| routed.clone());
            reports.push(base_report(
                Some(spec.label.clone()),
                Some(FidelityStats {
                    mean: estimate.mean,
                    std_error: estimate.std_error,
                    trajectories: estimate.trajectories,
                }),
                routed_out,
                wall,
            ));
            previous = now;
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::RouterKind;
    use codar_benchmarks::suite::full_suite;
    use codar_router::{CodarConfig, InitialMapping};
    use codar_sim::NoiseModel;

    fn small_entries(n: usize) -> Vec<SuiteEntry> {
        full_suite().into_iter().take(n).collect()
    }

    #[test]
    fn single_thread_run_completes_and_verifies() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(5))
        .run();
        assert_eq!(result.stats.jobs, 10);
        assert_eq!(result.stats.threads, 1);
        assert!(result.failures.is_empty());
        assert!(result.summary.rows.iter().all(|r| r.verified == Some(true)));
        assert_eq!(result.summary.comparisons.len(), 5);
        // Per-router timing: both variants accounted for every job.
        assert_eq!(result.stats.per_router.len(), 2);
        assert!(result.stats.per_router.iter().all(|t| t.jobs == 5));
    }

    #[test]
    fn oversized_devices_are_skipped_not_failed() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
        .device(Device::linear(4))
        .entries(small_entries(8))
        .run();
        // Only circuits with <= 4 qubits become jobs at all.
        assert!(result.summary.rows.iter().all(|r| r.num_qubits <= 4));
        assert!(result.failures.is_empty());
    }

    #[test]
    fn greedy_router_is_supported() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 2,
            routers: vec![RouterKind::Codar, RouterKind::Sabre, RouterKind::Greedy],
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(3))
        .run();
        assert_eq!(result.stats.jobs, 9);
        assert!(result.failures.is_empty());
        // Greedy rows exist but don't produce comparisons on their own.
        assert_eq!(result.summary.comparisons.len(), 3);
    }

    #[test]
    fn verification_can_be_disabled() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 1,
            verify: false,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(2))
        .run();
        assert!(result.summary.rows.iter().all(|r| r.verified.is_none()));
    }

    #[test]
    fn ablation_variants_route_under_their_own_configs() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(2))
        .variant(RouterVariant::codar("full", CodarConfig::default()))
        .variant(RouterVariant::codar(
            "no duration",
            CodarConfig {
                enable_duration_awareness: false,
                ..CodarConfig::default()
            },
        ))
        .run();
        assert_eq!(result.stats.jobs, 4);
        assert!(result.failures.is_empty());
        let labels: Vec<_> = result
            .summary
            .rows
            .iter()
            .map(|r| r.variant.as_str())
            .collect();
        assert!(labels.contains(&"full") && labels.contains(&"no duration"));
        // No "codar"/"sabre" labels, so no speedup comparisons.
        assert!(result.summary.comparisons.is_empty());
    }

    #[test]
    fn per_variant_initial_mappings_differ_from_shared_protocol() {
        let shared = SuiteRunner::new(EngineConfig {
            threads: 1,
            routers: vec![RouterKind::Codar],
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(3))
        .run();
        let own = SuiteRunner::new(EngineConfig {
            threads: 1,
            shared_initial_mapping: false,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(3))
        .variant(RouterVariant::codar(
            "identity",
            CodarConfig {
                initial_mapping: InitialMapping::Identity,
                ..CodarConfig::default()
            },
        ))
        .run();
        assert!(shared.failures.is_empty() && own.failures.is_empty());
        assert!(own.summary.rows.iter().all(|r| r.verified == Some(true)));
    }

    #[test]
    fn keep_routed_attaches_circuits() {
        let result = SuiteRunner::new(EngineConfig {
            threads: 1,
            keep_routed: true,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(2))
        .run();
        for row in &result.summary.rows {
            let routed = row.routed.as_ref().expect("keep_routed attaches circuits");
            assert_eq!(routed.gate_count(), row.output_gates);
        }
    }

    #[test]
    fn calibration_axis_reports_eps_and_stays_deterministic() {
        let run = |threads: usize| {
            let mut cal_variant = RouterVariant::of_kind(RouterKind::CodarCal);
            cal_variant.codar.cal_alpha = 0.5;
            SuiteRunner::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .device(Device::ibm_q20_tokyo())
            .entries(small_entries(3))
            .variant(RouterVariant::of_kind(RouterKind::Codar))
            .variant(cal_variant)
            .calibration(CalibrationSpec::uniform("uniform"))
            .calibration(CalibrationSpec::synthetic("drift1", 7, 1))
            .run()
        };
        let one = run(1);
        let four = run(4);
        // 3 circuits x 2 variants x 2 calibration points.
        assert_eq!(one.stats.jobs, 12);
        assert_eq!(one.stats.calibration_specs, 2);
        assert!(one.failures.is_empty());
        assert!(one.summary.rows.iter().all(|r| {
            r.verified == Some(true)
                && r.cal.is_some()
                && r.eps.is_some_and(|e| e > 0.0 && e <= 1.0)
        }));
        assert_eq!(
            one.summary.to_json(),
            four.summary.to_json(),
            "calibrated summaries must be byte-identical across thread counts"
        );
        // The json carries the new columns for calibrated rows.
        assert!(one.summary.to_json().contains("\"cal\": \"drift1\""));
        assert!(one
            .summary
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .ends_with(",cal,eps"));
    }

    #[test]
    fn sim_axis_verifies_and_reports_non_dense_backends() {
        let run = |threads: usize| {
            SuiteRunner::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .device(Device::ibm_q20_tokyo())
            .entries(small_entries(6))
            .sim_backend(codar_sim::Backend::Auto)
            .run()
        };
        let one = run(1);
        let four = run(4);
        assert!(one.failures.is_empty(), "{:?}", one.failures);
        assert_eq!(
            one.summary.to_json(),
            four.summary.to_json(),
            "sim-axis summaries must be byte-identical across thread counts"
        );
        // The suite mixes Clifford and non-Clifford circuits: at least
        // one row must resolve off the dense engine, and every sim
        // label is one of the two non-dense names.
        assert!(one.summary.rows.iter().any(|r| r.sim.is_some()));
        for row in &one.summary.rows {
            if let Some(sim) = &row.sim {
                assert!(sim == "stabilizer" || sim == "sparse", "{sim}");
            }
        }
        // Without the axis the summary carries no sim fields at all.
        let plain = SuiteRunner::new(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        })
        .device(Device::ibm_q20_tokyo())
        .entries(small_entries(6))
        .run();
        assert!(!plain.summary.to_json().contains("\"sim\""));
    }

    #[test]
    fn portfolio_axis_reports_chosen_and_stays_deterministic() {
        let run = |threads: usize| {
            SuiteRunner::new(EngineConfig {
                threads,
                routers: vec![RouterKind::Codar, RouterKind::Portfolio],
                ..EngineConfig::default()
            })
            .device(Device::ibm_q20_tokyo())
            .entries(small_entries(4))
            .calibration(CalibrationSpec::synthetic("drift2", 7, 2))
            .run()
        };
        let one = run(1);
        let four = run(4);
        assert!(one.failures.is_empty(), "{:?}", one.failures);
        assert_eq!(
            one.summary.to_json(),
            four.summary.to_json(),
            "portfolio summaries must be byte-identical across thread counts"
        );
        let auto_rows: Vec<_> = one
            .summary
            .rows
            .iter()
            .filter(|r| r.router == RouterKind::Portfolio)
            .collect();
        assert_eq!(auto_rows.len(), 4);
        for row in &auto_rows {
            assert_eq!(row.verified, Some(true));
            let chosen = row.chosen.as_deref().expect("portfolio rows carry chosen");
            assert!(
                ["codar", "codar-cal", "greedy", "sabre"].contains(&chosen),
                "{chosen}"
            );
            // Per circuit, the portfolio's EPS is at least the fixed
            // codar variant's EPS on the same cell.
            let fixed = one
                .summary
                .rows
                .iter()
                .find(|r| {
                    r.circuit == row.circuit && r.device == row.device && r.variant == "codar"
                })
                .expect("codar sibling row");
            assert!(row.eps.unwrap() >= fixed.eps.unwrap(), "{}", row.circuit);
        }
        // Fixed-variant rows never carry the column.
        assert!(one
            .summary
            .rows
            .iter()
            .filter(|r| r.router != RouterKind::Portfolio)
            .all(|r| r.chosen.is_none()));
    }

    #[test]
    fn noise_jobs_report_fidelity_and_stay_deterministic() {
        let run = |threads: usize| {
            SuiteRunner::new(EngineConfig {
                threads,
                ..EngineConfig::default()
            })
            .device(Device::ibm_q20_tokyo())
            .entries(small_entries(3))
            .noise(NoiseSpec::new(
                "dephasing",
                NoiseModel::dephasing_dominant(),
                8,
            ))
            .noise(NoiseSpec::new("damping", NoiseModel::damping_dominant(), 8))
            .run()
        };
        let one = run(1);
        let four = run(4);
        // One job per (circuit, variant) cell; each emits a report per
        // noise regime without re-routing.
        assert_eq!(one.stats.jobs, 3 * 2);
        assert_eq!(one.summary.rows.len(), 3 * 2 * 2);
        assert!(one.failures.is_empty());
        assert!(one.summary.rows.iter().all(|r| {
            let f = r.fidelity.expect("noise jobs must report fidelity");
            f.mean > 0.0 && f.mean <= 1.0 + 1e-9 && f.trajectories == 8
        }));
        assert_eq!(
            one.summary.to_json(),
            four.summary.to_json(),
            "fidelity summaries must be byte-identical across thread counts"
        );
    }
}
