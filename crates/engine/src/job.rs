//! Job matrix: the cross product circuit × device × router that the
//! engine fans across its worker pool.

use codar_arch::Device;
use codar_benchmarks::suite::SuiteEntry;
use codar_router::{CodarConfig, SabreConfig};
use std::sync::Arc;

/// Which router a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouterKind {
    /// The paper's context- and duration-aware remapper.
    Codar,
    /// The SABRE baseline (Li et al., ASPLOS 2019).
    Sabre,
    /// The nearest-neighbor greedy baseline.
    Greedy,
}

impl RouterKind {
    /// Stable lowercase name used in summaries and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Codar => "codar",
            RouterKind::Sabre => "sabre",
            RouterKind::Greedy => "greedy",
        }
    }

    /// Parses a CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "codar" => Some(RouterKind::Codar),
            "sabre" => Some(RouterKind::Sabre),
            "greedy" => Some(RouterKind::Greedy),
            _ => None,
        }
    }
}

/// Engine-wide knobs. The defaults reproduce the paper's protocol:
/// CODAR and SABRE from identical reverse-traversal initial mappings.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Seed for the per-(circuit, device) initial mapping.
    pub seed: u64,
    /// Run `codar_router::verify` on every routed circuit.
    pub verify: bool,
    /// Routers included in the matrix.
    pub routers: Vec<RouterKind>,
    /// CODAR mechanism switches (ablations reuse the engine).
    pub codar: CodarConfig,
    /// SABRE parameters.
    pub sabre: SabreConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            seed: 0,
            verify: true,
            routers: vec![RouterKind::Codar, RouterKind::Sabre],
            codar: CodarConfig::default(),
            sabre: SabreConfig::default(),
        }
    }
}

/// One unit of work: route suite entry `entry` on device `device` with
/// `router`. Indices point into the runner's shared entry/device
/// tables so jobs stay cheap to clone and queue.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Dense job id; also the job's position in the report vector.
    pub id: usize,
    /// Index into the shared suite-entry table.
    pub entry: usize,
    /// Index into the shared device table.
    pub device: usize,
    /// Router to run.
    pub router: RouterKind,
}

/// Expands the job matrix, skipping (entry, device) pairs where the
/// circuit does not fit. Order is deterministic: device-major, then
/// entry, then router (in `config.routers` order).
pub fn build_matrix(
    entries: &[SuiteEntry],
    devices: &[Arc<Device>],
    routers: &[RouterKind],
) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (d, device) in devices.iter().enumerate() {
        for (e, entry) in entries.iter().enumerate() {
            if entry.num_qubits > device.num_qubits() {
                continue;
            }
            for &router in routers {
                jobs.push(JobSpec {
                    id: jobs.len(),
                    entry: e,
                    device: d,
                    router,
                });
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::full_suite;

    #[test]
    fn router_names_round_trip() {
        for kind in [RouterKind::Codar, RouterKind::Sabre, RouterKind::Greedy] {
            assert_eq!(RouterKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RouterKind::parse("unknown"), None);
    }

    #[test]
    fn matrix_skips_oversized_circuits() {
        let entries = full_suite();
        let small = Arc::new(Device::linear(5));
        let big = Arc::new(Device::ibm_q20_tokyo());
        let routers = [RouterKind::Codar, RouterKind::Sabre];
        let jobs = build_matrix(&entries, &[small.clone(), big], &routers);
        // Every job fits its device, ids are dense, and both routers
        // appear for each (entry, device) pair.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i);
            let dev_qubits = if job.device == 0 { 5 } else { 20 };
            assert!(entries[job.entry].num_qubits <= dev_qubits);
        }
        assert_eq!(jobs.len() % routers.len(), 0);
        let small_jobs = jobs.iter().filter(|j| j.device == 0).count();
        let big_jobs = jobs.iter().filter(|j| j.device == 1).count();
        assert!(small_jobs < big_jobs, "fewer circuits fit 5 qubits than 20");
    }
}
