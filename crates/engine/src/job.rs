//! Job matrix: the cross product circuit × device × router variant
//! (× noise model, for fidelity runs) that the engine fans across its
//! worker pool.

use codar_arch::{CalibrationSnapshot, Device, FidelityModel, TechnologyParams};
use codar_benchmarks::suite::SuiteEntry;
use codar_router::{CodarConfig, SabreConfig};
use codar_sim::{Backend, NoiseModel};
use std::sync::Arc;

/// Which routing algorithm a variant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouterKind {
    /// The paper's context- and duration-aware remapper.
    Codar,
    /// CODAR with the job's calibration snapshot blended into the SWAP
    /// priority (weight = the variant's `codar.cal_alpha`). Without a
    /// calibration axis it routes exactly as [`RouterKind::Codar`].
    CodarCal,
    /// The SABRE baseline (Li et al., ASPLOS 2019).
    Sabre,
    /// The nearest-neighbor greedy baseline.
    Greedy,
    /// The portfolio: route under every member variant, score each
    /// verified result ([`codar_arch::selection_score`]), keep the
    /// winner. Named `auto` on every surface (CLI and daemon).
    Portfolio,
}

impl RouterKind {
    /// Every kind, in stable declaration order — the single name table
    /// both surfaces (engine CLI and daemon protocol) are tested
    /// against.
    pub const ALL: [RouterKind; 5] = [
        RouterKind::Codar,
        RouterKind::CodarCal,
        RouterKind::Sabre,
        RouterKind::Greedy,
        RouterKind::Portfolio,
    ];

    /// Stable lowercase name used in summaries and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Codar => "codar",
            RouterKind::CodarCal => "codar-cal",
            RouterKind::Sabre => "sabre",
            RouterKind::Greedy => "greedy",
            RouterKind::Portfolio => "auto",
        }
    }

    /// Parses a router name. This is the **only** router-name parser in
    /// the stack — the engine CLI and the daemon protocol both call it,
    /// so a request string valid on one surface is valid on the other.
    /// Accepted aliases: case-insensitive canonical names, plus
    /// `codar_cal`/`codarcal` for `codar-cal` and `portfolio` for
    /// `auto`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "codar" => Some(RouterKind::Codar),
            "codar-cal" | "codar_cal" | "codarcal" => Some(RouterKind::CodarCal),
            "sabre" => Some(RouterKind::Sabre),
            "greedy" => Some(RouterKind::Greedy),
            "auto" | "portfolio" => Some(RouterKind::Portfolio),
            _ => None,
        }
    }
}

/// The calibration blend weight portfolio codar-cal members run with
/// when no explicit alpha is configured (the daemon's default alpha).
pub const DEFAULT_PORTFOLIO_ALPHA: f64 = 0.5;

/// One column of the job matrix: a routing algorithm plus the exact
/// configuration it runs with, under a stable label.
///
/// The plain CODAR-vs-SABRE runs use one variant per [`RouterKind`],
/// but ablation sweeps (same algorithm, different mechanism switches)
/// and initial-mapping studies are also just variant lists — which is
/// what lets every experiment binary share the engine.
#[derive(Debug, Clone)]
pub struct RouterVariant {
    /// Stable name used in summaries, e.g. `"codar"` or `"no hfine"`.
    /// [`crate::Summary`] pairs the labels `"codar"` and `"sabre"`
    /// into its speedup comparisons.
    pub label: String,
    /// The algorithm this variant runs.
    pub kind: RouterKind,
    /// CODAR configuration (used when `kind == Codar`).
    pub codar: CodarConfig,
    /// SABRE configuration (used when `kind == Sabre`).
    pub sabre: SabreConfig,
    /// Portfolio members (used when `kind == Portfolio`): the fixed
    /// variants this variant routes under before keeping the winner.
    /// Empty for every non-portfolio variant. Nested portfolio members
    /// are skipped at route time, so the recursion is bounded.
    pub members: Vec<RouterVariant>,
}

impl RouterVariant {
    /// A variant of `kind` under its default configuration, labelled
    /// with the algorithm name. `Portfolio` gets the default member
    /// list ([`RouterVariant::portfolio_members`] at
    /// [`DEFAULT_PORTFOLIO_ALPHA`]).
    pub fn of_kind(kind: RouterKind) -> Self {
        let members = if kind == RouterKind::Portfolio {
            RouterVariant::portfolio_members(DEFAULT_PORTFOLIO_ALPHA)
        } else {
            Vec::new()
        };
        RouterVariant {
            label: kind.name().to_string(),
            kind,
            codar: CodarConfig::default(),
            sabre: SabreConfig::default(),
            members,
        }
    }

    /// A CODAR variant with an explicit configuration.
    pub fn codar(label: impl Into<String>, config: CodarConfig) -> Self {
        RouterVariant {
            label: label.into(),
            kind: RouterKind::Codar,
            codar: config,
            sabre: SabreConfig::default(),
            members: Vec::new(),
        }
    }

    /// A SABRE variant with an explicit configuration.
    pub fn sabre(label: impl Into<String>, config: SabreConfig) -> Self {
        RouterVariant {
            label: label.into(),
            kind: RouterKind::Sabre,
            codar: CodarConfig::default(),
            sabre: config,
            members: Vec::new(),
        }
    }

    /// The default portfolio member list: one default-config variant
    /// per fixed kind, with the codar-cal member's blend weight set to
    /// `alpha`. Labels are the canonical kind names, so the
    /// deterministic tie-break (score bits descending, then label
    /// ascending) prefers `codar` over `codar-cal` over `greedy` over
    /// `sabre` on exact score ties.
    pub fn portfolio_members(alpha: f64) -> Vec<RouterVariant> {
        let mut cal = RouterVariant::of_kind(RouterKind::CodarCal);
        cal.codar.cal_alpha = alpha;
        vec![
            RouterVariant::of_kind(RouterKind::Codar),
            cal,
            RouterVariant::of_kind(RouterKind::Greedy),
            RouterVariant::of_kind(RouterKind::Sabre),
        ]
    }

    /// A portfolio variant labelled `auto` whose codar-cal member
    /// blends at `alpha`.
    pub fn portfolio(alpha: f64) -> Self {
        RouterVariant {
            label: RouterKind::Portfolio.name().to_string(),
            kind: RouterKind::Portfolio,
            codar: CodarConfig::default(),
            sabre: SabreConfig::default(),
            members: RouterVariant::portfolio_members(alpha),
        }
    }
}

/// One noise regime of a fidelity run: a label, the channel
/// parameters, and how many quantum trajectories to average.
///
/// When a runner has noise specs, every job routes once and then
/// simulates its routed circuit under **each** spec, reporting one
/// [`crate::FidelityStats`]-carrying row per regime. Each simulation
/// seeds its RNG from stable identity (circuit, device, variant,
/// noise label), so fidelity numbers are byte-identical across thread
/// counts and scheduling orders.
#[derive(Debug, Clone)]
pub struct NoiseSpec {
    /// Stable regime name used in summaries, e.g. `"dephasing"`.
    pub label: String,
    /// The noise channels applied per idle/gate cycle.
    pub model: NoiseModel,
    /// Quantum-jump trajectories averaged per job.
    pub trajectories: usize,
}

impl NoiseSpec {
    /// Creates a named noise regime.
    pub fn new(label: impl Into<String>, model: NoiseModel, trajectories: usize) -> Self {
        NoiseSpec {
            label: label.into(),
            model,
            trajectories,
        }
    }
}

/// How a [`CalibrationSpec`] derives each device's snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalKind {
    /// The degenerate uniform snapshot of a Table I superconducting
    /// column — every edge and qubit identical, EPS bit-identical to
    /// the scalar [`FidelityModel`].
    Uniform,
    /// A seeded synthetic snapshot
    /// ([`CalibrationSnapshot::synthetic`]) drifted `drift` times —
    /// a deterministic point in a synthetic calibration sequence.
    Synthetic {
        /// Generator seed (folded with the device name).
        seed: u64,
        /// How many drift steps to apply after generation.
        drift: usize,
    },
}

/// One point on the engine's calibration axis. Snapshots are
/// per-device (they cover a device's exact coupling map), so a spec
/// records *how* to derive a snapshot and the runner instantiates it
/// once per device — deterministically, so summaries stay
/// byte-identical across thread counts.
#[derive(Debug, Clone)]
pub struct CalibrationSpec {
    /// Stable axis label used in summaries, e.g. `"drift2"`.
    pub label: String,
    /// How the per-device snapshot is derived.
    pub kind: CalKind,
}

impl CalibrationSpec {
    /// A uniform (degenerate) calibration point.
    pub fn uniform(label: impl Into<String>) -> Self {
        CalibrationSpec {
            label: label.into(),
            kind: CalKind::Uniform,
        }
    }

    /// A synthetic snapshot drifted `drift` times from `seed`.
    pub fn synthetic(label: impl Into<String>, seed: u64, drift: usize) -> Self {
        CalibrationSpec {
            label: label.into(),
            kind: CalKind::Synthetic { seed, drift },
        }
    }

    /// Instantiates this spec's snapshot for `device`.
    pub fn snapshot_for(&self, device: &Device) -> CalibrationSnapshot {
        match self.kind {
            CalKind::Uniform => {
                let params = TechnologyParams::table1()
                    .into_iter()
                    .find(|p| p.technology == codar_arch::Technology::Superconducting)
                    .expect("Table I has a superconducting column");
                CalibrationSnapshot::from_technology(device, &params)
            }
            CalKind::Synthetic { seed, drift } => {
                let mut snapshot = CalibrationSnapshot::synthetic(device, seed);
                for _ in 0..drift {
                    snapshot = snapshot.drifted(seed);
                }
                snapshot
            }
        }
    }

    /// The snapshot plus its EPS model, shared across a run's jobs.
    pub fn instantiate(&self, device: &Device) -> (Arc<CalibrationSnapshot>, Arc<FidelityModel>) {
        let snapshot = self.snapshot_for(device);
        let model = FidelityModel::from_snapshot(&snapshot);
        (Arc::new(snapshot), Arc::new(model))
    }
}

/// Engine-wide knobs. The defaults reproduce the paper's protocol:
/// CODAR and SABRE from identical reverse-traversal initial mappings.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available core.
    pub threads: usize,
    /// Seed for the per-(circuit, device) initial mapping and the
    /// per-job noise RNG derivation.
    pub seed: u64,
    /// Run `codar_router::verify` on every routed circuit.
    pub verify: bool,
    /// Routers included in the matrix when no explicit variant list
    /// is set on the runner (each becomes a default-config variant).
    pub routers: Vec<RouterKind>,
    /// CODAR mechanism switches for the default `routers` variants.
    pub codar: CodarConfig,
    /// SABRE parameters for the default `routers` variants.
    pub sabre: SabreConfig,
    /// Route every variant of a (circuit, device) cell from the *same*
    /// shared reverse-traversal initial mapping (the paper's Fig. 8
    /// protocol). Disable for initial-mapping studies, where each
    /// variant must build its own placement from its config.
    pub shared_initial_mapping: bool,
    /// Attach the full [`codar_router::RoutedCircuit`] to every
    /// report (off by default: routed circuits can be large).
    pub keep_routed: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            seed: 0,
            verify: true,
            routers: vec![RouterKind::Codar, RouterKind::Sabre],
            codar: CodarConfig::default(),
            sabre: SabreConfig::default(),
            shared_initial_mapping: true,
            keep_routed: false,
        }
    }
}

/// One unit of work: route suite entry `entry` on device `device` with
/// router variant `variant`. In fidelity runs the job routes **once**
/// and then simulates the result under every noise spec, emitting one
/// report per regime — routing and verification are never repeated
/// per regime. Indices point into the runner's shared
/// entry/device/variant tables so jobs stay cheap to clone and queue.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Dense job id (the job's position in the matrix; in fidelity
    /// runs all of a job's per-regime reports share it).
    pub id: usize,
    /// Index into the shared suite-entry table.
    pub entry: usize,
    /// Index into the shared device table.
    pub device: usize,
    /// Index into the shared router-variant table.
    pub variant: usize,
    /// Index into the shared calibration-spec table (`None` when the
    /// run has no calibration axis).
    pub cal: Option<usize>,
    /// Simulation backend for the differential routed-vs-original
    /// check (`None` when the run has no simulation axis — the
    /// default, keeping all pre-existing outputs byte-identical).
    pub sim: Option<Backend>,
}

/// Expands the job matrix, skipping (entry, device) pairs where the
/// circuit does not fit. Order is deterministic: device-major, then
/// entry, then variant, then calibration spec. `cal_specs == 0` keeps
/// the pre-calibration matrix shape (every job's `cal` is `None`).
pub fn build_matrix(
    entries: &[SuiteEntry],
    devices: &[Arc<Device>],
    variants: &[RouterVariant],
    cal_specs: usize,
) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    let cal_axis: Vec<Option<usize>> = if cal_specs == 0 {
        vec![None]
    } else {
        (0..cal_specs).map(Some).collect()
    };
    for (d, device) in devices.iter().enumerate() {
        for (e, entry) in entries.iter().enumerate() {
            if entry.num_qubits > device.num_qubits() {
                continue;
            }
            for v in 0..variants.len() {
                for &cal in &cal_axis {
                    jobs.push(JobSpec {
                        id: jobs.len(),
                        entry: e,
                        device: d,
                        variant: v,
                        cal,
                        sim: None,
                    });
                }
            }
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::full_suite;

    #[test]
    fn router_names_round_trip() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.name()), Some(kind));
            assert_eq!(
                RouterKind::parse(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(RouterKind::parse("codar_cal"), Some(RouterKind::CodarCal));
        assert_eq!(RouterKind::parse("codarcal"), Some(RouterKind::CodarCal));
        assert_eq!(RouterKind::parse("auto"), Some(RouterKind::Portfolio));
        assert_eq!(RouterKind::parse("portfolio"), Some(RouterKind::Portfolio));
        assert_eq!(RouterKind::parse("unknown"), None);
    }

    #[test]
    fn portfolio_variant_carries_default_members() {
        let auto = RouterVariant::of_kind(RouterKind::Portfolio);
        assert_eq!(auto.label, "auto");
        let labels: Vec<&str> = auto.members.iter().map(|m| m.label.as_str()).collect();
        assert_eq!(labels, ["codar", "codar-cal", "greedy", "sabre"]);
        assert!(auto.members.iter().all(|m| m.members.is_empty()));
        let cal = &auto.members[1];
        assert_eq!(cal.kind, RouterKind::CodarCal);
        assert_eq!(cal.codar.cal_alpha, DEFAULT_PORTFOLIO_ALPHA);
        let blended = RouterVariant::portfolio(0.75);
        assert_eq!(blended.members[1].codar.cal_alpha, 0.75);
        // Non-portfolio variants never carry members.
        assert!(RouterVariant::of_kind(RouterKind::Codar).members.is_empty());
    }

    #[test]
    fn matrix_skips_oversized_circuits() {
        let entries = full_suite();
        let small = Arc::new(Device::linear(5));
        let big = Arc::new(Device::ibm_q20_tokyo());
        let variants = [
            RouterVariant::of_kind(RouterKind::Codar),
            RouterVariant::of_kind(RouterKind::Sabre),
        ];
        let jobs = build_matrix(&entries, &[small.clone(), big], &variants, 0);
        // Every job fits its device, ids are dense, and both routers
        // appear for each (entry, device) pair.
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i);
            let dev_qubits = if job.device == 0 { 5 } else { 20 };
            assert!(entries[job.entry].num_qubits <= dev_qubits);
        }
        assert_eq!(jobs.len() % variants.len(), 0);
        let small_jobs = jobs.iter().filter(|j| j.device == 0).count();
        let big_jobs = jobs.iter().filter(|j| j.device == 1).count();
        assert!(small_jobs < big_jobs, "fewer circuits fit 5 qubits than 20");
    }

    #[test]
    fn noise_specs_describe_regimes() {
        let spec = NoiseSpec::new("dephasing", NoiseModel::dephasing_dominant(), 10);
        assert_eq!(spec.label, "dephasing");
        assert_eq!(spec.trajectories, 10);
        // Noise specs do NOT multiply the matrix: a job routes once
        // and fans its result across the regimes.
        let entries: Vec<_> = full_suite().into_iter().take(3).collect();
        let device = Arc::new(Device::ibm_q20_tokyo());
        let variants = [
            RouterVariant::of_kind(RouterKind::Codar),
            RouterVariant::of_kind(RouterKind::Sabre),
        ];
        let jobs = build_matrix(&entries, &[device], &variants, 0);
        assert_eq!(jobs.len(), 3 * 2);
    }

    #[test]
    fn calibration_axis_multiplies_the_matrix() {
        let entries: Vec<_> = full_suite().into_iter().take(2).collect();
        let device = Arc::new(Device::ibm_q20_tokyo());
        let variants = [
            RouterVariant::of_kind(RouterKind::Codar),
            RouterVariant::of_kind(RouterKind::CodarCal),
        ];
        let none = build_matrix(&entries, std::slice::from_ref(&device), &variants, 0);
        assert!(none.iter().all(|j| j.cal.is_none()));
        let with = build_matrix(&entries, std::slice::from_ref(&device), &variants, 3);
        assert_eq!(with.len(), none.len() * 3);
        assert!(with.iter().all(|j| j.cal.is_some()));
        // Dense ids, cal innermost.
        for (i, job) in with.iter().enumerate() {
            assert_eq!(job.id, i);
            assert_eq!(job.cal, Some(i % 3));
        }
    }

    #[test]
    fn calibration_specs_instantiate_deterministic_snapshots() {
        let device = Device::ibm_q20_tokyo();
        let uniform = CalibrationSpec::uniform("uniform");
        let (snap, model) = uniform.instantiate(&device);
        assert!(snap.is_uniform());
        assert!(!model.is_calibrated(), "uniform collapses to scalars");
        let drifted = CalibrationSpec::synthetic("drift2", 7, 2);
        let (a, _) = drifted.instantiate(&device);
        let (b, _) = drifted.instantiate(&device);
        assert_eq!(a, b, "instantiation must be deterministic");
        assert_eq!(a.version, 3, "synthetic v1 + 2 drifts");
        assert!(!a.is_uniform());
    }

    #[test]
    fn variant_constructors_set_kind_and_label() {
        let ablation = RouterVariant::codar("no hfine", CodarConfig::default());
        assert_eq!(ablation.kind, RouterKind::Codar);
        assert_eq!(ablation.label, "no hfine");
        let sabre = RouterVariant::sabre("sabre", SabreConfig::default());
        assert_eq!(sabre.kind, RouterKind::Sabre);
        assert_eq!(RouterVariant::of_kind(RouterKind::Greedy).label, "greedy");
    }
}
