//! # codar-engine — parallel suite-routing engine
//!
//! The CODAR evaluation is an embarrassingly parallel matrix: every
//! (circuit, device, router, noise-regime) cell routes and simulates
//! independently. This crate is the chassis that exploits that: a
//! [`SuiteRunner`] expands the job matrix ([`job::build_matrix`]),
//! fans it across a `std::thread` worker pool, and folds the per-job
//! [`RouteReport`]s into a [`Summary`] whose JSON/CSV serializations
//! are **byte-identical for any thread count** — timing lives in the
//! separate [`RunStats`], whose [`RunStats::to_json`] is the
//! `BENCH_timings.json` perf baseline.
//!
//! Every paper experiment is a run of this engine:
//!
//! | Experiment | Matrix |
//! |---|---|
//! | Fig. 8 speedups (`fig8`) | suite × 4 architectures × {codar, sabre} |
//! | Fig. 9 fidelity (`fig9`) | 7 algorithms × Q20 × {codar, sabre} × 2 noise regimes |
//! | Table I calibration (`table1`) | calibration set × Table-I devices × {codar, sabre} |
//! | Success probability (`success`) | suite × Q20 × {codar, sabre}, routed circuits kept |
//! | Ablations (`sweep`) | suite × device catalog × 4 CODAR [`RouterVariant`]s |
//! | Initial mappings (`mappings`) | suite × Q20 × 5 placement [`RouterVariant`]s |
//!
//! Key properties:
//!
//! * **Shared device caches** — each [`codar_arch::Device`] (and with
//!   it the all-pairs distance matrix it precomputes) is built once
//!   and shared behind an `Arc` by every job on that device.
//! * **Paper protocol** — CODAR and SABRE route each cell from the
//!   *same* reverse-traversal initial mapping, as in the paper's
//!   Fig. 8 setup (switchable via
//!   [`EngineConfig::shared_initial_mapping`] for mapping studies).
//! * **Built-in verification** — with [`EngineConfig::verify`] on
//!   (default), every routed circuit is checked for coupling
//!   compliance and semantic equivalence before it is reported.
//! * **Determinism** — job ids key all output; reports are sorted; and
//!   noise-simulation jobs derive their RNG seed from job identity,
//!   so scheduling order never leaks into the summary.
//!
//! # Examples
//!
//! Route a small subset of the suite on two devices with both routers
//! and print the Fig. 8-style speedups:
//!
//! ```
//! use codar_arch::Device;
//! use codar_benchmarks::suite::full_suite;
//! use codar_engine::{EngineConfig, SuiteRunner};
//!
//! let entries: Vec<_> = full_suite().into_iter().take(6).collect();
//! let result = SuiteRunner::new(EngineConfig::default())
//!     .device(Device::ibm_q16_melbourne())
//!     .device(Device::ibm_q20_tokyo())
//!     .entries(entries)
//!     .run();
//! assert!(result.failures.is_empty());
//! for (device, mean) in result.summary.mean_speedup_by_device() {
//!     println!("{device}: mean speedup {mean:.3}");
//! }
//! let json = result.summary.to_json(); // byte-stable across thread counts
//! assert!(json.contains("\"comparisons\""));
//! ```
//!
//! An ablation is the same run with custom router variants:
//!
//! ```
//! use codar_arch::Device;
//! use codar_benchmarks::suite::full_suite;
//! use codar_engine::{EngineConfig, RouterVariant, SuiteRunner};
//! use codar_router::CodarConfig;
//!
//! let entries: Vec<_> = full_suite().into_iter().take(3).collect();
//! let result = SuiteRunner::new(EngineConfig::default())
//!     .device(Device::ibm_q20_tokyo())
//!     .entries(entries)
//!     .variant(RouterVariant::codar("full", CodarConfig::default()))
//!     .variant(RouterVariant::codar(
//!         "no hfine",
//!         CodarConfig { enable_hfine: false, ..CodarConfig::default() },
//!     ))
//!     .run();
//! assert_eq!(result.summary.rows.len(), 6); // 3 circuits x 2 variants
//! ```

#![warn(missing_docs)]

pub mod job;
pub mod report;
pub mod runner;
pub mod worker;

pub use job::{
    CalKind, CalibrationSpec, EngineConfig, JobSpec, NoiseSpec, RouterKind, RouterVariant,
    DEFAULT_PORTFOLIO_ALPHA,
};
pub use report::{
    Comparison, FidelityStats, RouteReport, RouterTiming, RunStats, Summary, TIMINGS_SCHEMA_VERSION,
};
pub use runner::{JobFailure, SuiteResult, SuiteRunner};
pub use worker::{PortfolioOutcome, RouteWorker};

// The simulation-axis selector, re-exported so engine callers (the
// experiment binaries, the service) need no direct codar-sim import.
pub use codar_sim::{Backend, SimBackend};
