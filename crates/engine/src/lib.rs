//! # codar-engine — parallel suite-routing engine
//!
//! The CODAR evaluation is an embarrassingly parallel matrix: every
//! (circuit, device, router) cell routes independently. This crate is
//! the chassis that exploits that: a [`SuiteRunner`] expands the job
//! matrix ([`job::build_matrix`]), fans it across a `std::thread`
//! worker pool, and folds the per-job [`RouteReport`]s into a
//! [`Summary`] whose JSON/CSV serializations are **byte-identical for
//! any thread count** — timing lives in the separate [`RunStats`].
//!
//! Key properties:
//!
//! * **Shared device caches** — each [`codar_arch::Device`] (and with
//!   it the all-pairs distance matrix it precomputes) is built once
//!   and shared behind an `Arc` by every job on that device.
//! * **Paper protocol** — CODAR and SABRE route each cell from the
//!   *same* reverse-traversal initial mapping, as in the paper's
//!   Fig. 8 setup.
//! * **Built-in verification** — with [`EngineConfig::verify`] on
//!   (default), every routed circuit is checked for coupling
//!   compliance and semantic equivalence before it is reported.
//! * **Determinism** — job ids key all output; reports are sorted, so
//!   scheduling order never leaks into the summary.
//!
//! # Examples
//!
//! Route a small subset of the suite on two devices with both routers
//! and print the Fig. 8-style speedups:
//!
//! ```
//! use codar_arch::Device;
//! use codar_benchmarks::suite::full_suite;
//! use codar_engine::{EngineConfig, SuiteRunner};
//!
//! let entries: Vec<_> = full_suite().into_iter().take(6).collect();
//! let result = SuiteRunner::new(EngineConfig::default())
//!     .device(Device::ibm_q16_melbourne())
//!     .device(Device::ibm_q20_tokyo())
//!     .entries(entries)
//!     .run();
//! assert!(result.failures.is_empty());
//! for (device, mean) in result.summary.mean_speedup_by_device() {
//!     println!("{device}: mean speedup {mean:.3}");
//! }
//! let json = result.summary.to_json(); // byte-stable across thread counts
//! assert!(json.contains("\"comparisons\""));
//! ```

pub mod job;
pub mod report;
pub mod runner;

pub use job::{EngineConfig, JobSpec, RouterKind};
pub use report::{Comparison, RouteReport, RunStats, Summary};
pub use runner::{JobFailure, SuiteResult, SuiteRunner};
