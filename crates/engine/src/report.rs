//! Per-job reports and the deterministic suite summary.
//!
//! [`RouteReport`] carries everything measured about one job, including
//! wall time. The [`Summary`] built from the reports deliberately
//! excludes wall times so that its JSON/CSV serializations are
//! **byte-identical across thread counts and machines** — the engine's
//! determinism tests diff them directly.

use crate::job::RouterKind;
use codar_circuit::schedule::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Everything measured about one completed routing job.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Dense job id (position in the matrix).
    pub job_id: usize,
    /// Benchmark name.
    pub circuit: String,
    /// Device name.
    pub device: String,
    /// Qubits used by the input circuit.
    pub num_qubits: usize,
    /// Input gate count.
    pub input_gates: usize,
    /// Router that produced the result.
    pub router: RouterKind,
    /// Weighted depth (schedule makespan) of the routed circuit.
    pub weighted_depth: Time,
    /// Unweighted depth of the routed circuit.
    pub depth: usize,
    /// SWAPs the router inserted.
    pub swaps: usize,
    /// Output gate count (input + inserted SWAPs).
    pub output_gates: usize,
    /// Whether coupling + equivalence verification ran and passed
    /// (`None` when verification was disabled).
    pub verified: Option<bool>,
    /// Wall time of the whole job — initial mapping, routing and
    /// verification (not part of the summary).
    pub wall: Duration,
}

/// CODAR-vs-SABRE pairing for one (device, circuit) cell.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Device name.
    pub device: String,
    /// Benchmark name.
    pub circuit: String,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
}

impl Comparison {
    /// The Fig. 8 metric: SABRE weighted depth over CODAR weighted
    /// depth (> 1 means CODAR produces faster schedules).
    pub fn speedup(&self) -> f64 {
        if self.codar_depth == 0 {
            1.0
        } else {
            self.sabre_depth as f64 / self.codar_depth as f64
        }
    }
}

/// Timing and sizing of one engine run. Kept separate from
/// [`Summary`] because wall clocks are inherently nondeterministic.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Worker threads actually used.
    pub threads: usize,
    /// Jobs executed (including failed ones).
    pub jobs: usize,
    /// Jobs that returned a router error.
    pub failures: usize,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Sum of per-job wall times (the work the pool parallelized).
    pub total_route_time: Duration,
}

/// Deterministic summary of a suite run.
///
/// Rows are sorted by (device, circuit, router) and contain no timing,
/// so [`Summary::to_json`] and [`Summary::to_csv`] are byte-identical
/// for identical inputs regardless of thread count.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Seed the run used for initial mappings.
    pub seed: u64,
    /// Per-job rows in deterministic order.
    pub rows: Vec<RouteReport>,
    /// CODAR-vs-SABRE comparisons in deterministic order.
    pub comparisons: Vec<Comparison>,
}

impl Summary {
    /// Builds a summary from raw (unordered) reports.
    pub fn from_reports(seed: u64, mut rows: Vec<RouteReport>) -> Self {
        rows.sort_by(|a, b| {
            (&a.device, &a.circuit, a.router).cmp(&(&b.device, &b.circuit, b.router))
        });
        let mut cells: BTreeMap<(String, String), (Option<Time>, Option<Time>)> = BTreeMap::new();
        for row in &rows {
            let cell = cells
                .entry((row.device.clone(), row.circuit.clone()))
                .or_default();
            match row.router {
                RouterKind::Codar => cell.0 = Some(row.weighted_depth),
                RouterKind::Sabre => cell.1 = Some(row.weighted_depth),
                RouterKind::Greedy => {}
            }
        }
        let comparisons = cells
            .into_iter()
            .filter_map(|((device, circuit), cell)| match cell {
                (Some(codar_depth), Some(sabre_depth)) => Some(Comparison {
                    device,
                    circuit,
                    codar_depth,
                    sabre_depth,
                }),
                _ => None,
            })
            .collect();
        Summary {
            seed,
            rows,
            comparisons,
        }
    }

    /// Mean CODAR-vs-SABRE speedup per device, in device-name order.
    pub fn mean_speedup_by_device(&self) -> Vec<(String, f64)> {
        let mut acc: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for comparison in &self.comparisons {
            let entry = acc.entry(&comparison.device).or_default();
            entry.0 += comparison.speedup();
            entry.1 += 1;
        }
        acc.into_iter()
            .map(|(device, (sum, n))| (device.to_string(), sum / n as f64))
            .collect()
    }

    /// Serializes the summary as deterministic JSON (stable key order,
    /// fixed float formatting, no timing fields).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"device\": {}, \"circuit\": {}, \"qubits\": {}, \"input_gates\": {}, \
                 \"router\": {}, \"weighted_depth\": {}, \"depth\": {}, \"swaps\": {}, \
                 \"output_gates\": {}, \"verified\": {}}}",
                json_string(&row.device),
                json_string(&row.circuit),
                row.num_qubits,
                row.input_gates,
                json_string(row.router.name()),
                row.weighted_depth,
                row.depth,
                row.swaps,
                row.output_gates,
                match row.verified {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                },
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"comparisons\": [\n");
        for (i, cmp) in self.comparisons.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"device\": {}, \"circuit\": {}, \"codar_depth\": {}, \
                 \"sabre_depth\": {}, \"speedup\": {}}}",
                json_string(&cmp.device),
                json_string(&cmp.circuit),
                cmp.codar_depth,
                cmp.sabre_depth,
                json_float(cmp.speedup()),
            );
            out.push_str(if i + 1 < self.comparisons.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"mean_speedup_by_device\": {\n");
        let means = self.mean_speedup_by_device();
        for (i, (device, mean)) in means.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_string(device), json_float(*mean));
            out.push_str(if i + 1 < means.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Serializes the per-job rows as deterministic CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "device,circuit,qubits,input_gates,router,weighted_depth,depth,swaps,output_gates,verified\n",
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                csv_field(&row.device),
                csv_field(&row.circuit),
                row.num_qubits,
                row.input_gates,
                row.router.name(),
                row.weighted_depth,
                row.depth,
                row.swaps,
                row.output_gates,
                match row.verified {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "skipped",
                },
            );
        }
        out
    }

    /// Serializes the comparisons as deterministic CSV.
    pub fn comparisons_to_csv(&self) -> String {
        let mut out = String::from("device,circuit,codar_depth,sabre_depth,speedup\n");
        for cmp in &self.comparisons {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                csv_field(&cmp.device),
                csv_field(&cmp.circuit),
                cmp.codar_depth,
                cmp.sabre_depth,
                json_float(cmp.speedup()),
            );
        }
        out
    }
}

/// JSON string literal with escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Fixed-precision float so serializations never depend on shortest-
/// round-trip formatting quirks.
fn json_float(v: f64) -> String {
    format!("{v:.6}")
}

/// CSV field, quoted only when needed.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(device: &str, circuit: &str, router: RouterKind, wd: Time) -> RouteReport {
        RouteReport {
            job_id: 0,
            circuit: circuit.into(),
            device: device.into(),
            num_qubits: 4,
            input_gates: 10,
            router,
            weighted_depth: wd,
            depth: 5,
            swaps: 2,
            output_gates: 12,
            verified: Some(true),
            wall: Duration::from_millis(3),
        }
    }

    #[test]
    fn summary_sorts_and_pairs() {
        let rows = vec![
            report("q20", "qft_4", RouterKind::Sabre, 90),
            report("q16", "ghz_3", RouterKind::Codar, 40),
            report("q20", "qft_4", RouterKind::Codar, 60),
            report("q16", "ghz_3", RouterKind::Sabre, 40),
        ];
        let summary = Summary::from_reports(7, rows);
        assert_eq!(summary.rows[0].device, "q16");
        assert_eq!(summary.comparisons.len(), 2);
        let qft = summary
            .comparisons
            .iter()
            .find(|c| c.circuit == "qft_4")
            .unwrap();
        assert!((qft.speedup() - 1.5).abs() < 1e-12);
        let means = summary.mean_speedup_by_device();
        assert_eq!(means.len(), 2);
        assert!((means[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn serializations_are_stable_under_input_order() {
        let a = Summary::from_reports(
            0,
            vec![
                report("q20", "qft_4", RouterKind::Codar, 60),
                report("q20", "qft_4", RouterKind::Sabre, 90),
            ],
        );
        let b = Summary::from_reports(
            0,
            vec![
                report("q20", "qft_4", RouterKind::Sabre, 90),
                report("q20", "qft_4", RouterKind::Codar, 60),
            ],
        );
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.comparisons_to_csv(), b.comparisons_to_csv());
    }

    #[test]
    fn json_escapes_and_floats_are_fixed() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_float(1.5), "1.500000");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
    }

    #[test]
    fn empty_summary_serializes() {
        let summary = Summary::from_reports(0, Vec::new());
        let json = summary.to_json();
        assert!(json.contains("\"rows\": ["));
        assert!(summary.to_csv().ends_with("verified\n"));
    }
}
