//! Per-job reports and the deterministic suite summary.
//!
//! [`RouteReport`] carries everything measured about one job, including
//! wall time. The [`Summary`] built from the reports deliberately
//! excludes wall times so that its JSON/CSV serializations are
//! **byte-identical across thread counts and machines** — the engine's
//! determinism tests diff them directly. Timing lives in [`RunStats`],
//! whose [`RunStats::to_json`] is the `BENCH_timings.json` perf
//! baseline (explicitly nondeterministic: it is a measurement).

use crate::job::RouterKind;
use codar_circuit::schedule::Time;
use codar_router::RoutedCircuit;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Trajectory-averaged fidelity of one routed circuit under one noise
/// regime (present on reports produced by noise-simulation jobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityStats {
    /// Mean fidelity over trajectories.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trajectories averaged.
    pub trajectories: usize,
}

/// Everything measured about one completed routing job.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// Dense job id (position in the matrix).
    pub job_id: usize,
    /// Benchmark name.
    pub circuit: String,
    /// Device name.
    pub device: String,
    /// Qubits used by the input circuit.
    pub num_qubits: usize,
    /// Input gate count.
    pub input_gates: usize,
    /// Algorithm of the variant that produced the result.
    pub router: RouterKind,
    /// Label of the router variant that produced the result (equals
    /// `router.name()` for plain runs; distinct per configuration in
    /// ablation/mapping studies).
    pub variant: String,
    /// Noise regime label for fidelity jobs (`None` = routing only).
    pub noise: Option<String>,
    /// Calibration-axis label (`None` when the run has no calibration
    /// axis; serialized only when present, so pre-calibration outputs
    /// stay byte-identical).
    pub cal: Option<String>,
    /// Estimated success probability of the routed circuit under the
    /// job's calibration snapshot (present iff `cal` is).
    pub eps: Option<f64>,
    /// Resolved simulation backend of the differential
    /// routed-vs-original check, set only on non-dense rows (dense
    /// rows and runs without a simulation axis carry no new fields, so
    /// pre-existing serializations stay byte-identical).
    pub sim: Option<String>,
    /// Winning member label of a portfolio job (`None` on every
    /// fixed-variant row; serialized only when present, so
    /// pre-portfolio outputs stay byte-identical).
    pub chosen: Option<String>,
    /// Weighted depth (schedule makespan) of the routed circuit.
    pub weighted_depth: Time,
    /// Unweighted depth of the routed circuit.
    pub depth: usize,
    /// SWAPs the router inserted.
    pub swaps: usize,
    /// Output gate count (input + inserted SWAPs).
    pub output_gates: usize,
    /// Whether coupling + equivalence verification ran and passed
    /// (`None` when verification was disabled).
    pub verified: Option<bool>,
    /// Simulated fidelity (noise-simulation jobs only).
    pub fidelity: Option<FidelityStats>,
    /// The routed circuit itself, when
    /// [`crate::EngineConfig::keep_routed`] is set (never serialized).
    pub routed: Option<RoutedCircuit>,
    /// Wall time of the whole job — initial mapping, routing,
    /// verification and simulation (not part of the summary).
    pub wall: Duration,
}

/// CODAR-vs-SABRE pairing for one (device, circuit, noise) cell.
///
/// Cells pair the rows whose variant labels are exactly `"codar"` and
/// `"sabre"`; ablation variants never collide with them.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Device name.
    pub device: String,
    /// Benchmark name.
    pub circuit: String,
    /// Noise regime label (fidelity runs only).
    pub noise: Option<String>,
    /// Calibration-axis label (calibration runs only).
    pub cal: Option<String>,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
    /// CODAR simulated fidelity (fidelity runs only).
    pub codar_fidelity: Option<FidelityStats>,
    /// SABRE simulated fidelity (fidelity runs only).
    pub sabre_fidelity: Option<FidelityStats>,
}

impl Comparison {
    /// The Fig. 8 metric: SABRE weighted depth over CODAR weighted
    /// depth (> 1 means CODAR produces faster schedules).
    pub fn speedup(&self) -> f64 {
        if self.codar_depth == 0 {
            1.0
        } else {
            self.sabre_depth as f64 / self.codar_depth as f64
        }
    }

    /// The Fig. 9 metric: CODAR fidelity minus SABRE fidelity
    /// (`None` unless both sides were simulated).
    pub fn fidelity_delta(&self) -> Option<f64> {
        Some(self.codar_fidelity?.mean - self.sabre_fidelity?.mean)
    }
}

/// Wall-clock aggregate for every job of one router variant.
#[derive(Debug, Clone)]
pub struct RouterTiming {
    /// Variant label.
    pub router: String,
    /// Jobs this variant completed.
    pub jobs: usize,
    /// Sum of the variant's per-job wall times.
    pub total: Duration,
}

impl RouterTiming {
    /// Mean wall time per job of this variant.
    pub fn mean(&self) -> Duration {
        if self.jobs == 0 {
            Duration::ZERO
        } else {
            self.total / self.jobs as u32
        }
    }
}

/// Timing and sizing of one engine run. Kept separate from
/// [`Summary`] because wall clocks are inherently nondeterministic.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Worker threads actually used.
    pub threads: usize,
    /// Jobs executed (including failed ones).
    pub jobs: usize,
    /// Calibration points on the run's snapshot axis (`0` = no axis).
    pub calibration_specs: usize,
    /// Jobs that returned a router error.
    pub failures: usize,
    /// End-to-end wall time of the run.
    pub wall: Duration,
    /// Sum of per-job wall times (the work the pool parallelized).
    pub total_route_time: Duration,
    /// Per-variant timing aggregates, sorted by variant label.
    pub per_router: Vec<RouterTiming>,
}

/// Schema version stamped into every [`RunStats::to_json`] payload
/// (`BENCH_timings.json` and the CI artifact). Consumers comparing
/// timing baselines should check it first; bump it whenever the JSON
/// shape changes so old and new files can never be diffed silently.
/// Version 1 was the pre-versioned format; version 2 added this
/// field; version 3 added `calibration_specs` (runs with a
/// calibration axis route a multiplied matrix, so their timings are
/// only comparable to baselines with the same axis size).
pub const TIMINGS_SCHEMA_VERSION: u32 = 3;

impl RunStats {
    /// Completed jobs per wall-clock second — each job routes one
    /// circuit, so this is the engine's circuits/sec throughput.
    pub fn circuits_per_sec(&self) -> f64 {
        (self.jobs - self.failures) as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Ratio of parallelized work to wall time: how many workers the
    /// pool kept busy on average.
    pub fn pool_speedup(&self) -> f64 {
        self.total_route_time.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
    }

    /// Serializes the timing baseline (the `BENCH_timings.json`
    /// payload). Pass the stats of a 1-thread run of the same matrix
    /// as `baseline` to include the measured end-to-end speedup and
    /// the per-router 1-thread means (`"per_router_1_thread"` — the
    /// contention-free mean_ms that perf work is gated on; the
    /// top-level `"per_router"` means include pool contention when the
    /// run was parallel). Without a baseline both are `null`.
    pub fn to_json(&self, baseline: Option<&RunStats>) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": {TIMINGS_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"calibration_specs\": {},", self.calibration_specs);
        let _ = writeln!(out, "  \"failures\": {},", self.failures);
        let _ = writeln!(out, "  \"wall_seconds\": {:.6},", self.wall.as_secs_f64());
        let _ = writeln!(
            out,
            "  \"total_route_seconds\": {:.6},",
            self.total_route_time.as_secs_f64()
        );
        let _ = writeln!(
            out,
            "  \"circuits_per_sec\": {:.3},",
            self.circuits_per_sec()
        );
        let _ = writeln!(out, "  \"pool_speedup\": {:.3},", self.pool_speedup());
        match baseline {
            Some(single) => {
                let _ = writeln!(
                    out,
                    "  \"baseline_1_thread_wall_seconds\": {:.6},",
                    single.wall.as_secs_f64()
                );
                let _ = writeln!(
                    out,
                    "  \"speedup_vs_1_thread\": {:.3},",
                    single.wall.as_secs_f64() / self.wall.as_secs_f64().max(1e-9)
                );
            }
            None => {
                out.push_str("  \"baseline_1_thread_wall_seconds\": null,\n");
                out.push_str("  \"speedup_vs_1_thread\": null,\n");
            }
        }
        out.push_str("  \"per_router\": [\n");
        out.push_str(&per_router_json(&self.per_router));
        match baseline {
            Some(single) => {
                out.push_str("  ],\n  \"per_router_1_thread\": [\n");
                out.push_str(&per_router_json(&single.per_router));
                out.push_str("  ]\n}\n");
            }
            None => {
                out.push_str("  ],\n  \"per_router_1_thread\": null\n}\n");
            }
        }
        out
    }
}

/// Deterministic summary of a suite run.
///
/// Rows are sorted by (device, circuit, variant, noise) and contain no
/// timing, so [`Summary::to_json`] and [`Summary::to_csv`] are
/// byte-identical for identical inputs regardless of thread count.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Seed the run used for initial mappings and noise RNGs.
    pub seed: u64,
    /// Per-job rows in deterministic order.
    pub rows: Vec<RouteReport>,
    /// CODAR-vs-SABRE comparisons in deterministic order.
    pub comparisons: Vec<Comparison>,
}

impl Summary {
    /// Builds a summary from raw (unordered) reports.
    pub fn from_reports(seed: u64, mut rows: Vec<RouteReport>) -> Self {
        rows.sort_by(|a, b| {
            (&a.device, &a.circuit, &a.variant, &a.noise, &a.cal, &a.sim)
                .cmp(&(&b.device, &b.circuit, &b.variant, &b.noise, &b.cal, &b.sim))
        });
        type Cell = (
            Option<(Time, Option<FidelityStats>)>,
            Option<(Time, Option<FidelityStats>)>,
        );
        type CellKey = (String, String, Option<String>, Option<String>);
        let mut cells: BTreeMap<CellKey, Cell> = BTreeMap::new();
        for row in &rows {
            let cell = cells
                .entry((
                    row.device.clone(),
                    row.circuit.clone(),
                    row.noise.clone(),
                    row.cal.clone(),
                ))
                .or_default();
            match row.variant.as_str() {
                "codar" => cell.0 = Some((row.weighted_depth, row.fidelity)),
                "sabre" => cell.1 = Some((row.weighted_depth, row.fidelity)),
                _ => {}
            }
        }
        let comparisons = cells
            .into_iter()
            .filter_map(|((device, circuit, noise, cal), cell)| match cell {
                (Some((codar_depth, codar_fidelity)), Some((sabre_depth, sabre_fidelity))) => {
                    Some(Comparison {
                        device,
                        circuit,
                        noise,
                        cal,
                        codar_depth,
                        sabre_depth,
                        codar_fidelity,
                        sabre_fidelity,
                    })
                }
                _ => None,
            })
            .collect();
        Summary {
            seed,
            rows,
            comparisons,
        }
    }

    /// Mean CODAR-vs-SABRE speedup per device, in device-name order.
    pub fn mean_speedup_by_device(&self) -> Vec<(String, f64)> {
        let mut acc: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
        for comparison in &self.comparisons {
            let entry = acc.entry(&comparison.device).or_default();
            entry.0 += comparison.speedup();
            entry.1 += 1;
        }
        acc.into_iter()
            .map(|(device, (sum, n))| (device.to_string(), sum / n as f64))
            .collect()
    }

    /// Serializes the summary as deterministic JSON (stable key order,
    /// fixed float formatting, no timing fields). The calibration
    /// columns (`cal`, `eps`) are emitted only on rows that carry
    /// them, so runs without a calibration axis serialize exactly as
    /// before the axis existed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cal_columns = match (&row.cal, row.eps) {
                (Some(cal), Some(eps)) => {
                    format!(
                        ", \"cal\": {}, \"eps\": {}",
                        json_string(cal),
                        json_float(eps)
                    )
                }
                (Some(cal), None) => format!(", \"cal\": {}", json_string(cal)),
                _ => String::new(),
            };
            let sim_column = match &row.sim {
                Some(sim) => format!(", \"sim\": {}", json_string(sim)),
                None => String::new(),
            };
            let chosen_column = match &row.chosen {
                Some(chosen) => format!(", \"chosen\": {}", json_string(chosen)),
                None => String::new(),
            };
            let _ = write!(
                out,
                "    {{\"device\": {}, \"circuit\": {}, \"qubits\": {}, \"input_gates\": {}, \
                 \"router\": {}, \"variant\": {}, \"noise\": {}, \"weighted_depth\": {}, \
                 \"depth\": {}, \"swaps\": {}, \"output_gates\": {}, \"verified\": {}, \
                 \"fidelity\": {}{}{}{}}}",
                json_string(&row.device),
                json_string(&row.circuit),
                row.num_qubits,
                row.input_gates,
                json_string(row.router.name()),
                json_string(&row.variant),
                json_opt_string(row.noise.as_deref()),
                row.weighted_depth,
                row.depth,
                row.swaps,
                row.output_gates,
                match row.verified {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "null",
                },
                json_fidelity(row.fidelity.as_ref()),
                cal_columns,
                sim_column,
                chosen_column,
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"comparisons\": [\n");
        for (i, cmp) in self.comparisons.iter().enumerate() {
            let cal_column = match &cmp.cal {
                Some(cal) => format!(", \"cal\": {}", json_string(cal)),
                None => String::new(),
            };
            let _ = write!(
                out,
                "    {{\"device\": {}, \"circuit\": {}, \"noise\": {}, \"codar_depth\": {}, \
                 \"sabre_depth\": {}, \"speedup\": {}, \"codar_fidelity\": {}, \
                 \"sabre_fidelity\": {}{}}}",
                json_string(&cmp.device),
                json_string(&cmp.circuit),
                json_opt_string(cmp.noise.as_deref()),
                cmp.codar_depth,
                cmp.sabre_depth,
                json_float(cmp.speedup()),
                json_fidelity(cmp.codar_fidelity.as_ref()),
                json_fidelity(cmp.sabre_fidelity.as_ref()),
                cal_column,
            );
            out.push_str(if i + 1 < self.comparisons.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"mean_speedup_by_device\": {\n");
        let means = self.mean_speedup_by_device();
        for (i, (device, mean)) in means.iter().enumerate() {
            let _ = write!(out, "    {}: {}", json_string(device), json_float(*mean));
            out.push_str(if i + 1 < means.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Serializes the per-job rows as deterministic CSV. The `cal` and
    /// `eps` columns (and their headers) appear only when the run had
    /// a calibration axis, and the `sim` column only when some row
    /// resolved to a non-dense simulation backend, keeping pre-existing
    /// CSVs byte-stable.
    pub fn to_csv(&self) -> String {
        let calibrated = self.rows.iter().any(|r| r.cal.is_some());
        let simulated = self.rows.iter().any(|r| r.sim.is_some());
        let portfolio = self.rows.iter().any(|r| r.chosen.is_some());
        let mut out = String::from(
            "device,circuit,qubits,input_gates,router,variant,noise,weighted_depth,depth,\
             swaps,output_gates,verified,fidelity_mean,fidelity_std_error",
        );
        if calibrated {
            out.push_str(",cal,eps");
        }
        if simulated {
            out.push_str(",sim");
        }
        if portfolio {
            out.push_str(",chosen");
        }
        out.push('\n');
        for row in &self.rows {
            let (fid_mean, fid_err) = match &row.fidelity {
                Some(f) => (json_float(f.mean), json_float(f.std_error)),
                None => (String::new(), String::new()),
            };
            let _ = write!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(&row.device),
                csv_field(&row.circuit),
                row.num_qubits,
                row.input_gates,
                row.router.name(),
                csv_field(&row.variant),
                csv_field(row.noise.as_deref().unwrap_or("")),
                row.weighted_depth,
                row.depth,
                row.swaps,
                row.output_gates,
                match row.verified {
                    Some(true) => "yes",
                    Some(false) => "no",
                    None => "skipped",
                },
                fid_mean,
                fid_err,
            );
            if calibrated {
                let _ = write!(
                    out,
                    ",{},{}",
                    csv_field(row.cal.as_deref().unwrap_or("")),
                    row.eps.map(json_float).unwrap_or_default(),
                );
            }
            if simulated {
                let _ = write!(out, ",{}", csv_field(row.sim.as_deref().unwrap_or("")));
            }
            if portfolio {
                let _ = write!(out, ",{}", csv_field(row.chosen.as_deref().unwrap_or("")));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the comparisons as deterministic CSV (fidelity
    /// columns are empty for routing-only runs).
    pub fn comparisons_to_csv(&self) -> String {
        let mut out = String::from(
            "device,circuit,noise,codar_depth,sabre_depth,speedup,\
             codar_fidelity,sabre_fidelity,fidelity_delta\n",
        );
        for cmp in &self.comparisons {
            let fid = |f: Option<FidelityStats>| f.map(|f| json_float(f.mean)).unwrap_or_default();
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                csv_field(&cmp.device),
                csv_field(&cmp.circuit),
                csv_field(cmp.noise.as_deref().unwrap_or("")),
                cmp.codar_depth,
                cmp.sabre_depth,
                json_float(cmp.speedup()),
                fid(cmp.codar_fidelity),
                fid(cmp.sabre_fidelity),
                cmp.fidelity_delta()
                    .map(|d| json_float(d))
                    .unwrap_or_default(),
            );
        }
        out
    }
}

/// The shared `per_router` array body (rows indented for both the
/// parallel and the 1-thread-baseline sections).
fn per_router_json(timings: &[RouterTiming]) -> String {
    let mut out = String::new();
    for (i, t) in timings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"router\": {}, \"jobs\": {}, \"total_seconds\": {:.6}, \
             \"mean_ms\": {:.3}}}",
            json_string(&t.router),
            t.jobs,
            t.total.as_secs_f64(),
            t.mean().as_secs_f64() * 1e3,
        );
        out.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    out
}

/// Renders `s` as a JSON string literal (quotes included), escaping
/// quotes, backslashes and control characters. Public because the
/// service crate's NDJSON responses must use byte-identical escaping
/// to these summaries.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `"s"` or `null`.
fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

/// Inline fidelity object or `null`.
fn json_fidelity(f: Option<&FidelityStats>) -> String {
    match f {
        Some(f) => format!(
            "{{\"mean\": {}, \"std_error\": {}, \"trajectories\": {}}}",
            json_float(f.mean),
            json_float(f.std_error),
            f.trajectories
        ),
        None => "null".to_string(),
    }
}

/// Fixed-precision float so serializations never depend on shortest-
/// round-trip formatting quirks.
fn json_float(v: f64) -> String {
    format!("{v:.6}")
}

/// CSV field, quoted only when needed.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(device: &str, circuit: &str, router: RouterKind, wd: Time) -> RouteReport {
        RouteReport {
            job_id: 0,
            circuit: circuit.into(),
            device: device.into(),
            num_qubits: 4,
            input_gates: 10,
            router,
            variant: router.name().to_string(),
            noise: None,
            cal: None,
            eps: None,
            sim: None,
            chosen: None,
            weighted_depth: wd,
            depth: 5,
            swaps: 2,
            output_gates: 12,
            verified: Some(true),
            fidelity: None,
            routed: None,
            wall: Duration::from_millis(3),
        }
    }

    #[test]
    fn summary_sorts_and_pairs() {
        let rows = vec![
            report("q20", "qft_4", RouterKind::Sabre, 90),
            report("q16", "ghz_3", RouterKind::Codar, 40),
            report("q20", "qft_4", RouterKind::Codar, 60),
            report("q16", "ghz_3", RouterKind::Sabre, 40),
        ];
        let summary = Summary::from_reports(7, rows);
        assert_eq!(summary.rows[0].device, "q16");
        assert_eq!(summary.comparisons.len(), 2);
        let qft = summary
            .comparisons
            .iter()
            .find(|c| c.circuit == "qft_4")
            .unwrap();
        assert!((qft.speedup() - 1.5).abs() < 1e-12);
        let means = summary.mean_speedup_by_device();
        assert_eq!(means.len(), 2);
        assert!((means[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ablation_variants_do_not_pair_into_comparisons() {
        let mut no_hfine = report("q20", "qft_4", RouterKind::Codar, 70);
        no_hfine.variant = "no hfine".into();
        let rows = vec![
            report("q20", "qft_4", RouterKind::Codar, 60),
            report("q20", "qft_4", RouterKind::Sabre, 90),
            no_hfine,
        ];
        let summary = Summary::from_reports(0, rows);
        assert_eq!(summary.rows.len(), 3);
        assert_eq!(summary.comparisons.len(), 1);
        assert_eq!(summary.comparisons[0].codar_depth, 60);
    }

    #[test]
    fn noise_labelled_rows_pair_per_regime() {
        let fid = |mean| FidelityStats {
            mean,
            std_error: 0.01,
            trajectories: 50,
        };
        let mut rows = Vec::new();
        for (regime, cf, sf) in [("damping", 0.80, 0.79), ("dephasing", 0.90, 0.85)] {
            let mut c = report("q20", "ghz_6", RouterKind::Codar, 60);
            c.noise = Some(regime.into());
            c.fidelity = Some(fid(cf));
            let mut s = report("q20", "ghz_6", RouterKind::Sabre, 90);
            s.noise = Some(regime.into());
            s.fidelity = Some(fid(sf));
            rows.push(c);
            rows.push(s);
        }
        let summary = Summary::from_reports(0, rows);
        assert_eq!(summary.comparisons.len(), 2);
        let deph = summary
            .comparisons
            .iter()
            .find(|c| c.noise.as_deref() == Some("dephasing"))
            .unwrap();
        assert!((deph.fidelity_delta().unwrap() - 0.05).abs() < 1e-12);
        let json = summary.to_json();
        assert!(json.contains("\"noise\": \"dephasing\""));
        assert!(json.contains("\"mean\": 0.900000"));
    }

    #[test]
    fn calibration_columns_appear_only_on_calibrated_rows() {
        // No calibration axis: bytes identical to the pre-axis shape.
        let plain = Summary::from_reports(0, vec![report("q20", "qft_4", RouterKind::Codar, 60)]);
        assert!(!plain.to_json().contains("\"cal\""));
        assert!(!plain.to_json().contains("\"eps\""));
        assert!(plain.to_csv().starts_with("device,"));
        assert!(plain
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .ends_with("fidelity_std_error"));

        // With the axis: rows carry cal/eps, comparisons pair per cal
        // point, and the CSV grows the two columns.
        let mut rows = Vec::new();
        for cal in ["drift0", "drift1"] {
            let mut c = report("q20", "qft_4", RouterKind::Codar, 60);
            c.cal = Some(cal.into());
            c.eps = Some(0.5);
            let mut s = report("q20", "qft_4", RouterKind::Sabre, 90);
            s.cal = Some(cal.into());
            s.eps = Some(0.25);
            rows.push(c);
            rows.push(s);
        }
        let summary = Summary::from_reports(0, rows);
        assert_eq!(summary.comparisons.len(), 2);
        assert_eq!(summary.comparisons[0].cal.as_deref(), Some("drift0"));
        let json = summary.to_json();
        assert!(json.contains("\"cal\": \"drift1\""));
        assert!(json.contains("\"eps\": 0.500000"));
        let csv = summary.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",cal,eps"));
        assert!(csv.contains(",drift0,0.500000"));
    }

    #[test]
    fn sim_column_appears_only_on_non_dense_rows() {
        // No simulation axis (or dense resolution): bytes identical to
        // the pre-axis shape.
        let plain = Summary::from_reports(0, vec![report("q20", "qft_4", RouterKind::Codar, 60)]);
        assert!(!plain.to_json().contains("\"sim\""));
        assert!(!plain.to_csv().lines().next().unwrap().contains(",sim"));

        // A stabilizer-resolved row carries the column; its dense
        // sibling row leaves the JSON field off and the CSV cell empty.
        let mut stab = report("q20", "ghz_6", RouterKind::Codar, 40);
        stab.sim = Some("stabilizer".into());
        let rows = vec![stab, report("q20", "qft_4", RouterKind::Codar, 60)];
        let summary = Summary::from_reports(0, rows);
        let json = summary.to_json();
        assert!(json.contains("\"sim\": \"stabilizer\""));
        assert_eq!(json.matches("\"sim\"").count(), 1);
        let csv = summary.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",sim"));
        assert!(csv.contains(",stabilizer\n"));

        // With a calibration axis too, sim trails cal/eps.
        let mut both = report("q20", "ghz_6", RouterKind::Codar, 40);
        both.cal = Some("drift0".into());
        both.eps = Some(0.5);
        both.sim = Some("sparse".into());
        let summary = Summary::from_reports(0, vec![both]);
        assert!(summary
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .ends_with(",cal,eps,sim"));
        assert!(summary
            .to_json()
            .contains("\"eps\": 0.500000, \"sim\": \"sparse\""));
    }

    #[test]
    fn chosen_column_appears_only_on_portfolio_rows() {
        // No portfolio rows: bytes identical to the pre-portfolio shape.
        let plain = Summary::from_reports(0, vec![report("q20", "qft_4", RouterKind::Codar, 60)]);
        assert!(!plain.to_json().contains("\"chosen\""));
        assert!(!plain.to_csv().lines().next().unwrap().contains(",chosen"));

        // A portfolio row carries the winner; fixed-variant siblings
        // leave the JSON field off and the CSV cell empty.
        let mut auto = report("q20", "qft_4", RouterKind::Portfolio, 55);
        auto.chosen = Some("codar-cal".into());
        let rows = vec![auto, report("q20", "qft_4", RouterKind::Codar, 60)];
        let summary = Summary::from_reports(0, rows);
        let json = summary.to_json();
        assert!(json.contains("\"router\": \"auto\""));
        assert!(json.contains("\"chosen\": \"codar-cal\""));
        assert_eq!(json.matches("\"chosen\"").count(), 1);
        let csv = summary.to_csv();
        assert!(csv.lines().next().unwrap().ends_with(",chosen"));
        assert!(csv.contains(",codar-cal\n"));

        // With cal and sim columns too, chosen trails everything.
        let mut full = report("q20", "ghz_6", RouterKind::Portfolio, 40);
        full.cal = Some("drift0".into());
        full.eps = Some(0.5);
        full.sim = Some("stabilizer".into());
        full.chosen = Some("codar".into());
        let summary = Summary::from_reports(0, vec![full]);
        assert!(summary
            .to_csv()
            .lines()
            .next()
            .unwrap()
            .ends_with(",cal,eps,sim,chosen"));
        assert!(summary
            .to_json()
            .contains("\"sim\": \"stabilizer\", \"chosen\": \"codar\""));
    }

    #[test]
    fn serializations_are_stable_under_input_order() {
        let a = Summary::from_reports(
            0,
            vec![
                report("q20", "qft_4", RouterKind::Codar, 60),
                report("q20", "qft_4", RouterKind::Sabre, 90),
            ],
        );
        let b = Summary::from_reports(
            0,
            vec![
                report("q20", "qft_4", RouterKind::Sabre, 90),
                report("q20", "qft_4", RouterKind::Codar, 60),
            ],
        );
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.comparisons_to_csv(), b.comparisons_to_csv());
    }

    #[test]
    fn json_escapes_and_floats_are_fixed() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_float(1.5), "1.500000");
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(json_opt_string(None), "null");
    }

    #[test]
    fn empty_summary_serializes() {
        let summary = Summary::from_reports(0, Vec::new());
        let json = summary.to_json();
        assert!(json.contains("\"rows\": ["));
        assert!(summary.to_csv().ends_with("fidelity_std_error\n"));
    }

    #[test]
    fn run_stats_json_reports_throughput_and_speedup() {
        let stats = RunStats {
            threads: 4,
            jobs: 40,
            calibration_specs: 0,
            failures: 0,
            wall: Duration::from_secs(2),
            total_route_time: Duration::from_secs(6),
            per_router: vec![RouterTiming {
                router: "codar".into(),
                jobs: 20,
                total: Duration::from_secs(4),
            }],
        };
        assert!((stats.circuits_per_sec() - 20.0).abs() < 1e-9);
        assert!((stats.pool_speedup() - 3.0).abs() < 1e-9);
        let single = RunStats {
            threads: 1,
            wall: Duration::from_secs(6),
            ..stats.clone()
        };
        let json = stats.to_json(Some(&single));
        assert!(json.starts_with(&format!("{{\n  \"version\": {TIMINGS_SCHEMA_VERSION},\n")));
        assert!(json.contains("\"speedup_vs_1_thread\": 3.000"));
        assert!(json.contains("\"router\": \"codar\""));
        assert!(json.contains("\"mean_ms\": 200.000"));
        // The baseline run's per-router means ride along for the
        // contention-free perf gate.
        assert!(json.contains("\"per_router_1_thread\": [\n"));
        let solo = stats.to_json(None);
        assert!(solo.contains("\"speedup_vs_1_thread\": null"));
        assert!(solo.contains("\"per_router_1_thread\": null"));
    }
}
