//! Per-worker routing state: one [`RouteWorker`] per pool thread.
//!
//! Both the batch engine ([`crate::SuiteRunner`]) and the online
//! routing service (`codar-service`) run the same inner step — pick the
//! router an incoming [`RouterVariant`] names, thread the worker's
//! reusable [`RouterScratch`] through it, and hand back the
//! [`RoutedCircuit`]. This module is that step's single implementation,
//! so the two pools cannot drift apart: a worker owns exactly one
//! scratch, reuses it for every call it serves, and the dispatch from
//! variant to router lives here and nowhere else.

use crate::job::{RouterKind, RouterVariant};
use codar_arch::{selection_score, CalibrationSnapshot, Device, FidelityModel};
use codar_circuit::Circuit;
use codar_router::sabre::reverse_traversal_mapping_scratch;
use codar_router::verify::{check_coupling, check_equivalence, reconstruct_logical};
use codar_router::{
    CodarRouter, GreedyRouter, Mapping, RouteError, RoutedCircuit, RouterScratch, SabreRouter,
};
use codar_sim::backend::differential_check;
use codar_sim::{Backend, SimBackend};

/// What a portfolio route produced: the winning member's result plus
/// the selection evidence.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The winning member's routed circuit.
    pub routed: RoutedCircuit,
    /// The winning member's variant label (e.g. `"codar-cal"`).
    pub chosen: String,
    /// The winner's [`selection_score`] — EPS when a calibration model
    /// was active, else the depth+swap fallback.
    pub score: f64,
    /// How many members routed **and** verified (losers included).
    pub evaluated: usize,
}

/// One pool worker's reusable routing state.
///
/// Holds the [`RouterScratch`] every route call on the owning thread
/// shares (results are scratch-independent; see
/// `codar_router::scratch`) and performs the variant→router dispatch.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_circuit::Circuit;
/// use codar_engine::{RouteWorker, RouterKind, RouterVariant};
///
/// let device = Device::ibm_q20_tokyo();
/// let variant = RouterVariant::of_kind(RouterKind::Codar);
/// let mut worker = RouteWorker::new();
/// let mut c = Circuit::new(3);
/// c.h(0);
/// c.cx(0, 2);
/// let initial = worker.initial_mapping(&c, &device, 0);
/// let routed = worker
///     .route(&c, &device, &variant, Some(initial), None)
///     .expect("fits the device");
/// assert_eq!(routed.gate_count(), 2 + routed.swaps_inserted);
/// ```
#[derive(Debug, Default)]
pub struct RouteWorker {
    scratch: RouterScratch,
}

impl RouteWorker {
    /// A fresh worker; its scratch buffers grow on first use.
    pub fn new() -> Self {
        RouteWorker::default()
    }

    /// The paper-protocol initial placement (reverse traversal, two
    /// SABRE passes), computed with this worker's scratch.
    pub fn initial_mapping(&mut self, circuit: &Circuit, device: &Device, seed: u64) -> Mapping {
        reverse_traversal_mapping_scratch(circuit, device, seed, &mut self.scratch)
    }

    /// Routes `circuit` on `device` with `variant`.
    ///
    /// With `initial = Some(mapping)` the router starts from that
    /// placement (the shared-initial-mapping protocol); with `None`
    /// each variant builds its own placement from its configuration
    /// (the initial-mapping study protocol).
    ///
    /// `snapshot` is the job's calibration snapshot; only
    /// [`RouterKind::CodarCal`] consumes it (blending
    /// `variant.codar.cal_alpha ×` normalized edge error into the SWAP
    /// priority). A `CodarCal` variant without a snapshot routes as
    /// plain CODAR.
    ///
    /// # Errors
    ///
    /// Propagates the router's [`RouteError`] (circuit does not fit,
    /// disconnected coupling, …).
    pub fn route(
        &mut self,
        circuit: &Circuit,
        device: &Device,
        variant: &RouterVariant,
        initial: Option<Mapping>,
        snapshot: Option<&CalibrationSnapshot>,
    ) -> Result<RoutedCircuit, RouteError> {
        if variant.kind == RouterKind::Portfolio {
            return self
                .route_portfolio(
                    circuit,
                    device,
                    &variant.members,
                    initial.as_ref(),
                    snapshot,
                    None,
                )
                .map(|outcome| outcome.routed);
        }
        let scratch = &mut self.scratch;
        match (variant.kind, initial) {
            (RouterKind::Codar, Some(mapping)) => {
                CodarRouter::with_config(device, variant.codar.clone())
                    .route_with_scratch(circuit, mapping, scratch)
            }
            (RouterKind::Codar, None) => CodarRouter::with_config(device, variant.codar.clone())
                .route_scratch(circuit, scratch),
            (RouterKind::CodarCal, initial) => {
                let mut router = CodarRouter::with_config(device, variant.codar.clone());
                if let Some(snapshot) = snapshot {
                    router = router.with_snapshot(snapshot);
                }
                match initial {
                    Some(mapping) => router.route_with_scratch(circuit, mapping, scratch),
                    None => router.route_scratch(circuit, scratch),
                }
            }
            (RouterKind::Sabre, Some(mapping)) => {
                SabreRouter::with_config(device, variant.sabre.clone())
                    .route_with_scratch(circuit, mapping, scratch)
            }
            (RouterKind::Sabre, None) => SabreRouter::with_config(device, variant.sabre.clone())
                .route_scratch(circuit, scratch),
            (RouterKind::Greedy, Some(mapping)) => {
                GreedyRouter::new(device).route_with_scratch(circuit, mapping, scratch)
            }
            (RouterKind::Greedy, None) => GreedyRouter::new(device).route_scratch(circuit, scratch),
            // Handled by the early return above.
            (RouterKind::Portfolio, _) => unreachable!("portfolio dispatch happens above"),
        }
    }

    /// Routes `circuit` under every `members` variant — reusing this
    /// worker's one scratch across all of them, no fresh allocation per
    /// member — verifies each result (coupling + equivalence), scores
    /// the verified ones with [`selection_score`] (`model` present ⇒
    /// EPS; absent ⇒ depth+swap fallback), and keeps the winner.
    ///
    /// Selection is fully deterministic and member-order-independent:
    /// highest `score.to_bits()` wins, exact ties broken by
    /// lexicographically smallest variant label. Members of kind
    /// [`RouterKind::Portfolio`] are skipped (no recursion).
    ///
    /// # Errors
    ///
    /// Returns the last member's error when **no** member produced a
    /// verified result (or a [`RouteError::Verification`] when the
    /// member list is empty).
    #[allow(clippy::too_many_arguments)]
    pub fn route_portfolio(
        &mut self,
        circuit: &Circuit,
        device: &Device,
        members: &[RouterVariant],
        initial: Option<&Mapping>,
        snapshot: Option<&CalibrationSnapshot>,
        model: Option<&FidelityModel>,
    ) -> Result<PortfolioOutcome, RouteError> {
        let mut best: Option<PortfolioOutcome> = None;
        let mut evaluated = 0usize;
        let mut last_err = RouteError::Verification("portfolio: no members configured".to_string());
        for member in members {
            if member.kind == RouterKind::Portfolio {
                continue;
            }
            let routed = match self.route(circuit, device, member, initial.cloned(), snapshot) {
                Ok(routed) => routed,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            if let Err(e) = check_coupling(&routed.circuit, device)
                .and_then(|()| check_equivalence(circuit, &routed))
            {
                last_err = e;
                continue;
            }
            evaluated += 1;
            let score = selection_score(
                model,
                &routed.circuit,
                device.durations(),
                routed.weighted_depth,
                routed.swaps_inserted as u64,
            );
            let wins = match &best {
                None => true,
                Some(current) => {
                    score.to_bits() > current.score.to_bits()
                        || (score.to_bits() == current.score.to_bits()
                            && member.label < current.chosen)
                }
            };
            if wins {
                best = Some(PortfolioOutcome {
                    routed,
                    chosen: member.label.clone(),
                    score,
                    evaluated: 0,
                });
            }
        }
        match best {
            Some(mut outcome) => {
                outcome.evaluated = evaluated;
                Ok(outcome)
            }
            None => Err(last_err),
        }
    }

    /// Direct access to the underlying scratch, for callers that need
    /// to run other scratch-threaded router entry points.
    pub fn scratch_mut(&mut self) -> &mut RouterScratch {
        &mut self.scratch
    }

    /// Differentially verifies a routed circuit against its original by
    /// *simulating both*: the routed circuit is reconstructed back onto
    /// logical qubits (undoing the router's SWAPs) and the two are run
    /// under the engine `backend` resolves to — canonical-tableau
    /// equality on the stabilizer backend, state fidelity on dense and
    /// sparse. Stronger than [`codar_router::verify::check_equivalence`]
    /// (which reasons syntactically about commutation) and, via the
    /// stabilizer backend, the only equivalence check that scales to
    /// whole-device Clifford circuits.
    ///
    /// Returns the resolved [`SimBackend`] on success.
    ///
    /// # Errors
    ///
    /// Returns a message when the backend cannot run the circuit, the
    /// reconstruction fails, or the simulated states differ.
    pub fn simulation_check(
        &self,
        original: &Circuit,
        routed: &RoutedCircuit,
        backend: Backend,
    ) -> Result<SimBackend, String> {
        let logical = reconstruct_logical(
            &routed.circuit,
            &routed.initial_mapping,
            original.num_qubits(),
            &routed.inserted_swap_indices,
        )
        .map_err(|e| e.to_string())?;
        differential_check(original, &logical, backend, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::full_suite;

    /// The worker dispatch must produce exactly what calling the
    /// routers directly produces — for every kind, shared or own
    /// placement.
    #[test]
    fn dispatch_matches_direct_router_calls() {
        let device = Device::ibm_q20_tokyo();
        let entry = &full_suite()[4];
        let mut worker = RouteWorker::new();
        for kind in [
            RouterKind::Codar,
            RouterKind::CodarCal,
            RouterKind::Sabre,
            RouterKind::Greedy,
        ] {
            let variant = RouterVariant::of_kind(kind);
            let initial = worker.initial_mapping(&entry.circuit, &device, 0);
            let via_worker = worker
                .route(
                    &entry.circuit,
                    &device,
                    &variant,
                    Some(initial.clone()),
                    None,
                )
                .expect("fits");
            let direct = match kind {
                // Snapshot-less codar-cal routes exactly as CODAR.
                RouterKind::Codar | RouterKind::CodarCal => CodarRouter::new(&device)
                    .route_with_scratch(&entry.circuit, initial, &mut RouterScratch::new()),
                RouterKind::Sabre => SabreRouter::new(&device).route_with_scratch(
                    &entry.circuit,
                    initial,
                    &mut RouterScratch::new(),
                ),
                RouterKind::Greedy => GreedyRouter::new(&device).route_with_scratch(
                    &entry.circuit,
                    initial,
                    &mut RouterScratch::new(),
                ),
                RouterKind::Portfolio => unreachable!("not in this test's kind list"),
            }
            .expect("fits");
            assert_eq!(via_worker.circuit.gates(), direct.circuit.gates());
            assert_eq!(via_worker.weighted_depth, direct.weighted_depth);
        }
    }

    /// The codar-cal dispatch: without a snapshot (or with alpha 0) it
    /// routes identically to plain CODAR; with a drifted snapshot and
    /// alpha > 0 it still verifies.
    #[test]
    fn codar_cal_dispatch_reduces_and_verifies() {
        use codar_arch::CalibrationSnapshot;
        let device = Device::ibm_q20_tokyo();
        let entry = &full_suite()[6];
        let mut worker = RouteWorker::new();
        let initial = worker.initial_mapping(&entry.circuit, &device, 0);
        let plain = worker
            .route(
                &entry.circuit,
                &device,
                &RouterVariant::of_kind(RouterKind::Codar),
                Some(initial.clone()),
                None,
            )
            .expect("fits");
        let snapshot = CalibrationSnapshot::synthetic(&device, 5).drifted(1);
        let cal_variant = RouterVariant::of_kind(RouterKind::CodarCal);
        // Default cal_alpha = 0: byte-identical to plain CODAR even
        // with the snapshot attached.
        let zero = worker
            .route(
                &entry.circuit,
                &device,
                &cal_variant,
                Some(initial.clone()),
                Some(&snapshot),
            )
            .expect("fits");
        assert_eq!(plain.circuit.gates(), zero.circuit.gates());
        assert_eq!(plain.weighted_depth, zero.weighted_depth);
        // alpha > 0 may reroute but must stay valid and equivalent.
        let mut blended_variant = RouterVariant::of_kind(RouterKind::CodarCal);
        blended_variant.codar.cal_alpha = 1.0;
        let blended = worker
            .route(
                &entry.circuit,
                &device,
                &blended_variant,
                Some(initial),
                Some(&snapshot),
            )
            .expect("fits");
        codar_router::verify::check_coupling(&blended.circuit, &device).expect("coupling");
        codar_router::verify::check_equivalence(&entry.circuit, &blended).expect("equivalence");
    }

    /// `None` initial mapping routes from the variant's own placement.
    #[test]
    fn own_placement_path_verifies() {
        let device = Device::ibm_q20_tokyo();
        let entry = &full_suite()[2];
        let mut worker = RouteWorker::new();
        let variant = RouterVariant::of_kind(RouterKind::Codar);
        let routed = worker
            .route(&entry.circuit, &device, &variant, None, None)
            .expect("fits");
        codar_router::verify::check_coupling(&routed.circuit, &device).expect("coupling");
        codar_router::verify::check_equivalence(&entry.circuit, &routed).expect("equivalence");
    }

    /// The portfolio winner is the member with the best selection
    /// score, the tie-break is member-order-independent, and scratch
    /// reuse across members never changes the outcome.
    #[test]
    fn portfolio_selects_best_member_deterministically() {
        use crate::job::DEFAULT_PORTFOLIO_ALPHA;
        use codar_arch::{selection_score, CalibrationSnapshot, FidelityModel};
        let device = Device::ibm_q20_tokyo();
        let snapshot = CalibrationSnapshot::synthetic(&device, 9).drifted(2);
        let model = FidelityModel::from_snapshot(&snapshot);
        let members = RouterVariant::portfolio_members(DEFAULT_PORTFOLIO_ALPHA);
        for entry in full_suite().iter().take(5) {
            let mut worker = RouteWorker::new();
            let initial = worker.initial_mapping(&entry.circuit, &device, 0);
            let outcome = worker
                .route_portfolio(
                    &entry.circuit,
                    &device,
                    &members,
                    Some(&initial),
                    Some(&snapshot),
                    Some(&model),
                )
                .expect("fits");
            assert_eq!(outcome.evaluated, members.len(), "{}", entry.name);
            // The winner's score is the max over every member routed
            // independently with a fresh worker.
            let mut best_score = f64::NEG_INFINITY;
            for member in &members {
                let mut fresh = RouteWorker::new();
                let routed = fresh
                    .route(
                        &entry.circuit,
                        &device,
                        member,
                        Some(initial.clone()),
                        Some(&snapshot),
                    )
                    .expect("fits");
                let score = selection_score(
                    Some(&model),
                    &routed.circuit,
                    device.durations(),
                    routed.weighted_depth,
                    routed.swaps_inserted as u64,
                );
                best_score = best_score.max(score);
            }
            assert_eq!(
                outcome.score.to_bits(),
                best_score.to_bits(),
                "{}: portfolio must pick the max-score member",
                entry.name
            );
            // Member-order independence: reversing the list picks the
            // identical winner (label and routed bytes).
            let mut reversed_members = members.clone();
            reversed_members.reverse();
            let reversed = worker
                .route_portfolio(
                    &entry.circuit,
                    &device,
                    &reversed_members,
                    Some(&initial),
                    Some(&snapshot),
                    Some(&model),
                )
                .expect("fits");
            assert_eq!(outcome.chosen, reversed.chosen, "{}", entry.name);
            assert_eq!(
                outcome.routed.circuit.gates(),
                reversed.routed.circuit.gates(),
                "{}",
                entry.name
            );
            // The winner is valid and equivalent.
            check_coupling(&outcome.routed.circuit, &device).expect("coupling");
            check_equivalence(&entry.circuit, &outcome.routed).expect("equivalence");
        }
    }

    /// Without a model the fallback score prefers lower weighted depth
    /// + swaps; nested portfolio members are skipped, and an empty
    /// member list is an error, not a panic.
    #[test]
    fn portfolio_fallback_and_edge_cases() {
        let device = Device::ibm_q20_tokyo();
        let entry = &full_suite()[4];
        let mut worker = RouteWorker::new();
        let initial = worker.initial_mapping(&entry.circuit, &device, 0);
        let members = RouterVariant::portfolio_members(0.5);
        let outcome = worker
            .route_portfolio(
                &entry.circuit,
                &device,
                &members,
                Some(&initial),
                None,
                None,
            )
            .expect("fits");
        // Fallback score = 1 / (1 + weighted_depth + swaps), so the
        // winner minimizes weighted_depth + swaps.
        let winner_cost = outcome.routed.weighted_depth + outcome.routed.swaps_inserted as u64;
        for member in &members {
            let routed = worker
                .route(&entry.circuit, &device, member, Some(initial.clone()), None)
                .expect("fits");
            assert!(
                winner_cost <= routed.weighted_depth + routed.swaps_inserted as u64,
                "{} beat the portfolio winner",
                member.label
            );
        }
        // A nested portfolio member is skipped, not recursed into.
        let mut nested = vec![RouterVariant::of_kind(RouterKind::Portfolio)];
        nested.push(RouterVariant::of_kind(RouterKind::Codar));
        let outcome = worker
            .route_portfolio(&entry.circuit, &device, &nested, Some(&initial), None, None)
            .expect("the codar member still routes");
        assert_eq!(outcome.chosen, "codar");
        assert_eq!(outcome.evaluated, 1);
        // No members at all: an error, not a panic.
        assert!(worker
            .route_portfolio(&entry.circuit, &device, &[], Some(&initial), None, None)
            .is_err());
        // The generic dispatch path delegates and returns the winner.
        let auto = RouterVariant::of_kind(RouterKind::Portfolio);
        let via_route = worker
            .route(&entry.circuit, &device, &auto, Some(initial.clone()), None)
            .expect("fits");
        check_coupling(&via_route.circuit, &device).expect("coupling");
    }

    /// One worker reused across many calls gives the same results as a
    /// fresh worker per call.
    #[test]
    fn reuse_across_calls_is_invisible() {
        let device = Device::ibm_q16_melbourne();
        let mut reused = RouteWorker::new();
        for entry in full_suite().iter().take(6) {
            for kind in [RouterKind::Codar, RouterKind::Sabre] {
                let variant = RouterVariant::of_kind(kind);
                let shared_initial = reused.initial_mapping(&entry.circuit, &device, 0);
                let a = reused
                    .route(
                        &entry.circuit,
                        &device,
                        &variant,
                        Some(shared_initial),
                        None,
                    )
                    .expect("fits");
                let mut fresh = RouteWorker::new();
                let fresh_initial = fresh.initial_mapping(&entry.circuit, &device, 0);
                let b = fresh
                    .route(&entry.circuit, &device, &variant, Some(fresh_initial), None)
                    .expect("fits");
                assert_eq!(a.circuit.gates(), b.circuit.gates(), "{}", entry.name);
                assert_eq!(a.weighted_depth, b.weighted_depth, "{}", entry.name);
            }
        }
    }
}
