//! Recursive-descent parser for OpenQASM 2.0.
//!
//! Grammar implemented (after Cross et al., "Open Quantum Assembly
//! Language", arXiv:1707.03429):
//!
//! ```text
//! program   := "OPENQASM" real ";" { statement }
//! statement := decl | gatedef | opaque | qop | "if" "(" id "==" int ")" qop
//!            | "barrier" anylist ";" | "include" string ";"
//! qop       := uop | "measure" arg "->" arg ";" | "reset" arg ";"
//! uop       := "U" "(" explist ")" arg ";" | "CX" arg "," arg ";"
//!            | id [ "(" explist ")" ] anylist ";"
//! exp       := additive with "+,-,*,/,^", unary minus, functions, pi
//! ```

use crate::ast::*;
use crate::error::{QasmError, QasmErrorKind};
use crate::token::{Pos, Token, TokenKind};

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(tokens: &'a [Token]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> Pos {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.pos)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QasmError {
        QasmError::at(QasmErrorKind::Parse, self.here(), message)
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), QasmError> {
        match self.peek() {
            Some(k) if k == kind => {
                self.bump();
                Ok(())
            }
            Some(k) => Err(self.error(format!("expected `{kind}`, found `{k}`"))),
            None => Err(self.error(format!("expected `{kind}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, QasmError> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            Some(k) => Err(self.error(format!("expected identifier, found `{k}`"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn expect_int(&mut self) -> Result<u64, QasmError> {
        match self.peek() {
            Some(TokenKind::Int(x)) => {
                let x = *x;
                self.bump();
                Ok(x)
            }
            Some(k) => Err(self.error(format!("expected integer, found `{k}`"))),
            None => Err(self.error("expected integer, found end of input")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, QasmError> {
        let mut program = Program::new();
        // The version header is conventionally required; we accept programs
        // without it for convenience with benchmark fragments.
        if self.peek() == Some(&TokenKind::OpenQasm) {
            self.bump();
            let version = match self.peek() {
                Some(TokenKind::Real(x)) => {
                    let x = *x;
                    self.bump();
                    (x.trunc() as u32, ((x.fract() * 10.0).round()) as u32)
                }
                Some(TokenKind::Int(x)) => {
                    let x = *x as u32;
                    self.bump();
                    (x, 0)
                }
                _ => return Err(self.error("expected version number after OPENQASM")),
            };
            if version.0 != 2 {
                return Err(self.error(format!(
                    "unsupported OpenQASM version {}.{} (only 2.0 is supported)",
                    version.0, version.1
                )));
            }
            program.version = version;
            self.expect(&TokenKind::Semicolon)?;
        }
        while self.peek().is_some() {
            program.statements.push(self.parse_statement()?);
        }
        Ok(program)
    }

    fn parse_statement(&mut self) -> Result<Statement, QasmError> {
        match self.peek() {
            Some(TokenKind::Include) => {
                self.bump();
                let file = match self.peek() {
                    Some(TokenKind::Str(s)) => {
                        let s = s.clone();
                        self.bump();
                        s
                    }
                    _ => return Err(self.error("expected string after `include`")),
                };
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Include(file))
            }
            Some(TokenKind::QReg) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let size = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::QReg { name, size })
            }
            Some(TokenKind::CReg) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let size = self.expect_int()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::CReg { name, size })
            }
            Some(TokenKind::Gate) => self.parse_gatedef(),
            Some(TokenKind::Opaque) => {
                self.bump();
                let name = self.expect_ident()?;
                let params = if self.peek() == Some(&TokenKind::LParen) {
                    self.bump();
                    let p = self.parse_ident_list()?;
                    self.expect(&TokenKind::RParen)?;
                    p
                } else {
                    Vec::new()
                };
                let qargs = self.parse_ident_list()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Opaque {
                    name,
                    params,
                    qargs,
                })
            }
            Some(TokenKind::If) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let creg = self.expect_ident()?;
                self.expect(&TokenKind::EqEq)?;
                let value = self.expect_int()?;
                self.expect(&TokenKind::RParen)?;
                let then = self.parse_statement()?;
                match &then {
                    Statement::GateCall(_) | Statement::Measure { .. } | Statement::Reset(_) => {}
                    _ => return Err(self.error("`if` may only guard a quantum operation")),
                }
                Ok(Statement::If {
                    creg,
                    value,
                    then: Box::new(then),
                })
            }
            Some(TokenKind::Measure) => {
                self.bump();
                let src = self.parse_argument()?;
                self.expect(&TokenKind::Arrow)?;
                let dst = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Measure { src, dst })
            }
            Some(TokenKind::Reset) => {
                self.bump();
                let arg = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Reset(arg))
            }
            Some(TokenKind::Barrier) => {
                self.bump();
                let args = self.parse_argument_list()?;
                self.expect(&TokenKind::Semicolon)?;
                Ok(Statement::Barrier(args))
            }
            Some(TokenKind::U) | Some(TokenKind::Cx) | Some(TokenKind::Ident(_)) => {
                let call = self.parse_gate_call()?;
                Ok(Statement::GateCall(call))
            }
            Some(k) => Err(self.error(format!("unexpected token `{k}` at statement start"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_gatedef(&mut self) -> Result<Statement, QasmError> {
        self.expect(&TokenKind::Gate)?;
        let name = self.expect_ident()?;
        let params = if self.peek() == Some(&TokenKind::LParen) {
            self.bump();
            let p = if self.peek() == Some(&TokenKind::RParen) {
                Vec::new()
            } else {
                self.parse_ident_list()?
            };
            self.expect(&TokenKind::RParen)?;
            p
        } else {
            Vec::new()
        };
        let qargs = self.parse_ident_list()?;
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            match self.peek() {
                Some(TokenKind::Barrier) => {
                    self.bump();
                    let args = self.parse_argument_list()?;
                    self.expect(&TokenKind::Semicolon)?;
                    body.push(GateBodyStmt::Barrier(args));
                }
                Some(TokenKind::U) | Some(TokenKind::Cx) | Some(TokenKind::Ident(_)) => {
                    body.push(GateBodyStmt::Call(self.parse_gate_call()?));
                }
                Some(k) => return Err(self.error(format!("unexpected `{k}` inside gate body"))),
                None => return Err(self.error("unterminated gate body")),
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(Statement::GateDef(GateDef {
            name,
            params,
            qargs,
            body,
        }))
    }

    fn parse_gate_call(&mut self) -> Result<GateCall, QasmError> {
        let name = match self.peek() {
            Some(TokenKind::U) => {
                self.bump();
                "U".to_string()
            }
            Some(TokenKind::Cx) => {
                self.bump();
                "CX".to_string()
            }
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.bump();
                s
            }
            _ => return Err(self.error("expected gate name")),
        };
        let params = if self.peek() == Some(&TokenKind::LParen) {
            self.bump();
            let mut exprs = Vec::new();
            if self.peek() != Some(&TokenKind::RParen) {
                exprs.push(self.parse_expr()?);
                while self.peek() == Some(&TokenKind::Comma) {
                    self.bump();
                    exprs.push(self.parse_expr()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
            exprs
        } else {
            Vec::new()
        };
        let args = self.parse_argument_list()?;
        self.expect(&TokenKind::Semicolon)?;
        Ok(GateCall { name, params, args })
    }

    fn parse_ident_list(&mut self) -> Result<Vec<String>, QasmError> {
        let mut idents = vec![self.expect_ident()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.bump();
            idents.push(self.expect_ident()?);
        }
        Ok(idents)
    }

    fn parse_argument(&mut self) -> Result<Argument, QasmError> {
        let register = self.expect_ident()?;
        if self.peek() == Some(&TokenKind::LBracket) {
            self.bump();
            let index = self.expect_int()?;
            self.expect(&TokenKind::RBracket)?;
            Ok(Argument::indexed(register, index))
        } else {
            Ok(Argument::register(register))
        }
    }

    fn parse_argument_list(&mut self) -> Result<Vec<Argument>, QasmError> {
        let mut args = vec![self.parse_argument()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.bump();
            args.push(self.parse_argument()?);
        }
        Ok(args)
    }

    // Expression grammar: additive > multiplicative > power > unary > atom.
    fn parse_expr(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinaryOp::Add,
                Some(TokenKind::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinaryOp::Mul,
                Some(TokenKind::Slash) => BinaryOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_power()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_power(&mut self) -> Result<Expr, QasmError> {
        let base = self.parse_unary()?;
        if self.peek() == Some(&TokenKind::Caret) {
            self.bump();
            // Right associative.
            let exp = self.parse_power()?;
            Ok(Expr::Binary(BinaryOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, QasmError> {
        if self.peek() == Some(&TokenKind::Minus) {
            self.bump();
            Ok(Expr::Neg(Box::new(self.parse_unary()?)))
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, QasmError> {
        match self.peek() {
            Some(TokenKind::Real(x)) => {
                let x = *x;
                self.bump();
                Ok(Expr::Real(x))
            }
            Some(TokenKind::Int(x)) => {
                let x = *x;
                self.bump();
                Ok(Expr::Int(x))
            }
            Some(TokenKind::Pi) => {
                self.bump();
                Ok(Expr::Pi)
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(name)) => {
                let name = name.clone();
                self.bump();
                if self.peek() == Some(&TokenKind::LParen) {
                    let Some(func) = UnaryFn::from_name(&name) else {
                        return Err(self.error(format!("unknown function `{name}`")));
                    };
                    self.bump();
                    let arg = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(func, Box::new(arg)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            Some(k) => Err(self.error(format!("expected expression, found `{k}`"))),
            None => Err(self.error("expected expression, found end of input")),
        }
    }
}

/// Parses a token stream produced by [`crate::lexer::lex`] into a
/// [`Program`].
///
/// # Errors
///
/// Returns a [`QasmError`] with the position of the first syntax error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let tokens = codar_qasm::lexer::lex("OPENQASM 2.0; qreg q[2]; CX q[0], q[1];")?;
/// let program = codar_qasm::parser::parse_tokens(&tokens)?;
/// assert_eq!(program.statements.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_tokens(tokens: &[Token]) -> Result<Program, QasmError> {
    Parser::new(tokens).parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Result<Program, QasmError> {
        parse_tokens(&lex(src)?)
    }

    #[test]
    fn parses_minimal_program() {
        let p = parse("OPENQASM 2.0; qreg q[3];").unwrap();
        assert_eq!(p.version, (2, 0));
        assert_eq!(
            p.statements,
            vec![Statement::QReg {
                name: "q".into(),
                size: 3
            }]
        );
    }

    #[test]
    fn rejects_wrong_version() {
        assert!(parse("OPENQASM 3.0; qreg q[1];").is_err());
    }

    #[test]
    fn parses_builtin_gates() {
        let p = parse("U(0, pi/2, -pi) q[0]; CX q[0], q[1];").unwrap();
        match &p.statements[0] {
            Statement::GateCall(c) => {
                assert_eq!(c.name, "U");
                assert_eq!(c.params.len(), 3);
                assert_eq!(c.args, vec![Argument::indexed("q", 0)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.statements[1] {
            Statement::GateCall(c) => {
                assert_eq!(c.name, "CX");
                assert_eq!(c.args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_gate_definition() {
        let src = "gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }";
        let p = parse(src).unwrap();
        match &p.statements[0] {
            Statement::GateDef(def) => {
                assert_eq!(def.name, "majority");
                assert!(def.params.is_empty());
                assert_eq!(def.qargs, vec!["a", "b", "c"]);
                assert_eq!(def.body.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_parameterized_gate_definition() {
        let src = "gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }";
        let p = parse(src).unwrap();
        match &p.statements[0] {
            Statement::GateDef(def) => {
                assert_eq!(def.params, vec!["theta"]);
                match &def.body[1] {
                    GateBodyStmt::Call(c) => {
                        assert_eq!(c.params, vec![Expr::Param("theta".into())]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_measure_and_reset() {
        let p = parse("measure q[0] -> c[0]; reset q[1]; measure q -> c;").unwrap();
        assert!(matches!(p.statements[0], Statement::Measure { .. }));
        assert!(matches!(p.statements[1], Statement::Reset(_)));
        match &p.statements[2] {
            Statement::Measure { src, dst } => {
                assert_eq!(src.index, None);
                assert_eq!(dst.index, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_barrier() {
        let p = parse("barrier q[0], q[1], r;").unwrap();
        match &p.statements[0] {
            Statement::Barrier(args) => assert_eq!(args.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_statement() {
        let p = parse("if (c == 3) x q[0];").unwrap();
        match &p.statements[0] {
            Statement::If { creg, value, then } => {
                assert_eq!(creg, "c");
                assert_eq!(*value, 3);
                assert!(matches!(**then, Statement::GateCall(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_if_guarding_declaration() {
        assert!(parse("if (c == 1) qreg q[1];").is_err());
    }

    #[test]
    fn expression_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let p = parse("u1(1 + 2 * 3) q[0];").unwrap();
        match &p.statements[0] {
            Statement::GateCall(c) => match &c.params[0] {
                Expr::Binary(BinaryOp::Add, lhs, _) => {
                    assert_eq!(**lhs, Expr::Int(1));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_right_associative() {
        let p = parse("u1(2 ^ 3 ^ 2) q[0];").unwrap();
        match &p.statements[0] {
            Statement::GateCall(c) => match &c.params[0] {
                Expr::Binary(BinaryOp::Pow, _, rhs) => {
                    assert!(matches!(**rhs, Expr::Binary(BinaryOp::Pow, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_call_expression() {
        let p = parse("u1(sin(pi/4)) q[0];").unwrap();
        match &p.statements[0] {
            Statement::GateCall(c) => {
                assert!(matches!(c.params[0], Expr::Call(UnaryFn::Sin, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_opaque_declaration() {
        let p = parse("opaque custom(alpha) a, b;").unwrap();
        match &p.statements[0] {
            Statement::Opaque {
                name,
                params,
                qargs,
            } => {
                assert_eq!(name, "custom");
                assert_eq!(params, &vec!["alpha".to_string()]);
                assert_eq!(qargs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_mentions_position() {
        let err = parse("qreg q[;").unwrap_err();
        assert!(err.pos().is_some());
        assert!(err.to_string().contains("expected integer"));
    }

    #[test]
    fn parses_include() {
        let p = parse("include \"qelib1.inc\";").unwrap();
        assert_eq!(p.statements[0], Statement::Include("qelib1.inc".into()));
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("qreg q[2]").is_err());
    }

    #[test]
    fn gate_without_params_no_parens() {
        let p = parse("h q[0];").unwrap();
        match &p.statements[0] {
            Statement::GateCall(c) => {
                assert_eq!(c.name, "h");
                assert!(c.params.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gate_with_empty_parens() {
        let p = parse("gate nop() a { }").unwrap();
        match &p.statements[0] {
            Statement::GateDef(def) => assert!(def.params.is_empty() && def.body.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
