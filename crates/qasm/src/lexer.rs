//! Hand-written lexer for OpenQASM 2.0.
//!
//! Supports `//` line comments, real and integer literals, string literals
//! (for `include`), all punctuation used by the language, and distinguishes
//! keywords from identifiers. Every token carries its source [`Pos`].

use crate::error::{QasmError, QasmErrorKind};
use crate::token::{Pos, Token, TokenKind};

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Possible `//` comment; a lone `/` is the division
                    // operator and must be left for the token loop.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(c) = self.bump() {
                            if c == '\n' {
                                break;
                            }
                        }
                    } else {
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn lex_number(&mut self, start: Pos) -> Result<Token, QasmError> {
        let mut text = String::new();
        let mut is_real = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' {
                is_real = true;
                text.push(c);
                self.bump();
            } else if c == 'e' || c == 'E' {
                // Exponent part; may be followed by a sign.
                is_real = true;
                text.push(c);
                self.bump();
                if let Some(s) = self.peek() {
                    if s == '+' || s == '-' {
                        text.push(s);
                        self.bump();
                    }
                }
            } else {
                break;
            }
        }
        if is_real {
            text.parse::<f64>()
                .map(|x| Token::new(TokenKind::Real(x), start))
                .map_err(|_| {
                    QasmError::at(
                        QasmErrorKind::Lex,
                        start,
                        format!("invalid real literal `{text}`"),
                    )
                })
        } else {
            text.parse::<u64>()
                .map(|x| Token::new(TokenKind::Int(x), start))
                .map_err(|_| {
                    QasmError::at(
                        QasmErrorKind::Lex,
                        start,
                        format!("invalid integer literal `{text}`"),
                    )
                })
        }
    }

    fn lex_word(&mut self, start: Pos) -> Token {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = match text.as_str() {
            "OPENQASM" => TokenKind::OpenQasm,
            "include" => TokenKind::Include,
            "qreg" => TokenKind::QReg,
            "creg" => TokenKind::CReg,
            "gate" => TokenKind::Gate,
            "opaque" => TokenKind::Opaque,
            "measure" => TokenKind::Measure,
            "reset" => TokenKind::Reset,
            "barrier" => TokenKind::Barrier,
            "if" => TokenKind::If,
            "U" => TokenKind::U,
            "CX" => TokenKind::Cx,
            "pi" => TokenKind::Pi,
            _ => TokenKind::Ident(text),
        };
        Token::new(kind, start)
    }

    fn lex_string(&mut self, start: Pos) -> Result<Token, QasmError> {
        self.bump(); // consume opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(Token::new(TokenKind::Str(text), start)),
                Some(c) => text.push(c),
                None => {
                    return Err(QasmError::at(
                        QasmErrorKind::Lex,
                        start,
                        "unterminated string literal",
                    ))
                }
            }
        }
    }
}

/// Tokenizes OpenQASM 2.0 source.
///
/// # Errors
///
/// Returns a [`QasmError`] on characters outside the language, malformed
/// numeric literals or unterminated strings.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let tokens = codar_qasm::lexer::lex("qreg q[3]; // my register")?;
/// assert_eq!(tokens.len(), 6); // qreg, q, [, 3, ], ;
/// # Ok(())
/// # }
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, QasmError> {
    let mut lx = Lexer::new(source);
    let mut tokens = Vec::new();
    loop {
        lx.skip_trivia();
        let start = lx.pos();
        let Some(c) = lx.peek() else { break };
        match c {
            '0'..='9' | '.' => tokens.push(lx.lex_number(start)?),
            'a'..='z' | 'A'..='Z' | '_' => tokens.push(lx.lex_word(start)),
            '"' => tokens.push(lx.lex_string(start)?),
            ';' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Semicolon, start));
            }
            ',' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Comma, start));
            }
            '(' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::LParen, start));
            }
            ')' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::RParen, start));
            }
            '[' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::LBracket, start));
            }
            ']' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::RBracket, start));
            }
            '{' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::LBrace, start));
            }
            '}' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::RBrace, start));
            }
            '+' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Plus, start));
            }
            '*' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Star, start));
            }
            '/' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Slash, start));
            }
            '^' => {
                lx.bump();
                tokens.push(Token::new(TokenKind::Caret, start));
            }
            '-' => {
                lx.bump();
                if lx.peek() == Some('>') {
                    lx.bump();
                    tokens.push(Token::new(TokenKind::Arrow, start));
                } else {
                    tokens.push(Token::new(TokenKind::Minus, start));
                }
            }
            '=' => {
                lx.bump();
                if lx.peek() == Some('=') {
                    lx.bump();
                    tokens.push(Token::new(TokenKind::EqEq, start));
                } else {
                    return Err(QasmError::at(
                        QasmErrorKind::Lex,
                        start,
                        "expected `==` (single `=` is not valid OpenQASM)",
                    ));
                }
            }
            other => {
                return Err(QasmError::at(
                    QasmErrorKind::Lex,
                    start,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_header() {
        assert_eq!(
            kinds("OPENQASM 2.0;"),
            vec![
                TokenKind::OpenQasm,
                TokenKind::Real(2.0),
                TokenKind::Semicolon
            ]
        );
    }

    #[test]
    fn lexes_register_declaration() {
        assert_eq!(
            kinds("qreg q[4];"),
            vec![
                TokenKind::QReg,
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(4),
                TokenKind::RBracket,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_minus() {
        assert_eq!(
            kinds("measure q -> c; -1"),
            vec![
                TokenKind::Measure,
                TokenKind::Ident("q".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Semicolon,
                TokenKind::Minus,
                TokenKind::Int(1),
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("pi // comment with symbols !@#\npi"),
            vec![TokenKind::Pi, TokenKind::Pi]
        );
    }

    #[test]
    fn lexes_real_with_exponent() {
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Real(1.5e-3)]);
        assert_eq!(kinds("2E4"), vec![TokenKind::Real(2e4)]);
    }

    #[test]
    fn lexes_string_literal() {
        assert_eq!(
            kinds("include \"qelib1.inc\";"),
            vec![
                TokenKind::Include,
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn distinguishes_keywords_from_identifiers() {
        assert_eq!(
            kinds("gate gates U u"),
            vec![
                TokenKind::Gate,
                TokenKind::Ident("gates".into()),
                TokenKind::U,
                TokenKind::Ident("u".into()),
            ]
        );
    }

    #[test]
    fn rejects_unexpected_character() {
        let err = lex("qreg q[1]; @").unwrap_err();
        assert_eq!(*err.kind(), QasmErrorKind::Lex);
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("include \"oops").is_err());
    }

    #[test]
    fn rejects_single_equals() {
        assert!(lex("if (c = 1)").is_err());
    }

    #[test]
    fn tracks_positions_across_lines() {
        let toks = lex("pi\n  pi").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn division_operator_not_comment() {
        assert_eq!(
            kinds("pi/2"),
            vec![TokenKind::Pi, TokenKind::Slash, TokenKind::Int(2)]
        );
    }

    #[test]
    fn empty_source() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t ").unwrap().is_empty());
    }
}
