//! OpenQASM 2.0 frontend for the CODAR reproduction.
//!
//! This crate provides a complete, dependency-free OpenQASM 2.0 toolchain:
//!
//! * [`lexer`] — a hand-written lexer producing spanned [`token::Token`]s,
//! * [`parser`] — a recursive-descent parser producing an [`ast::Program`],
//! * [`semantic`] — semantic analysis that resolves registers, expands
//!   user-defined composite gates and broadcasts register operands, yielding
//!   a flat sequence of primitive operations ([`semantic::FlatProgram`]),
//! * [`writer`] — pretty-printing of programs back to OpenQASM source.
//!
//! The standard `qelib1.inc` gate library ships embedded (see
//! [`semantic::QELIB1`]) so programs that `include "qelib1.inc";` parse
//! without any filesystem access.
//!
//! # Examples
//!
//! ```
//! use codar_qasm::parse_and_flatten;
//!
//! # fn main() -> Result<(), codar_qasm::QasmError> {
//! let src = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     creg c[2];
//!     h q[0];
//!     cx q[0], q[1];
//!     measure q -> c;
//! "#;
//! let flat = parse_and_flatten(src)?;
//! assert_eq!(flat.num_qubits, 2);
//! assert_eq!(flat.ops.len(), 4); // h, cx, measure, measure
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod error;
pub mod generate;
pub mod lexer;
pub mod parser;
pub mod semantic;
pub mod token;
pub mod writer;

pub use ast::Program;
pub use error::{QasmError, QasmErrorKind};
pub use semantic::{FlatOp, FlatProgram, PrimitiveGate};

/// Parses OpenQASM 2.0 source into an AST.
///
/// # Errors
///
/// Returns a [`QasmError`] describing the first lexical or syntactic
/// problem encountered, with line/column information.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let program = codar_qasm::parse("OPENQASM 2.0; qreg q[1]; U(0,0,0) q[0];")?;
/// assert_eq!(program.statements.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Program, QasmError> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens)
}

/// Parses OpenQASM 2.0 source and lowers it to a flat primitive-operation
/// sequence in a single call.
///
/// This is the entry point used by the rest of the reproduction: the
/// returned [`FlatProgram`] indexes qubits by a single global numbering
/// (quantum registers concatenated in declaration order).
///
/// # Errors
///
/// Returns a [`QasmError`] on lexical, syntactic or semantic problems
/// (undeclared registers, out-of-range indices, arity mismatches,
/// recursive gate definitions, …).
pub fn parse_and_flatten(source: &str) -> Result<FlatProgram, QasmError> {
    let program = parse(source)?;
    semantic::flatten(&program)
}
