//! Abstract syntax tree for OpenQASM 2.0 programs.

use std::fmt;

/// A parameter expression appearing in a gate application or definition.
///
/// Expressions are evaluated to `f64` during semantic analysis; inside gate
/// bodies they may refer to the formal parameters of the enclosing `gate`
/// definition by name.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A real literal such as `0.5`.
    Real(f64),
    /// An integer literal such as `3`.
    Int(u64),
    /// The constant `pi`.
    Pi,
    /// A reference to a formal gate parameter.
    Param(String),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Built-in unary function call (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
    Call(UnaryFn, Box<Expr>),
}

/// Binary arithmetic operators usable in parameter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/`.
    Div,
    /// Exponentiation `^` (right associative).
    Pow,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryOp::Add => write!(f, "+"),
            BinaryOp::Sub => write!(f, "-"),
            BinaryOp::Mul => write!(f, "*"),
            BinaryOp::Div => write!(f, "/"),
            BinaryOp::Pow => write!(f, "^"),
        }
    }
}

/// Built-in unary functions of the OpenQASM expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryFn {
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `exp`
    Exp,
    /// `ln`
    Ln,
    /// `sqrt`
    Sqrt,
}

impl UnaryFn {
    /// Looks up a function by its OpenQASM name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sin" => Some(UnaryFn::Sin),
            "cos" => Some(UnaryFn::Cos),
            "tan" => Some(UnaryFn::Tan),
            "exp" => Some(UnaryFn::Exp),
            "ln" => Some(UnaryFn::Ln),
            "sqrt" => Some(UnaryFn::Sqrt),
            _ => None,
        }
    }

    /// The OpenQASM surface name of this function.
    pub fn name(self) -> &'static str {
        match self {
            UnaryFn::Sin => "sin",
            UnaryFn::Cos => "cos",
            UnaryFn::Tan => "tan",
            UnaryFn::Exp => "exp",
            UnaryFn::Ln => "ln",
            UnaryFn::Sqrt => "sqrt",
        }
    }

    /// Applies this function to a value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryFn::Sin => x.sin(),
            UnaryFn::Cos => x.cos(),
            UnaryFn::Tan => x.tan(),
            UnaryFn::Exp => x.exp(),
            UnaryFn::Ln => x.ln(),
            UnaryFn::Sqrt => x.sqrt(),
        }
    }
}

impl fmt::Display for UnaryFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A reference to a whole register (`q`) or a single element (`q[2]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Argument {
    /// The register name.
    pub register: String,
    /// The element index, or `None` for whole-register broadcast.
    pub index: Option<u64>,
}

impl Argument {
    /// A whole-register reference `name`.
    pub fn register(name: impl Into<String>) -> Self {
        Argument {
            register: name.into(),
            index: None,
        }
    }

    /// A single-element reference `name[index]`.
    pub fn indexed(name: impl Into<String>, index: u64) -> Self {
        Argument {
            register: name.into(),
            index: Some(index),
        }
    }
}

impl fmt::Display for Argument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{}]", self.register, i),
            None => write!(f, "{}", self.register),
        }
    }
}

/// A quantum operation as written in the source: gate name, parameter
/// expressions and operand list.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCall {
    /// Gate name (`U` and `CX` are spelled exactly so).
    pub name: String,
    /// Parameter expressions (empty when the gate takes no parameters).
    pub params: Vec<Expr>,
    /// Quantum operands.
    pub args: Vec<Argument>,
}

/// A statement inside a `gate` body: either a gate call or a `barrier`.
#[derive(Debug, Clone, PartialEq)]
pub enum GateBodyStmt {
    /// Application of a gate to formal qubit arguments.
    Call(GateCall),
    /// `barrier` over formal arguments.
    Barrier(Vec<Argument>),
}

/// A user (or library) `gate` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDef {
    /// The gate's name.
    pub name: String,
    /// Formal parameter names.
    pub params: Vec<String>,
    /// Formal qubit argument names.
    pub qargs: Vec<String>,
    /// The body, in terms of the formal names.
    pub body: Vec<GateBodyStmt>,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `qreg name[size];`
    QReg {
        /// Register name.
        name: String,
        /// Number of qubits.
        size: u64,
    },
    /// `creg name[size];`
    CReg {
        /// Register name.
        name: String,
        /// Number of bits.
        size: u64,
    },
    /// `include "file";` — recorded for fidelity; `qelib1.inc` is resolved
    /// internally during semantic analysis.
    Include(String),
    /// A gate definition.
    GateDef(GateDef),
    /// `opaque name(params) qargs;`
    Opaque {
        /// Gate name.
        name: String,
        /// Formal parameter names.
        params: Vec<String>,
        /// Formal qubit argument names.
        qargs: Vec<String>,
    },
    /// Application of a gate at the top level.
    GateCall(GateCall),
    /// `measure src -> dst;`
    Measure {
        /// Quantum source.
        src: Argument,
        /// Classical destination.
        dst: Argument,
    },
    /// `reset arg;`
    Reset(Argument),
    /// `barrier args;`
    Barrier(Vec<Argument>),
    /// `if (creg == value) stmt;`
    If {
        /// Classical register compared.
        creg: String,
        /// Comparison value.
        value: u64,
        /// The guarded operation.
        then: Box<Statement>,
    },
}

/// A parsed OpenQASM 2.0 program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Declared language version (major, minor); `(2, 0)` for OpenQASM 2.0.
    pub version: (u32, u32),
    /// Top-level statements in source order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// Creates an empty OpenQASM 2.0 program.
    pub fn new() -> Self {
        Program {
            version: (2, 0),
            statements: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_fn_round_trip() {
        for f in [
            UnaryFn::Sin,
            UnaryFn::Cos,
            UnaryFn::Tan,
            UnaryFn::Exp,
            UnaryFn::Ln,
            UnaryFn::Sqrt,
        ] {
            assert_eq!(UnaryFn::from_name(f.name()), Some(f));
        }
        assert_eq!(UnaryFn::from_name("sinh"), None);
    }

    #[test]
    fn unary_fn_apply() {
        assert!((UnaryFn::Sqrt.apply(4.0) - 2.0).abs() < 1e-12);
        assert!((UnaryFn::Ln.apply(1.0)).abs() < 1e-12);
    }

    #[test]
    fn argument_display() {
        assert_eq!(Argument::register("q").to_string(), "q");
        assert_eq!(Argument::indexed("q", 3).to_string(), "q[3]");
    }

    #[test]
    fn program_default_version() {
        assert_eq!(Program::new().version, (2, 0));
    }
}
