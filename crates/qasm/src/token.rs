//! Token definitions for the OpenQASM 2.0 lexer.

use std::fmt;

/// A source position (1-based line and column), attached to every token
/// and error for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from 1-based line and column numbers.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Keywords.
    /// `OPENQASM` version header keyword.
    OpenQasm,
    /// `include` directive keyword.
    Include,
    /// `qreg` quantum register declaration keyword.
    QReg,
    /// `creg` classical register declaration keyword.
    CReg,
    /// `gate` composite gate definition keyword.
    Gate,
    /// `opaque` gate declaration keyword.
    Opaque,
    /// `measure` statement keyword.
    Measure,
    /// `reset` statement keyword.
    Reset,
    /// `barrier` statement keyword.
    Barrier,
    /// `if` conditional keyword.
    If,
    /// Built-in single-qubit unitary `U`.
    U,
    /// Built-in controlled-NOT `CX`.
    Cx,
    /// The constant `pi`.
    Pi,

    // Literals and identifiers.
    /// Identifier (gate or register name).
    Ident(String),
    /// Real number literal.
    Real(f64),
    /// Non-negative integer literal.
    Int(u64),
    /// String literal (only used by `include`).
    Str(String),

    // Punctuation.
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::OpenQasm => write!(f, "OPENQASM"),
            TokenKind::Include => write!(f, "include"),
            TokenKind::QReg => write!(f, "qreg"),
            TokenKind::CReg => write!(f, "creg"),
            TokenKind::Gate => write!(f, "gate"),
            TokenKind::Opaque => write!(f, "opaque"),
            TokenKind::Measure => write!(f, "measure"),
            TokenKind::Reset => write!(f, "reset"),
            TokenKind::Barrier => write!(f, "barrier"),
            TokenKind::If => write!(f, "if"),
            TokenKind::U => write!(f, "U"),
            TokenKind::Cx => write!(f, "CX"),
            TokenKind::Pi => write!(f, "pi"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Real(x) => write!(f, "{x}"),
            TokenKind::Int(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Caret => write!(f, "^"),
        }
    }
}

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source this token begins.
    pub pos: Pos,
}

impl Token {
    /// Creates a token of `kind` at position `pos`.
    pub fn new(kind: TokenKind, pos: Pos) -> Self {
        Token { kind, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn token_kind_display_round_trip_punct() {
        for (k, s) in [
            (TokenKind::Semicolon, ";"),
            (TokenKind::Arrow, "->"),
            (TokenKind::EqEq, "=="),
            (TokenKind::Caret, "^"),
        ] {
            assert_eq!(k.to_string(), s);
        }
    }

    #[test]
    fn token_carries_position() {
        let t = Token::new(TokenKind::Pi, Pos::new(1, 5));
        assert_eq!(t.pos.col, 5);
        assert_eq!(t.kind, TokenKind::Pi);
    }
}
