//! Error types for the OpenQASM frontend.

use crate::token::Pos;
use std::error::Error;
use std::fmt;

/// What category of failure occurred while processing OpenQASM source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QasmErrorKind {
    /// The lexer met a character it cannot tokenize.
    Lex,
    /// The parser met an unexpected token.
    Parse,
    /// Semantic analysis failed (unknown names, arity/range errors, …).
    Semantic,
}

impl fmt::Display for QasmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QasmErrorKind::Lex => write!(f, "lexical error"),
            QasmErrorKind::Parse => write!(f, "parse error"),
            QasmErrorKind::Semantic => write!(f, "semantic error"),
        }
    }
}

/// An error raised by any stage of the OpenQASM frontend.
///
/// Carries the failing stage, a human-readable message and, when known,
/// the source position of the offending construct.
#[derive(Debug, Clone, PartialEq)]
pub struct QasmError {
    kind: QasmErrorKind,
    message: String,
    pos: Option<Pos>,
}

impl QasmError {
    /// Creates an error of the given kind at a known source position.
    pub fn at(kind: QasmErrorKind, pos: Pos, message: impl Into<String>) -> Self {
        QasmError {
            kind,
            message: message.into(),
            pos: Some(pos),
        }
    }

    /// Creates an error of the given kind without position information.
    pub fn new(kind: QasmErrorKind, message: impl Into<String>) -> Self {
        QasmError {
            kind,
            message: message.into(),
            pos: None,
        }
    }

    /// The stage that produced this error.
    pub fn kind(&self) -> &QasmErrorKind {
        &self.kind
    }

    /// The source position of the offending construct, when known.
    pub fn pos(&self) -> Option<Pos> {
        self.pos
    }

    /// The human-readable message (without stage or position prefix).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at {}: {}", self.kind, pos, self.message),
            None => write!(f, "{}: {}", self.kind, self.message),
        }
    }
}

impl Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let e = QasmError::at(QasmErrorKind::Parse, Pos::new(2, 7), "unexpected `;`");
        assert_eq!(e.to_string(), "parse error at 2:7: unexpected `;`");
    }

    #[test]
    fn display_without_position() {
        let e = QasmError::new(QasmErrorKind::Semantic, "unknown gate `foo`");
        assert_eq!(e.to_string(), "semantic error: unknown gate `foo`");
    }

    #[test]
    fn accessors() {
        let e = QasmError::at(QasmErrorKind::Lex, Pos::new(1, 1), "bad char");
        assert_eq!(*e.kind(), QasmErrorKind::Lex);
        assert_eq!(e.pos(), Some(Pos::new(1, 1)));
        assert_eq!(e.message(), "bad char");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QasmError>();
    }
}
