//! Serialization of [`FlatProgram`]s back to OpenQASM 2.0 source.
//!
//! The writer emits one statement per line against the global register
//! layout recorded in the program (or a single synthetic `q` register if
//! none is recorded). Round-tripping through [`crate::parse_and_flatten`]
//! reproduces the same operation sequence.

use crate::semantic::{FlatOp, FlatProgram};
use std::fmt::Write as _;

/// Finds the `(register name, local index)` for a global qubit index.
fn locate(regs: &[(String, usize)], mut index: usize) -> Option<(&str, usize)> {
    for (name, size) in regs {
        if index < *size {
            return Some((name, index));
        }
        index -= size;
    }
    None
}

fn fmt_param(x: f64) -> String {
    // Render common multiples of pi symbolically for readability; fall
    // back to full precision so round-trips are exact.
    let pi = std::f64::consts::PI;
    for (num, den) in [
        (1i32, 1i32),
        (1, 2),
        (-1, 2),
        (1, 4),
        (-1, 4),
        (-1, 1),
        (2, 1),
        (1, 8),
        (-1, 8),
        (1, 16),
        (-1, 16),
    ] {
        if (x - pi * num as f64 / den as f64).abs() < 1e-15 {
            return match (num, den) {
                (1, 1) => "pi".to_string(),
                (-1, 1) => "-pi".to_string(),
                (n, 1) => format!("{n}*pi"),
                (1, d) => format!("pi/{d}"),
                (-1, d) => format!("-pi/{d}"),
                (n, d) => format!("{n}*pi/{d}"),
            };
        }
    }
    if x == 0.0 {
        "0".to_string()
    } else {
        // {:?} gives a shortest representation that round-trips through f64.
        format!("{x:?}")
    }
}

/// Renders a flat program as OpenQASM 2.0 source.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let flat = codar_qasm::parse_and_flatten(
///     "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; cx q[0], q[1];",
/// )?;
/// let src = codar_qasm::writer::write(&flat);
/// assert!(src.contains("cx q[0], q[1];"));
/// # Ok(())
/// # }
/// ```
pub fn write(program: &FlatProgram) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");

    let synthetic_qreg;
    let qregs: &[(String, usize)] = if program.qregs.is_empty() && program.num_qubits > 0 {
        synthetic_qreg = [("q".to_string(), program.num_qubits)];
        &synthetic_qreg
    } else {
        &program.qregs
    };
    let synthetic_creg;
    let cregs: &[(String, usize)] = if program.cregs.is_empty() && program.num_bits > 0 {
        synthetic_creg = [("c".to_string(), program.num_bits)];
        &synthetic_creg
    } else {
        &program.cregs
    };

    for (name, size) in qregs {
        let _ = writeln!(out, "qreg {name}[{size}];");
    }
    for (name, size) in cregs {
        let _ = writeln!(out, "creg {name}[{size}];");
    }

    let q = |idx: usize| -> String {
        match locate(qregs, idx) {
            Some((name, i)) => format!("{name}[{i}]"),
            None => format!("q[{idx}]"),
        }
    };
    let c = |idx: usize| -> String {
        match locate(cregs, idx) {
            Some((name, i)) => format!("{name}[{i}]"),
            None => format!("c[{idx}]"),
        }
    };

    for op in &program.ops {
        match op {
            FlatOp::Gate {
                gate,
                params,
                qubits,
                conditional,
            } => {
                if let Some((creg, value)) = conditional {
                    let _ = write!(out, "if ({creg} == {value}) ");
                }
                let _ = write!(out, "{}", gate.name());
                if !params.is_empty() {
                    let rendered: Vec<String> = params.iter().map(|&p| fmt_param(p)).collect();
                    let _ = write!(out, "({})", rendered.join(", "));
                }
                let rendered: Vec<String> = qubits.iter().map(|&i| q(i)).collect();
                let _ = writeln!(out, " {};", rendered.join(", "));
            }
            FlatOp::Measure { qubit, bit } => {
                let _ = writeln!(out, "measure {} -> {};", q(*qubit), c(*bit));
            }
            FlatOp::Reset { qubit } => {
                let _ = writeln!(out, "reset {};", q(*qubit));
            }
            FlatOp::Barrier { qubits } => {
                let rendered: Vec<String> = qubits.iter().map(|&i| q(i)).collect();
                let _ = writeln!(out, "barrier {};", rendered.join(", "));
            }
        }
    }
    out
}

// ---- AST-level pretty printing -----------------------------------------

fn fmt_expr(expr: &crate::ast::Expr, parent_prec: u8) -> String {
    use crate::ast::{BinaryOp, Expr};
    let (text, prec) = match expr {
        Expr::Real(x) => (format!("{x:?}"), 3),
        Expr::Int(x) => (x.to_string(), 3),
        Expr::Pi => ("pi".to_string(), 3),
        Expr::Param(name) => (name.clone(), 3),
        Expr::Neg(inner) => (format!("-{}", fmt_expr(inner, 2)), 2),
        Expr::Call(f, arg) => (format!("{}({})", f.name(), fmt_expr(arg, 0)), 3),
        Expr::Binary(op, a, b) => {
            let prec = match op {
                BinaryOp::Add | BinaryOp::Sub => 0,
                BinaryOp::Mul | BinaryOp::Div => 1,
                BinaryOp::Pow => 2,
            };
            (
                format!("{} {op} {}", fmt_expr(a, prec), fmt_expr(b, prec + 1)),
                prec,
            )
        }
    };
    if prec < parent_prec {
        format!("({text})")
    } else {
        text
    }
}

fn fmt_call(call: &crate::ast::GateCall) -> String {
    let mut out = call.name.clone();
    if !call.params.is_empty() {
        let rendered: Vec<String> = call.params.iter().map(|e| fmt_expr(e, 0)).collect();
        out.push_str(&format!("({})", rendered.join(", ")));
    }
    let args: Vec<String> = call.args.iter().map(|a| a.to_string()).collect();
    out.push_str(&format!(" {};", args.join(", ")));
    out
}

/// Pretty-prints a parsed [`crate::ast::Program`] back to OpenQASM source,
/// preserving gate definitions, includes and conditionals (unlike
/// [`write()`], which operates on the flattened form).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), codar_qasm::QasmError> {
/// let src = "OPENQASM 2.0;\ngate rot(t) a { rz(t) a; }\nqreg q[1];\nrot(pi/2) q[0];\n";
/// let program = codar_qasm::parse(src)?;
/// let printed = codar_qasm::writer::write_program(&program);
/// let reparsed = codar_qasm::parse(&printed)?;
/// assert_eq!(program, reparsed);
/// # Ok(())
/// # }
/// ```
pub fn write_program(program: &crate::ast::Program) -> String {
    use crate::ast::{GateBodyStmt, Statement};
    let mut out = format!("OPENQASM {}.{};\n", program.version.0, program.version.1);
    fn fmt_statement(stmt: &Statement, out: &mut String) {
        match stmt {
            Statement::Include(file) => {
                let _ = writeln!(out, "include \"{file}\";");
            }
            Statement::QReg { name, size } => {
                let _ = writeln!(out, "qreg {name}[{size}];");
            }
            Statement::CReg { name, size } => {
                let _ = writeln!(out, "creg {name}[{size}];");
            }
            Statement::GateDef(def) => {
                let _ = write!(out, "gate {}", def.name);
                if !def.params.is_empty() {
                    let _ = write!(out, "({})", def.params.join(", "));
                }
                let _ = writeln!(out, " {} {{", def.qargs.join(", "));
                for body in &def.body {
                    match body {
                        GateBodyStmt::Call(call) => {
                            let _ = writeln!(out, "  {}", fmt_call(call));
                        }
                        GateBodyStmt::Barrier(args) => {
                            let rendered: Vec<String> =
                                args.iter().map(|a| a.to_string()).collect();
                            let _ = writeln!(out, "  barrier {};", rendered.join(", "));
                        }
                    }
                }
                let _ = writeln!(out, "}}");
            }
            Statement::Opaque {
                name,
                params,
                qargs,
            } => {
                let _ = write!(out, "opaque {name}");
                if !params.is_empty() {
                    let _ = write!(out, "({})", params.join(", "));
                }
                let _ = writeln!(out, " {};", qargs.join(", "));
            }
            Statement::GateCall(call) => {
                let _ = writeln!(out, "{}", fmt_call(call));
            }
            Statement::Measure { src, dst } => {
                let _ = writeln!(out, "measure {src} -> {dst};");
            }
            Statement::Reset(arg) => {
                let _ = writeln!(out, "reset {arg};");
            }
            Statement::Barrier(args) => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(out, "barrier {};", rendered.join(", "));
            }
            Statement::If { creg, value, then } => {
                let _ = write!(out, "if ({creg} == {value}) ");
                let mut inner = String::new();
                fmt_statement(then, &mut inner);
                out.push_str(&inner);
            }
        }
    }
    for stmt in &program.statements {
        fmt_statement(stmt, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_flatten;

    #[test]
    fn round_trip_preserves_ops() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                   h q[0];\ncx q[0], q[1];\nrz(pi/4) q[2];\nccx q[0], q[1], q[2];\n\
                   barrier q[0], q[1];\nmeasure q[0] -> c[0];\nreset q[1];\n";
        let flat = parse_and_flatten(src).unwrap();
        let emitted = write(&flat);
        let reflat = parse_and_flatten(&emitted).unwrap();
        assert_eq!(flat.ops, reflat.ops);
        assert_eq!(flat.num_qubits, reflat.num_qubits);
    }

    #[test]
    fn round_trip_multi_register() {
        let src = "OPENQASM 2.0; include \"qelib1.inc\"; qreg a[2]; qreg b[2]; creg c[2]; \
                   cx a[1], b[0]; measure b[1] -> c[1];";
        let flat = parse_and_flatten(src).unwrap();
        let emitted = write(&flat);
        assert!(emitted.contains("cx a[1], b[0];"));
        assert!(emitted.contains("measure b[1] -> c[1];"));
        let reflat = parse_and_flatten(&emitted).unwrap();
        assert_eq!(flat.ops, reflat.ops);
    }

    #[test]
    fn round_trip_conditional() {
        let src = "include \"qelib1.inc\"; qreg q[1]; creg c[1]; if (c == 1) x q[0];";
        let flat = parse_and_flatten(src).unwrap();
        let emitted = write(&flat);
        assert!(emitted.contains("if (c == 1) x q[0];"));
        let reflat = parse_and_flatten(&emitted).unwrap();
        assert_eq!(flat.ops, reflat.ops);
    }

    #[test]
    fn pi_fractions_are_symbolic() {
        assert_eq!(fmt_param(std::f64::consts::PI), "pi");
        assert_eq!(fmt_param(-std::f64::consts::PI), "-pi");
        assert_eq!(fmt_param(std::f64::consts::FRAC_PI_2), "pi/2");
        assert_eq!(fmt_param(std::f64::consts::FRAC_PI_4), "pi/4");
        assert_eq!(fmt_param(0.0), "0");
    }

    #[test]
    fn arbitrary_params_round_trip_exactly() {
        let src = "include \"qelib1.inc\"; qreg q[1]; rz(0.12345678901234567) q[0];";
        let flat = parse_and_flatten(src).unwrap();
        let emitted = write(&flat);
        let reflat = parse_and_flatten(&emitted).unwrap();
        assert_eq!(flat.ops, reflat.ops);
    }

    #[test]
    fn ast_round_trip_with_gate_defs() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\
                   gate majority a, b, c {\n  cx c, b;\n  cx c, a;\n  ccx a, b, c;\n}\n\
                   qreg q[3];\ncreg c[3];\nmajority q[0], q[1], q[2];\n\
                   if (c == 2) x q[0];\nbarrier q[0], q[1];\nmeasure q[0] -> c[0];\n";
        let program = crate::parse(src).unwrap();
        let printed = write_program(&program);
        let reparsed = crate::parse(&printed).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn ast_round_trip_preserves_expressions() {
        // Precedence-sensitive parameter expressions survive printing.
        let src = "OPENQASM 2.0;\nqreg q[1];\nU(1 + 2 * 3, -(2 + 1), sin(pi / 4) ^ 2) q[0];\n";
        let program = crate::parse(src).unwrap();
        let printed = write_program(&program);
        let reparsed = crate::parse(&printed).unwrap();
        assert_eq!(program, reparsed);
    }

    #[test]
    fn ast_printer_renders_opaque_and_reset() {
        let src = "OPENQASM 2.0;\nopaque magic(a) x, y;\nqreg q[2];\nreset q[1];\n";
        let program = crate::parse(src).unwrap();
        let printed = write_program(&program);
        assert!(printed.contains("opaque magic(a) x, y;"));
        assert!(printed.contains("reset q[1];"));
        assert_eq!(crate::parse(&printed).unwrap(), program);
    }

    #[test]
    fn synthetic_register_when_missing() {
        let flat = crate::semantic::FlatProgram {
            num_qubits: 2,
            num_bits: 0,
            qregs: vec![],
            cregs: vec![],
            ops: vec![crate::semantic::FlatOp::Gate {
                gate: crate::semantic::PrimitiveGate::Cx,
                params: vec![],
                qubits: vec![0, 1],
                conditional: None,
            }],
        };
        let emitted = write(&flat);
        assert!(emitted.contains("qreg q[2];"));
        assert!(emitted.contains("cx q[0], q[1];"));
    }
}
