//! Semantic analysis: lowering a parsed [`Program`] to a flat sequence of
//! primitive operations on globally-numbered qubits.
//!
//! The lowering performs:
//!
//! * register resolution — quantum registers are concatenated in
//!   declaration order into one global qubit numbering (classical
//!   registers likewise into a global bit numbering),
//! * whole-register broadcast — `h q;` becomes one `h` per element, and
//!   `cx q, r;` (equal sizes) becomes element-wise `cx`,
//! * composite-gate expansion — user-defined `gate` bodies are inlined
//!   recursively with parameter substitution, stopping at the
//!   [`PrimitiveGate`] set (the `qelib1.inc` standard library gates plus
//!   the builtins `U` and `CX`),
//! * constant folding of parameter expressions to `f64`.
//!
//! Classical conditions (`if (c == n) …`) are flattened to their guarded
//! operation: qubit mapping must produce hardware-compliant circuits for
//! either branch, so conditions are irrelevant to routing (they are
//! recorded in the flat ops' `conditional` field for completeness).

use crate::ast::{Argument, Expr, GateBodyStmt, GateCall, GateDef, Program, Statement};
use crate::error::{QasmError, QasmErrorKind};
use std::collections::HashMap;

/// The standard `qelib1.inc` gate library, embedded so that programs can
/// `include "qelib1.inc";` without filesystem access.
///
/// This is the canonical library distributed with the OpenQASM 2.0 paper:
/// every gate is ultimately defined in terms of the builtins `U` and `CX`.
pub const QELIB1: &str = r#"
// Quantum Experience (QE) Standard Header
gate u3(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate u2(phi,lambda) q { U(pi/2,phi,lambda) q; }
gate u1(lambda) q { U(0,0,lambda) q; }
gate cx c,t { CX c,t; }
gate id a { U(0,0,0) a; }
gate u0(gamma) q { U(0,0,0) q; }
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c
{
  h c;
  cx b,c; tdg c;
  cx a,c; t c;
  cx b,c; tdg c;
  cx a,c; t b; t c; h c;
  cx a,b; t a; tdg b;
  cx a,b;
}
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crz(lambda) a,b
{
  u1(lambda/2) b;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
}
gate cu1(lambda) a,b
{
  u1(lambda/2) a;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
  u1(lambda/2) b;
}
gate cu3(theta,phi,lambda) c,t
{
  u1((lambda-phi)/2) t;
  cx c,t;
  u3(-theta/2,0,-(phi+lambda)/2) t;
  cx c,t;
  u3(theta/2,phi,0) t;
}
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
"#;

/// The primitive gate set the lowering stops at.
///
/// These are the gates of `qelib1.inc` plus the OpenQASM builtins. The
/// circuit IR (crate `codar-circuit`) understands exactly this set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimitiveGate {
    /// Builtin single-qubit unitary `U(theta, phi, lambda)`.
    U,
    /// Identity / idle.
    Id,
    /// Generic 1-qubit rotations `u1`, `u2`, `u3`.
    U1,
    /// `u2(phi, lambda)`.
    U2,
    /// `u3(theta, phi, lambda)`.
    U3,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate (π/8).
    T,
    /// Inverse T gate.
    Tdg,
    /// X rotation `rx(theta)`.
    Rx,
    /// Y rotation `ry(theta)`.
    Ry,
    /// Z rotation `rz(phi)`.
    Rz,
    /// Ion-trap rotation `r(theta, phi)` about an axis in the XY plane.
    R,
    /// Controlled-NOT (both the builtin `CX` and library `cx`).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled-Hadamard.
    Ch,
    /// Controlled phase `crz(lambda)`.
    Crz,
    /// Controlled `u1(lambda)`.
    Cu1,
    /// Controlled `u3(theta, phi, lambda)`.
    Cu3,
    /// SWAP.
    Swap,
    /// Toffoli (CCX).
    Ccx,
    /// Fredkin (controlled SWAP).
    Cswap,
    /// Ising ZZ interaction `rzz(theta)`.
    Rzz,
    /// Mølmer–Sørensen XX interaction `rxx(theta)`.
    Rxx,
}

impl PrimitiveGate {
    /// Looks up a primitive gate by its OpenQASM surface name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "U" => PrimitiveGate::U,
            "id" | "u0" => PrimitiveGate::Id,
            "u1" => PrimitiveGate::U1,
            "u2" => PrimitiveGate::U2,
            "u3" => PrimitiveGate::U3,
            "x" => PrimitiveGate::X,
            "y" => PrimitiveGate::Y,
            "z" => PrimitiveGate::Z,
            "h" => PrimitiveGate::H,
            "s" => PrimitiveGate::S,
            "sdg" => PrimitiveGate::Sdg,
            "t" => PrimitiveGate::T,
            "tdg" => PrimitiveGate::Tdg,
            "rx" => PrimitiveGate::Rx,
            "ry" => PrimitiveGate::Ry,
            "rz" => PrimitiveGate::Rz,
            "r" => PrimitiveGate::R,
            "CX" | "cx" => PrimitiveGate::Cx,
            "cy" => PrimitiveGate::Cy,
            "cz" => PrimitiveGate::Cz,
            "ch" => PrimitiveGate::Ch,
            "crz" => PrimitiveGate::Crz,
            "cu1" => PrimitiveGate::Cu1,
            "cu3" => PrimitiveGate::Cu3,
            "swap" => PrimitiveGate::Swap,
            "ccx" => PrimitiveGate::Ccx,
            "cswap" => PrimitiveGate::Cswap,
            "rzz" => PrimitiveGate::Rzz,
            "rxx" => PrimitiveGate::Rxx,
            _ => return None,
        })
    }

    /// The OpenQASM surface name.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveGate::U => "U",
            PrimitiveGate::Id => "id",
            PrimitiveGate::U1 => "u1",
            PrimitiveGate::U2 => "u2",
            PrimitiveGate::U3 => "u3",
            PrimitiveGate::X => "x",
            PrimitiveGate::Y => "y",
            PrimitiveGate::Z => "z",
            PrimitiveGate::H => "h",
            PrimitiveGate::S => "s",
            PrimitiveGate::Sdg => "sdg",
            PrimitiveGate::T => "t",
            PrimitiveGate::Tdg => "tdg",
            PrimitiveGate::Rx => "rx",
            PrimitiveGate::Ry => "ry",
            PrimitiveGate::Rz => "rz",
            PrimitiveGate::R => "r",
            PrimitiveGate::Cx => "cx",
            PrimitiveGate::Cy => "cy",
            PrimitiveGate::Cz => "cz",
            PrimitiveGate::Ch => "ch",
            PrimitiveGate::Crz => "crz",
            PrimitiveGate::Cu1 => "cu1",
            PrimitiveGate::Cu3 => "cu3",
            PrimitiveGate::Swap => "swap",
            PrimitiveGate::Ccx => "ccx",
            PrimitiveGate::Cswap => "cswap",
            PrimitiveGate::Rzz => "rzz",
            PrimitiveGate::Rxx => "rxx",
        }
    }

    /// Number of qubit operands this gate takes.
    pub fn num_qubits(self) -> usize {
        match self {
            PrimitiveGate::U
            | PrimitiveGate::Id
            | PrimitiveGate::U1
            | PrimitiveGate::U2
            | PrimitiveGate::U3
            | PrimitiveGate::X
            | PrimitiveGate::Y
            | PrimitiveGate::Z
            | PrimitiveGate::H
            | PrimitiveGate::S
            | PrimitiveGate::Sdg
            | PrimitiveGate::T
            | PrimitiveGate::Tdg
            | PrimitiveGate::Rx
            | PrimitiveGate::Ry
            | PrimitiveGate::Rz
            | PrimitiveGate::R => 1,
            PrimitiveGate::Cx
            | PrimitiveGate::Cy
            | PrimitiveGate::Cz
            | PrimitiveGate::Ch
            | PrimitiveGate::Crz
            | PrimitiveGate::Cu1
            | PrimitiveGate::Cu3
            | PrimitiveGate::Swap
            | PrimitiveGate::Rzz
            | PrimitiveGate::Rxx => 2,
            PrimitiveGate::Ccx | PrimitiveGate::Cswap => 3,
        }
    }

    /// Number of real parameters this gate takes.
    pub fn num_params(self) -> usize {
        match self {
            PrimitiveGate::U | PrimitiveGate::U3 | PrimitiveGate::Cu3 => 3,
            PrimitiveGate::U2 | PrimitiveGate::R => 2,
            PrimitiveGate::U1
            | PrimitiveGate::Rx
            | PrimitiveGate::Ry
            | PrimitiveGate::Rz
            | PrimitiveGate::Crz
            | PrimitiveGate::Cu1
            | PrimitiveGate::Rzz
            | PrimitiveGate::Rxx => 1,
            _ => 0,
        }
    }
}

impl std::fmt::Display for PrimitiveGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A single lowered operation on globally-numbered qubits/bits.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatOp {
    /// A primitive gate application.
    Gate {
        /// Which primitive gate.
        gate: PrimitiveGate,
        /// Evaluated parameters (length = `gate.num_params()`).
        params: Vec<f64>,
        /// Global qubit indices (length = `gate.num_qubits()`).
        qubits: Vec<usize>,
        /// Classical condition `(creg_name, value)` when lowered from an
        /// `if` statement; ignored by routing.
        conditional: Option<(String, u64)>,
    },
    /// A measurement `qubit -> bit`.
    Measure {
        /// Global qubit index.
        qubit: usize,
        /// Global classical bit index.
        bit: usize,
    },
    /// Reset of a qubit to |0⟩.
    Reset {
        /// Global qubit index.
        qubit: usize,
    },
    /// Synchronization barrier over the given qubits.
    Barrier {
        /// Global qubit indices.
        qubits: Vec<usize>,
    },
}

/// A lowered OpenQASM program: flat primitive operations over a single
/// global qubit numbering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatProgram {
    /// Total number of qubits (sum of all `qreg` sizes).
    pub num_qubits: usize,
    /// Total number of classical bits (sum of all `creg` sizes).
    pub num_bits: usize,
    /// Names and sizes of quantum registers in declaration order.
    pub qregs: Vec<(String, usize)>,
    /// Names and sizes of classical registers in declaration order.
    pub cregs: Vec<(String, usize)>,
    /// The lowered operations in program order.
    pub ops: Vec<FlatOp>,
}

struct RegisterTable {
    // name -> (global offset, size)
    qregs: HashMap<String, (usize, usize)>,
    cregs: HashMap<String, (usize, usize)>,
}

impl RegisterTable {
    fn qubit(&self, arg: &Argument) -> Result<usize, QasmError> {
        let (offset, size) = self.qregs.get(&arg.register).ok_or_else(|| {
            QasmError::new(
                QasmErrorKind::Semantic,
                format!("undeclared quantum register `{}`", arg.register),
            )
        })?;
        let idx = arg.index.ok_or_else(|| {
            QasmError::new(
                QasmErrorKind::Semantic,
                format!("expected indexed reference for `{}`", arg.register),
            )
        })? as usize;
        if idx >= *size {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!("index {idx} out of range for `{}[{size}]`", arg.register),
            ));
        }
        Ok(offset + idx)
    }

    fn bit(&self, arg: &Argument) -> Result<usize, QasmError> {
        let (offset, size) = self.cregs.get(&arg.register).ok_or_else(|| {
            QasmError::new(
                QasmErrorKind::Semantic,
                format!("undeclared classical register `{}`", arg.register),
            )
        })?;
        let idx = arg.index.ok_or_else(|| {
            QasmError::new(
                QasmErrorKind::Semantic,
                format!("expected indexed reference for `{}`", arg.register),
            )
        })? as usize;
        if idx >= *size {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!("index {idx} out of range for `{}[{size}]`", arg.register),
            ));
        }
        Ok(offset + idx)
    }

    fn qreg_size(&self, name: &str) -> Option<usize> {
        self.qregs.get(name).map(|&(_, s)| s)
    }

    fn creg_size(&self, name: &str) -> Option<usize> {
        self.cregs.get(name).map(|&(_, s)| s)
    }
}

struct Lowering {
    regs: RegisterTable,
    gatedefs: HashMap<String, GateDef>,
    opaques: HashMap<String, (usize, usize)>, // name -> (#params, #qargs)
    flat: FlatProgram,
}

const MAX_EXPANSION_DEPTH: usize = 64;

/// Evaluates a constant parameter expression given bindings for formal
/// parameter names.
///
/// # Errors
///
/// Returns a semantic [`QasmError`] if the expression references an
/// unbound parameter name.
pub fn eval_expr(expr: &Expr, env: &HashMap<String, f64>) -> Result<f64, QasmError> {
    Ok(match expr {
        Expr::Real(x) => *x,
        Expr::Int(x) => *x as f64,
        Expr::Pi => std::f64::consts::PI,
        Expr::Param(name) => *env.get(name).ok_or_else(|| {
            QasmError::new(
                QasmErrorKind::Semantic,
                format!("unbound parameter `{name}` in expression"),
            )
        })?,
        Expr::Binary(op, a, b) => {
            let a = eval_expr(a, env)?;
            let b = eval_expr(b, env)?;
            match op {
                crate::ast::BinaryOp::Add => a + b,
                crate::ast::BinaryOp::Sub => a - b,
                crate::ast::BinaryOp::Mul => a * b,
                crate::ast::BinaryOp::Div => a / b,
                crate::ast::BinaryOp::Pow => a.powf(b),
            }
        }
        Expr::Neg(a) => -eval_expr(a, env)?,
        Expr::Call(f, a) => f.apply(eval_expr(a, env)?),
    })
}

impl Lowering {
    fn new() -> Self {
        Lowering {
            regs: RegisterTable {
                qregs: HashMap::new(),
                cregs: HashMap::new(),
            },
            gatedefs: HashMap::new(),
            opaques: HashMap::new(),
            flat: FlatProgram::default(),
        }
    }

    fn register_library(&mut self) -> Result<(), QasmError> {
        let lib = crate::parse(QELIB1)?;
        for stmt in lib.statements {
            if let Statement::GateDef(def) = stmt {
                self.gatedefs.insert(def.name.clone(), def);
            }
        }
        Ok(())
    }

    fn run(mut self, program: &Program) -> Result<FlatProgram, QasmError> {
        for stmt in &program.statements {
            self.lower_statement(stmt, None)?;
        }
        Ok(self.flat)
    }

    fn lower_statement(
        &mut self,
        stmt: &Statement,
        conditional: Option<&(String, u64)>,
    ) -> Result<(), QasmError> {
        match stmt {
            Statement::Include(file) => {
                // qelib1.inc is embedded; other includes are unsupported
                // because the frontend is filesystem-free.
                if file == "qelib1.inc" {
                    self.register_library()
                } else {
                    Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("cannot resolve include \"{file}\" (only qelib1.inc is embedded)"),
                    ))
                }
            }
            Statement::QReg { name, size } => {
                if self.regs.qregs.contains_key(name) {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("duplicate quantum register `{name}`"),
                    ));
                }
                let offset = self.flat.num_qubits;
                self.regs
                    .qregs
                    .insert(name.clone(), (offset, *size as usize));
                self.flat.num_qubits += *size as usize;
                self.flat.qregs.push((name.clone(), *size as usize));
                Ok(())
            }
            Statement::CReg { name, size } => {
                if self.regs.cregs.contains_key(name) {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("duplicate classical register `{name}`"),
                    ));
                }
                let offset = self.flat.num_bits;
                self.regs
                    .cregs
                    .insert(name.clone(), (offset, *size as usize));
                self.flat.num_bits += *size as usize;
                self.flat.cregs.push((name.clone(), *size as usize));
                Ok(())
            }
            Statement::GateDef(def) => {
                self.gatedefs.insert(def.name.clone(), def.clone());
                Ok(())
            }
            Statement::Opaque {
                name,
                params,
                qargs,
            } => {
                self.opaques
                    .insert(name.clone(), (params.len(), qargs.len()));
                Ok(())
            }
            Statement::GateCall(call) => self.lower_call_broadcast(call, conditional),
            Statement::Measure { src, dst } => self.lower_measure(src, dst),
            Statement::Reset(arg) => {
                for q in self.broadcast_qubits(arg)? {
                    self.flat.ops.push(FlatOp::Reset { qubit: q });
                }
                Ok(())
            }
            Statement::Barrier(args) => {
                let mut qubits = Vec::new();
                for arg in args {
                    qubits.extend(self.broadcast_qubits(arg)?);
                }
                self.flat.ops.push(FlatOp::Barrier { qubits });
                Ok(())
            }
            Statement::If { creg, value, then } => {
                if self.regs.creg_size(creg).is_none() {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("undeclared classical register `{creg}` in if"),
                    ));
                }
                self.lower_statement(then, Some(&(creg.clone(), *value)))
            }
        }
    }

    /// Expands an argument into all the global qubit indices it denotes
    /// (one for indexed refs, the whole register otherwise).
    fn broadcast_qubits(&self, arg: &Argument) -> Result<Vec<usize>, QasmError> {
        match arg.index {
            Some(_) => Ok(vec![self.regs.qubit(arg)?]),
            None => {
                let size = self.regs.qreg_size(&arg.register).ok_or_else(|| {
                    QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("undeclared quantum register `{}`", arg.register),
                    )
                })?;
                let (offset, _) = self.regs.qregs[&arg.register];
                Ok((offset..offset + size).collect())
            }
        }
    }

    fn lower_measure(&mut self, src: &Argument, dst: &Argument) -> Result<(), QasmError> {
        match (src.index, dst.index) {
            (Some(_), Some(_)) => {
                let qubit = self.regs.qubit(src)?;
                let bit = self.regs.bit(dst)?;
                self.flat.ops.push(FlatOp::Measure { qubit, bit });
                Ok(())
            }
            (None, None) => {
                let qsize = self.regs.qreg_size(&src.register).ok_or_else(|| {
                    QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("undeclared quantum register `{}`", src.register),
                    )
                })?;
                let csize = self.regs.creg_size(&dst.register).ok_or_else(|| {
                    QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("undeclared classical register `{}`", dst.register),
                    )
                })?;
                if qsize != csize {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!(
                            "register size mismatch in measure: {}[{qsize}] -> {}[{csize}]",
                            src.register, dst.register
                        ),
                    ));
                }
                for i in 0..qsize {
                    let qubit = self
                        .regs
                        .qubit(&Argument::indexed(&*src.register, i as u64))?;
                    let bit = self
                        .regs
                        .bit(&Argument::indexed(&*dst.register, i as u64))?;
                    self.flat.ops.push(FlatOp::Measure { qubit, bit });
                }
                Ok(())
            }
            _ => Err(QasmError::new(
                QasmErrorKind::Semantic,
                "measure must be register->register or element->element",
            )),
        }
    }

    /// Lowers a top-level gate call, broadcasting whole-register operands.
    fn lower_call_broadcast(
        &mut self,
        call: &GateCall,
        conditional: Option<&(String, u64)>,
    ) -> Result<(), QasmError> {
        // Determine broadcast width: all whole-register args must agree.
        let mut width: Option<usize> = None;
        for arg in &call.args {
            if arg.index.is_none() {
                let size = self.regs.qreg_size(&arg.register).ok_or_else(|| {
                    QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("undeclared quantum register `{}`", arg.register),
                    )
                })?;
                match width {
                    None => width = Some(size),
                    Some(w) if w == size => {}
                    Some(w) => {
                        return Err(QasmError::new(
                            QasmErrorKind::Semantic,
                            format!("broadcast size mismatch in `{}`: {w} vs {size}", call.name),
                        ))
                    }
                }
            }
        }
        let params: Vec<f64> = call
            .params
            .iter()
            .map(|e| eval_expr(e, &HashMap::new()))
            .collect::<Result<_, _>>()?;
        let repeats = width.unwrap_or(1);
        for i in 0..repeats {
            let qubits: Vec<usize> = call
                .args
                .iter()
                .map(|arg| {
                    if arg.index.is_some() {
                        self.regs.qubit(arg)
                    } else {
                        self.regs
                            .qubit(&Argument::indexed(&*arg.register, i as u64))
                    }
                })
                .collect::<Result<_, _>>()?;
            self.emit_call(&call.name, &params, &qubits, conditional, 0)?;
        }
        Ok(())
    }

    /// Emits a call on concrete qubits, expanding user-defined gates.
    fn emit_call(
        &mut self,
        name: &str,
        params: &[f64],
        qubits: &[usize],
        conditional: Option<&(String, u64)>,
        depth: usize,
    ) -> Result<(), QasmError> {
        if depth > MAX_EXPANSION_DEPTH {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!("gate expansion exceeds depth {MAX_EXPANSION_DEPTH} (recursive definition of `{name}`?)"),
            ));
        }
        // Repeated operands are invalid quantum operations (e.g. cx q[0],q[0]).
        for (i, a) in qubits.iter().enumerate() {
            for b in &qubits[i + 1..] {
                if a == b {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!("gate `{name}` applied with repeated qubit operand"),
                    ));
                }
            }
        }
        if let Some(gate) = PrimitiveGate::from_name(name) {
            if gate.num_qubits() != qubits.len() {
                return Err(QasmError::new(
                    QasmErrorKind::Semantic,
                    format!(
                        "gate `{name}` expects {} qubits, got {}",
                        gate.num_qubits(),
                        qubits.len()
                    ),
                ));
            }
            if gate.num_params() != params.len() {
                // `u0(gamma)` folds to Id which takes 0 params; tolerate
                // parameter loss only for Id.
                if !(gate == PrimitiveGate::Id) {
                    return Err(QasmError::new(
                        QasmErrorKind::Semantic,
                        format!(
                            "gate `{name}` expects {} parameters, got {}",
                            gate.num_params(),
                            params.len()
                        ),
                    ));
                }
            }
            let params = if gate == PrimitiveGate::Id {
                Vec::new()
            } else {
                params.to_vec()
            };
            self.flat.ops.push(FlatOp::Gate {
                gate,
                params,
                qubits: qubits.to_vec(),
                conditional: conditional.cloned(),
            });
            return Ok(());
        }
        if let Some(&(nparams, nqargs)) = self.opaques.get(name) {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!(
                    "cannot lower opaque gate `{name}` ({nparams} params, {nqargs} qubits): no definition available"
                ),
            ));
        }
        let Some(def) = self.gatedefs.get(name).cloned() else {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!("unknown gate `{name}`"),
            ));
        };
        if def.qargs.len() != qubits.len() {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!(
                    "gate `{name}` expects {} qubits, got {}",
                    def.qargs.len(),
                    qubits.len()
                ),
            ));
        }
        if def.params.len() != params.len() {
            return Err(QasmError::new(
                QasmErrorKind::Semantic,
                format!(
                    "gate `{name}` expects {} parameters, got {}",
                    def.params.len(),
                    params.len()
                ),
            ));
        }
        let param_env: HashMap<String, f64> = def
            .params
            .iter()
            .cloned()
            .zip(params.iter().copied())
            .collect();
        let qubit_env: HashMap<&str, usize> = def
            .qargs
            .iter()
            .map(|s| s.as_str())
            .zip(qubits.iter().copied())
            .collect();
        for stmt in &def.body {
            match stmt {
                GateBodyStmt::Call(inner) => {
                    let inner_params: Vec<f64> = inner
                        .params
                        .iter()
                        .map(|e| eval_expr(e, &param_env))
                        .collect::<Result<_, _>>()?;
                    let inner_qubits: Vec<usize> = inner
                        .args
                        .iter()
                        .map(|a| {
                            if a.index.is_some() {
                                Err(QasmError::new(
                                    QasmErrorKind::Semantic,
                                    format!("indexed reference `{a}` not allowed inside gate body"),
                                ))
                            } else {
                                qubit_env.get(a.register.as_str()).copied().ok_or_else(|| {
                                    QasmError::new(
                                        QasmErrorKind::Semantic,
                                        format!(
                                            "unbound qubit argument `{}` in gate `{name}`",
                                            a.register
                                        ),
                                    )
                                })
                            }
                        })
                        .collect::<Result<_, _>>()?;
                    self.emit_call(
                        &inner.name,
                        &inner_params,
                        &inner_qubits,
                        conditional,
                        depth + 1,
                    )?;
                }
                GateBodyStmt::Barrier(args) => {
                    let qubits: Vec<usize> = args
                        .iter()
                        .map(|a| {
                            qubit_env.get(a.register.as_str()).copied().ok_or_else(|| {
                                QasmError::new(
                                    QasmErrorKind::Semantic,
                                    format!(
                                        "unbound qubit argument `{}` in gate `{name}`",
                                        a.register
                                    ),
                                )
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    self.flat.ops.push(FlatOp::Barrier { qubits });
                }
            }
        }
        Ok(())
    }
}

/// Lowers a parsed program to a [`FlatProgram`].
///
/// The `qelib1.inc` standard library is honoured when included; all
/// `qelib1` gate names are kept as primitives (not expanded to `U`/`CX`),
/// which preserves gate identities for duration assignment and
/// commutativity analysis downstream.
///
/// # Errors
///
/// Returns a semantic [`QasmError`] for undeclared registers,
/// out-of-range indices, arity mismatches, broadcast size mismatches,
/// repeated qubit operands, unknown gates, non-embedded includes and
/// over-deep (recursive) gate expansions.
pub fn flatten(program: &Program) -> Result<FlatProgram, QasmError> {
    Lowering::new().run(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(src: &str) -> FlatProgram {
        crate::parse_and_flatten(src).unwrap()
    }

    fn flat_err(src: &str) -> QasmError {
        crate::parse_and_flatten(src).unwrap_err()
    }

    #[test]
    fn lowers_simple_circuit() {
        let f = flat("OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; h q[0]; cx q[0],q[1];");
        assert_eq!(f.num_qubits, 2);
        assert_eq!(
            f.ops,
            vec![
                FlatOp::Gate {
                    gate: PrimitiveGate::H,
                    params: vec![],
                    qubits: vec![0],
                    conditional: None
                },
                FlatOp::Gate {
                    gate: PrimitiveGate::Cx,
                    params: vec![],
                    qubits: vec![0, 1],
                    conditional: None
                },
            ]
        );
    }

    #[test]
    fn concatenates_registers() {
        let f = flat("include \"qelib1.inc\"; qreg a[2]; qreg b[3]; x b[0];");
        assert_eq!(f.num_qubits, 5);
        match &f.ops[0] {
            FlatOp::Gate { qubits, .. } => assert_eq!(qubits, &vec![2]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcasts_single_qubit_gate() {
        let f = flat("include \"qelib1.inc\"; qreg q[3]; h q;");
        assert_eq!(f.ops.len(), 3);
    }

    #[test]
    fn broadcasts_two_qubit_gate_elementwise() {
        let f = flat("include \"qelib1.inc\"; qreg a[2]; qreg b[2]; cx a, b;");
        assert_eq!(f.ops.len(), 2);
        match (&f.ops[0], &f.ops[1]) {
            (FlatOp::Gate { qubits: q0, .. }, FlatOp::Gate { qubits: q1, .. }) => {
                assert_eq!(q0, &vec![0, 2]);
                assert_eq!(q1, &vec![1, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_mixed_register_and_index() {
        let f = flat("include \"qelib1.inc\"; qreg a[3]; qreg b[1]; cx a, b[0];");
        assert_eq!(f.ops.len(), 3);
        for (i, op) in f.ops.iter().enumerate() {
            match op {
                FlatOp::Gate { qubits, .. } => assert_eq!(qubits, &vec![i, 3]),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn broadcast_size_mismatch_is_error() {
        let e = flat_err("include \"qelib1.inc\"; qreg a[2]; qreg b[3]; cx a, b;");
        assert!(e.to_string().contains("broadcast size mismatch"));
    }

    #[test]
    fn expands_user_defined_gate() {
        let f = flat(
            "include \"qelib1.inc\"; qreg q[3]; \
             gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; } \
             majority q[0], q[1], q[2];",
        );
        let gates: Vec<PrimitiveGate> = f
            .ops
            .iter()
            .map(|op| match op {
                FlatOp::Gate { gate, .. } => *gate,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            gates,
            vec![PrimitiveGate::Cx, PrimitiveGate::Cx, PrimitiveGate::Ccx]
        );
    }

    #[test]
    fn expands_parameterized_gate_with_substitution() {
        let f = flat(
            "include \"qelib1.inc\"; qreg q[1]; \
             gate half(theta) a { rz(theta/2) a; } \
             half(pi) q[0];",
        );
        match &f.ops[0] {
            FlatOp::Gate { gate, params, .. } => {
                assert_eq!(*gate, PrimitiveGate::Rz);
                assert!((params[0] - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn qelib_gates_stay_primitive() {
        // ccx must NOT be decomposed during lowering; it is a primitive of
        // the IR (decomposition is a separate, explicit circuit pass).
        let f = flat("include \"qelib1.inc\"; qreg q[3]; ccx q[0],q[1],q[2];");
        assert_eq!(f.ops.len(), 1);
    }

    #[test]
    fn measure_broadcast() {
        let f = flat("include \"qelib1.inc\"; qreg q[2]; creg c[2]; measure q -> c;");
        assert_eq!(
            f.ops,
            vec![
                FlatOp::Measure { qubit: 0, bit: 0 },
                FlatOp::Measure { qubit: 1, bit: 1 },
            ]
        );
    }

    #[test]
    fn measure_size_mismatch_is_error() {
        let e = flat_err("qreg q[2]; creg c[3]; measure q -> c;");
        assert!(e.to_string().contains("size mismatch"));
    }

    #[test]
    fn conditional_is_recorded() {
        let f = flat("include \"qelib1.inc\"; qreg q[1]; creg c[1]; if (c == 1) x q[0];");
        match &f.ops[0] {
            FlatOp::Gate { conditional, .. } => {
                assert_eq!(conditional, &Some(("c".to_string(), 1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn barrier_collects_qubits() {
        let f = flat("include \"qelib1.inc\"; qreg q[3]; barrier q[0], q[2];");
        assert_eq!(f.ops, vec![FlatOp::Barrier { qubits: vec![0, 2] }]);
    }

    #[test]
    fn barrier_whole_register() {
        let f = flat("qreg q[3]; barrier q;");
        assert_eq!(
            f.ops,
            vec![FlatOp::Barrier {
                qubits: vec![0, 1, 2]
            }]
        );
    }

    #[test]
    fn reset_broadcast() {
        let f = flat("qreg q[2]; reset q;");
        assert_eq!(f.ops.len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        let e = flat_err("qreg q[1]; foo q[0];");
        assert!(e.to_string().contains("unknown gate"));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let e = flat_err("include \"qelib1.inc\"; qreg q[2]; x q[5];");
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_duplicate_register() {
        let e = flat_err("qreg q[2]; qreg q[3];");
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_repeated_operand() {
        let e = flat_err("include \"qelib1.inc\"; qreg q[2]; cx q[0], q[0];");
        assert!(e.to_string().contains("repeated"));
    }

    #[test]
    fn rejects_recursive_gate() {
        let e = flat_err("qreg q[1]; gate loop a { loop a; } loop q[0];");
        assert!(e.to_string().contains("depth"));
    }

    #[test]
    fn rejects_unresolvable_include() {
        let e = flat_err("include \"mylib.inc\"; qreg q[1];");
        assert!(e.to_string().contains("mylib.inc"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let e = flat_err("include \"qelib1.inc\"; qreg q[2]; h q[0], q[1];");
        assert!(e.to_string().contains("expects"));
    }

    #[test]
    fn rejects_wrong_param_count() {
        let e = flat_err("include \"qelib1.inc\"; qreg q[1]; rz q[0];");
        assert!(e.to_string().contains("parameters"));
    }

    #[test]
    fn opaque_cannot_be_lowered() {
        let e = flat_err("qreg q[1]; opaque mystery a; mystery q[0];");
        assert!(e.to_string().contains("opaque"));
    }

    #[test]
    fn eval_expr_constants() {
        let env = HashMap::new();
        assert_eq!(eval_expr(&Expr::Int(3), &env).unwrap(), 3.0);
        assert!((eval_expr(&Expr::Pi, &env).unwrap() - std::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn eval_expr_unbound_param_is_error() {
        let env = HashMap::new();
        assert!(eval_expr(&Expr::Param("theta".into()), &env).is_err());
    }

    #[test]
    fn u_builtin_without_include() {
        // U and CX work without qelib1.
        let f = flat("OPENQASM 2.0; qreg q[2]; U(0, 0, pi) q[0]; CX q[0], q[1];");
        assert_eq!(f.ops.len(), 2);
        match &f.ops[0] {
            FlatOp::Gate { gate, params, .. } => {
                assert_eq!(*gate, PrimitiveGate::U);
                assert_eq!(params.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn primitive_arities_consistent() {
        for name in [
            "u1", "u2", "u3", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "rz", "cx",
            "cy", "cz", "ch", "crz", "cu1", "cu3", "swap", "ccx", "cswap", "rzz", "id",
        ] {
            let g = PrimitiveGate::from_name(name).unwrap();
            assert!(g.num_qubits() >= 1 && g.num_qubits() <= 3);
            // names round-trip except aliases (u0 -> id, CX -> cx)
            assert_eq!(PrimitiveGate::from_name(g.name()), Some(g));
        }
    }
}
