//! Seeded random OpenQASM 2.0 program generation — the fuzzing hook.
//!
//! [`random_source`] produces a syntactically and semantically *valid*
//! program from a seed: header and `qelib1.inc` include, one quantum
//! and one classical register, a run of primitive and composite gates
//! with in-range, pairwise-distinct operands, and (sometimes) a final
//! register measurement. Validity is the point: grammar-aware fuzzers
//! (see `codar-service`'s `fuzz` module) start from these skeletons
//! and apply targeted corruptions — index perturbation, operand
//! duplication, keyword corruption — so the mutants sit *near* the
//! grammar boundary where parser bugs live, instead of being rejected
//! by the first token.
//!
//! Determinism: the output is a pure function of `(seed, config)` —
//! byte-identical across runs and platforms (the `rand` shim is a
//! fixed xoshiro256** stream).

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;

/// Shape bounds for [`random_source`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Quantum register size is drawn from `[1, max_qubits]`.
    pub max_qubits: usize,
    /// Gate statement count is drawn from `[0, max_gates]`.
    pub max_gates: usize,
    /// Probability the program ends with `measure q -> c;`.
    pub measure_probability: f64,
    /// Probability the `OPENQASM 2.0;` header and include are emitted
    /// (the parser accepts headerless programs; both shapes should be
    /// exercised). Composite gates are only drawn when the include is
    /// present.
    pub header_probability: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_qubits: 8,
            max_gates: 24,
            measure_probability: 0.5,
            header_probability: 0.9,
        }
    }
}

/// Gates needing the `qelib1.inc` include, by operand arity.
const LIB_ONE_QUBIT: &[&str] = &["h", "x", "y", "z", "s", "t", "sdg", "tdg"];
const LIB_PARAM_ONE_QUBIT: &[&str] = &["rz", "rx", "ry"];
const LIB_TWO_QUBIT: &[&str] = &["cx", "cz", "swap"];
/// Angle literals for parameterized gates (plain numerics only, so the
/// generated text is stable under any expression-printing changes).
const ANGLES: &[&str] = &["0", "0.25", "1.5707963267948966", "3.141592653589793"];

/// A valid OpenQASM 2.0 program drawn deterministically from `seed`.
///
/// # Examples
///
/// ```
/// use codar_qasm::generate::{random_source, GeneratorConfig};
///
/// let config = GeneratorConfig::default();
/// let source = random_source(7, &config);
/// assert_eq!(source, random_source(7, &config)); // pure in the seed
/// codar_qasm::parse_and_flatten(&source).expect("skeletons are valid");
/// ```
pub fn random_source(seed: u64, config: &GeneratorConfig) -> String {
    random_source_with(&mut StdRng::seed_from_u64(seed), config)
}

/// [`random_source`] drawing from a caller-owned generator — the hook
/// fuzzers use to derive many programs from one seeded stream.
pub fn random_source_with(rng: &mut StdRng, config: &GeneratorConfig) -> String {
    let qubits = rng.gen_range(1..=config.max_qubits.max(1));
    let with_header = rng.gen_bool(config.header_probability);
    let mut source = String::new();
    if with_header {
        source.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    }
    let _ = writeln!(source, "qreg q[{qubits}];");
    let _ = writeln!(source, "creg c[{qubits}];");
    let gates = rng.gen_range(0..=config.max_gates);
    for _ in 0..gates {
        emit_gate(&mut source, rng, qubits, with_header);
    }
    if rng.gen_bool(config.measure_probability) {
        source.push_str("measure q -> c;\n");
    }
    source
}

/// Appends one valid gate statement on a `qubits`-wide register.
/// Without the include only the builtin `U`/`CX` exist.
fn emit_gate(source: &mut String, rng: &mut StdRng, qubits: usize, with_include: bool) {
    let one = |rng: &mut StdRng| rng.gen_range(0..qubits);
    // Two distinct operands; a single-qubit register can only host
    // one-operand gates.
    let two = |rng: &mut StdRng| {
        let a = rng.gen_range(0..qubits);
        let mut b = rng.gen_range(0..qubits);
        while b == a {
            b = rng.gen_range(0..qubits);
        }
        (a, b)
    };
    let family = if with_include {
        rng.gen_range(0..5u32)
    } else {
        rng.gen_range(0..2u32)
    };
    let _ = match family {
        // Builtins are always available.
        0 => {
            let angle = ANGLES[rng.gen_range(0..ANGLES.len())];
            writeln!(source, "U({angle},0,0) q[{}];", one(rng))
        }
        1 if qubits >= 2 => {
            let (a, b) = two(rng);
            writeln!(source, "CX q[{a}], q[{b}];")
        }
        1 => writeln!(source, "U(0,0,0) q[{}];", one(rng)),
        2 => {
            let gate = LIB_ONE_QUBIT[rng.gen_range(0..LIB_ONE_QUBIT.len())];
            writeln!(source, "{gate} q[{}];", one(rng))
        }
        3 => {
            let gate = LIB_PARAM_ONE_QUBIT[rng.gen_range(0..LIB_PARAM_ONE_QUBIT.len())];
            let angle = ANGLES[rng.gen_range(0..ANGLES.len())];
            writeln!(source, "{gate}({angle}) q[{}];", one(rng))
        }
        _ if qubits >= 3 && rng.gen_bool(0.25) => {
            let (a, b) = two(rng);
            let mut c = rng.gen_range(0..qubits);
            while c == a || c == b {
                c = rng.gen_range(0..qubits);
            }
            writeln!(source, "ccx q[{a}], q[{b}], q[{c}];")
        }
        _ if qubits >= 2 => {
            let gate = LIB_TWO_QUBIT[rng.gen_range(0..LIB_TWO_QUBIT.len())];
            let (a, b) = two(rng);
            writeln!(source, "{gate} q[{a}], q[{b}];")
        }
        _ => {
            let gate = LIB_ONE_QUBIT[rng.gen_range(0..LIB_ONE_QUBIT.len())];
            writeln!(source, "{gate} q[{}];", one(rng))
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_yields_a_valid_program() {
        let config = GeneratorConfig::default();
        for seed in 0..200 {
            let source = random_source(seed, &config);
            crate::parse_and_flatten(&source)
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid QASM ({e}):\n{source}"));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GeneratorConfig::default();
        for seed in [0, 1, 7, 424242] {
            assert_eq!(random_source(seed, &config), random_source(seed, &config));
        }
        let distinct: std::collections::HashSet<String> =
            (0..32).map(|seed| random_source(seed, &config)).collect();
        assert!(distinct.len() > 16, "seeds barely vary the output");
    }

    #[test]
    fn config_bounds_are_respected() {
        let config = GeneratorConfig {
            max_qubits: 3,
            max_gates: 5,
            measure_probability: 1.0,
            header_probability: 1.0,
        };
        for seed in 0..50 {
            let source = random_source(seed, &config);
            let flat = crate::parse_and_flatten(&source).expect("valid");
            assert!(flat.num_qubits <= 3, "{source}");
            assert!(source.ends_with("measure q -> c;\n"), "{source}");
            assert!(source.starts_with("OPENQASM 2.0;"), "{source}");
        }
    }

    #[test]
    fn headerless_programs_stay_within_builtins() {
        let config = GeneratorConfig {
            header_probability: 0.0,
            ..GeneratorConfig::default()
        };
        for seed in 0..50 {
            let source = random_source(seed, &config);
            assert!(!source.contains("include"), "{source}");
            crate::parse_and_flatten(&source).expect("builtin-only programs are valid");
        }
    }
}
