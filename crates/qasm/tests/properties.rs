//! Property-based tests for the OpenQASM frontend.

use codar_qasm::{lexer, parse, parse_and_flatten};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer never panics, whatever bytes arrive.
    #[test]
    fn lexer_total_on_arbitrary_input(input in ".*") {
        let _ = lexer::lex(&input);
    }

    /// The parser never panics on arbitrary input either.
    #[test]
    fn parser_total_on_arbitrary_input(input in ".*") {
        let _ = parse(&input);
    }

    /// Lexing is insensitive to inserted whitespace between tokens.
    #[test]
    fn whitespace_insensitivity(pad in "[ \t\n]{0,4}") {
        let header = "OPENQASM 2.0;include \"qelib1.inc\";";
        let tight = format!("{header}qreg q[3];creg c[3];h q[0];cx q[0],q[1];");
        let padded = format!(
            "{header}{pad}qreg q[3];{pad}creg c[3];{pad}h{pad} q[0];{pad}cx q[0],{pad}q[1];"
        );
        let a = parse_and_flatten(&tight);
        let b = parse_and_flatten(&padded);
        prop_assert_eq!(a.unwrap().ops, b.unwrap().ops);
    }

    /// Generated register declarations always round-trip.
    #[test]
    fn register_sizes_round_trip(sizes in proptest::collection::vec(1u64..30, 1..5)) {
        let mut src = String::from("OPENQASM 2.0;\n");
        for (i, s) in sizes.iter().enumerate() {
            src.push_str(&format!("qreg r{i}[{s}];\n"));
        }
        let flat = parse_and_flatten(&src).expect("valid declarations");
        prop_assert_eq!(flat.num_qubits as u64, sizes.iter().sum::<u64>());
    }

    /// Parameter expressions evaluate consistently however they are
    /// parenthesized.
    #[test]
    fn expression_parenthesization(a in -5.0f64..5.0, b in -5.0f64..5.0, c in 0.1f64..5.0) {
        let flat1 = parse_and_flatten(&format!(
            "include \"qelib1.inc\"; qreg q[1]; rz({a} + {b} / {c}) q[0];"
        )).expect("parses");
        let flat2 = parse_and_flatten(&format!(
            "include \"qelib1.inc\"; qreg q[1]; rz(({a}) + (({b}) / ({c}))) q[0];"
        )).expect("parses");
        let p1 = match &flat1.ops[0] {
            codar_qasm::FlatOp::Gate { params, .. } => params[0],
            other => panic!("unexpected {other:?}"),
        };
        let p2 = match &flat2.ops[0] {
            codar_qasm::FlatOp::Gate { params, .. } => params[0],
            other => panic!("unexpected {other:?}"),
        };
        prop_assert!((p1 - p2).abs() < 1e-12);
        prop_assert!((p1 - (a + b / c)).abs() < 1e-9);
    }

    /// Emitted programs always re-parse to the same operations
    /// (writer/parser round trip over generated gate sequences).
    #[test]
    fn writer_round_trip(ops in proptest::collection::vec((0u8..6, 0usize..4, 0usize..4, -3.0f64..3.0), 1..30)) {
        let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n");
        for (kind, a, b, angle) in ops {
            let b = if a == b { (a + 1) % 4 } else { b };
            match kind {
                0 => src.push_str(&format!("h q[{a}];\n")),
                1 => src.push_str(&format!("t q[{a}];\n")),
                2 => src.push_str(&format!("rz({angle}) q[{a}];\n")),
                3 => src.push_str(&format!("cx q[{a}], q[{b}];\n")),
                4 => src.push_str(&format!("measure q[{a}] -> c[{a}];\n")),
                _ => src.push_str(&format!("barrier q[{a}], q[{b}];\n")),
            }
        }
        let flat = parse_and_flatten(&src).expect("generated source is valid");
        let emitted = codar_qasm::writer::write(&flat);
        let reflat = parse_and_flatten(&emitted).expect("emitted source is valid");
        prop_assert_eq!(flat.ops, reflat.ops);
    }
}
