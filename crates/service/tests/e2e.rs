//! The end-to-end acceptance gate (ISSUE 4):
//!
//! `loadgen` against an in-process `coded` must route ≥ 500 requests
//! with ≥ 0.9 cache hit rate at repeat ratio 0.95, every response
//! verified, and the response stream must be byte-identical (a) across
//! two identical seeded runs and (b) between a cache-enabled and a
//! cache-disabled daemon — all on one worker thread (the 1-CPU
//! container's determinism policy).

use codar_service::loadgen::{run, LoadgenConfig};
use codar_service::{Service, ServiceConfig};

fn e2e_config() -> LoadgenConfig {
    LoadgenConfig {
        requests: 500,
        seed: 42,
        repeat_ratio: 0.95,
        // Small circuits keep the cache-off control run fast in debug
        // builds; the mix still spans four devices' worth of sizes.
        max_qubits: 6,
        ..LoadgenConfig::default()
    }
}

fn one_worker(cache_capacity: usize) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        cache_capacity,
        ..ServiceConfig::default()
    }
}

#[test]
fn loadgen_closed_loop_meets_the_acceptance_bar() {
    let config = e2e_config();

    // Run 1: cache enabled.
    let mut cached = Service::start(one_worker(1024));
    let first = run(&config, &mut cached).expect("in-process transport cannot fail");
    assert_eq!(first.ok, 500, "all 500 requests must route");
    assert_eq!(first.errors, 0);
    assert_eq!(first.verified, 500, "every response must be verified");
    assert_eq!(first.cache_hits + first.cache_misses, 500);
    assert!(
        first.cache_hit_rate() >= 0.9,
        "hit rate {:.3} below the 0.9 bar",
        first.cache_hit_rate()
    );

    // Run 2: fresh identically configured daemon, same seed — the
    // whole deterministic summary (stream checksum included) must be
    // byte-identical.
    let mut replay = Service::start(one_worker(1024));
    let second = run(&config, &mut replay).expect("in-process transport cannot fail");
    assert_eq!(
        first.summary_json(),
        second.summary_json(),
        "two identical seeded runs diverged"
    );

    // Run 3: cache disabled. Counters differ (hit rate 0 by
    // definition) but the route response *stream* must not.
    let mut uncached = Service::start(one_worker(0));
    let control = run(&config, &mut uncached).expect("in-process transport cannot fail");
    assert_eq!(control.ok, 500);
    assert_eq!(control.verified, 500);
    assert_eq!(control.cache_hits, 0, "capacity 0 cannot hit");
    assert_eq!(
        first.stream_fnv, control.stream_fnv,
        "cache-on vs cache-off response streams diverged"
    );
    assert_eq!(first.total_swaps, control.total_swaps);
    assert_eq!(first.total_weighted_depth, control.total_weighted_depth);
}
