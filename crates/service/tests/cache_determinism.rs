//! The cache-transparency property: for **any** route request
//! sequence, a cache-enabled daemon and a cache-disabled daemon emit
//! byte-identical response streams (the 1-CPU container's determinism
//! gate — we cannot measure parallel speedup locally, so we gate on
//! byte equality instead). Sequences mix repeated circuits (cache
//! hits), distinct devices/routers (distinct cache keys) and invalid
//! requests (never cached), drawn deterministically from the proptest
//! seed.

use codar_benchmarks::generators;
use codar_circuit::from_qasm::circuit_to_qasm;
use codar_service::json::escape;
use codar_service::{Service, ServiceConfig};
use proptest::prelude::*;

/// A small deterministic circuit for request `pick` (3–5 qubits, so it
/// fits every catalog device).
fn circuit_qasm(pick: u64) -> String {
    let n = 3 + (pick % 3) as usize;
    let gates = 8 + (pick % 24) as usize;
    circuit_to_qasm(&generators::random_clifford_t(n, gates, pick % 7)).expect("serializes")
}

/// Builds the `i`-th request of the sequence derived from `seed`.
fn request_line(seed: u64, i: u64) -> String {
    // Cheap splitmix-style per-request scrambling (deterministic).
    let x = (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    match x % 10 {
        // Mostly route requests over a small circuit space so repeats
        // (and therefore cache hits) actually occur.
        0..=6 => {
            let device = ["q5", "q16", "q20"][(x / 10 % 3) as usize];
            let router = ["codar", "sabre", "greedy"][(x / 30 % 3) as usize];
            format!(
                "{{\"type\":\"route\",\"id\":{i},\"device\":\"{device}\",\
                 \"router\":\"{router}\",\"circuit\":{}}}",
                escape(&circuit_qasm(x / 90 % 6))
            )
        }
        // Error paths: never cached, must still be byte-identical.
        7 => format!(
            "{{\"type\":\"route\",\"id\":{i},\"device\":\"nonexistent\",\"circuit\":\"x\"}}"
        ),
        8 => {
            format!("{{\"type\":\"route\",\"id\":{i},\"device\":\"q5\",\"circuit\":\"qreg q[;\"}}")
        }
        _ => format!("{{\"type\":\"devices\",\"id\":{i}}}"),
    }
}

fn response_stream(service: &Service, seed: u64, len: u64) -> String {
    let mut out = String::new();
    for i in 0..len {
        out.push_str(&service.handle_line(&request_line(seed, i)));
        out.push('\n');
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cache on vs cache off vs a tiny thrashing cache: identical
    /// response streams for any request sequence.
    #[test]
    fn cache_configuration_is_invisible_in_responses(seed in 0u64..1000) {
        let len = 24 + seed % 12;
        let cached = Service::start(ServiceConfig::default());
        let uncached = Service::start(ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        });
        // A 2-entry cache evicts constantly: exercises the LRU path
        // while still proving transparency.
        let thrashing = Service::start(ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            ..ServiceConfig::default()
        });
        let with_cache = response_stream(&cached, seed, len);
        let without_cache = response_stream(&uncached, seed, len);
        let with_thrashing = response_stream(&thrashing, seed, len);
        prop_assert_eq!(&with_cache, &without_cache,
            "cache-on vs cache-off streams differ (seed {})", seed);
        prop_assert_eq!(&with_cache, &with_thrashing,
            "thrashing-cache stream differs (seed {})", seed);
        // And the cache-enabled daemon really did serve hits.
        let stats = cached.cache_stats();
        prop_assert!(stats.hits + stats.misses > 0);
    }

    /// Two fresh identically configured daemons replay the same
    /// sequence to the same bytes (no hidden per-instance state).
    #[test]
    fn fresh_instances_replay_identically(seed in 0u64..1000) {
        let len = 16 + seed % 8;
        let first = Service::start(ServiceConfig::default());
        let second = Service::start(ServiceConfig::default());
        prop_assert_eq!(
            response_stream(&first, seed, len),
            response_stream(&second, seed, len)
        );
    }
}
