//! Property tests: span trees are well-formed for arbitrary request
//! mixes.
//!
//! Across random streams of routes (hits, misses, QASM errors) and
//! control probes, traced or not, against caches of every size, the
//! committed spans must always group into well-formed trees: one root
//! per trace id at ordinal 0, contiguous ordinals, every parent
//! pointing at an earlier span of the same tree, decided outcomes on
//! the root — and cache-hit trees must never contain worker phases,
//! because a hit never reaches the queue.

use codar_service::json::Json;
use codar_service::{Service, ServiceConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_log(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "codar_trace_prop_{}_{}_{}",
            tag,
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ))
        .to_string_lossy()
        .into_owned()
}

#[derive(Debug)]
struct SpanRec {
    ord: u64,
    parent: Option<u64>,
    kind: String,
    name: String,
    detail: Option<String>,
}

/// Parses the recorder's span lines and groups them by trace id,
/// preserving commit order within each trace.
fn span_trees(spans: &[String]) -> HashMap<String, Vec<SpanRec>> {
    let mut trees: HashMap<String, Vec<SpanRec>> = HashMap::new();
    for line in spans {
        let parsed = Json::parse(line).unwrap_or_else(|e| panic!("bad span line ({e}): {line}"));
        let field = |key: &str| parsed.get(key).and_then(Json::as_str).map(String::from);
        let trace = field("trace").expect("span has a trace id");
        trees.entry(trace).or_default().push(SpanRec {
            ord: parsed.get("ord").and_then(Json::as_u64).expect("ord"),
            parent: parsed.get("parent").and_then(Json::as_u64),
            kind: field("kind").expect("kind"),
            name: field("name").expect("name"),
            detail: field("detail"),
        });
    }
    trees
}

const DEVICES: [&str; 2] = ["q5", "q20"];
const CIRCUITS: [&str; 4] = [
    "qreg q[1];",
    "qreg q[2]; cx q[0], q[1];",
    "qreg q[3]; cx q[0], q[1]; cx q[1], q[2];",
    "qreg q[", // QASM error: traced, error outcome, no worker phases
];

/// One generated request: (verb selector, device, circuit, traced?).
/// Verbs 0..=2 are routes (mint when untraced), 3 stats, 4 health,
/// 5 metrics with histograms.
type Mix = Vec<(u8, u8, u8, u8)>;

fn build_line(index: usize, &(verb, device, circuit, traced): &(u8, u8, u8, u8)) -> String {
    let trace = if traced % 2 == 0 {
        format!(",\"trace\":\"req-{index}\"")
    } else {
        String::new()
    };
    let device = DEVICES[device as usize % DEVICES.len()];
    let circuit = CIRCUITS[circuit as usize % CIRCUITS.len()];
    match verb % 6 {
        0..=2 => format!(
            "{{\"type\":\"route\"{trace},\"device\":\"{device}\",\"circuit\":\"{circuit}\"}}"
        ),
        3 => format!("{{\"type\":\"stats\"{trace}}}"),
        4 => format!("{{\"type\":\"health\"{trace}}}"),
        _ => format!("{{\"type\":\"metrics\"{trace},\"hist\":true}}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn span_trees_are_well_formed(
        mix in collection::vec((0u8..6, 0u8..4, 0u8..4, 0u8..2), 1..24),
        cache_capacity in 0usize..80,
    ) {
        let mix: Mix = mix;
        let path = temp_log("wellformed");
        let service = Service::start(ServiceConfig {
            cache_capacity,
            trace_log: Some(path.clone()),
            ..ServiceConfig::default()
        });
        for (index, request) in mix.iter().enumerate() {
            service.handle_line(&build_line(index, request));
        }
        let spans = service.recent_spans(usize::MAX);
        let _ = std::fs::remove_file(&path);
        let trees = span_trees(&spans);

        // Every route is traced (carried or minted); control probes
        // are traced exactly when they carry an id.
        let expected = mix
            .iter()
            .filter(|(verb, _, _, traced)| verb % 6 <= 2 || traced % 2 == 0)
            .count();
        prop_assert_eq!(trees.len(), expected, "trace count off in {:?}", mix);

        for (trace, tree) in &trees {
            // Contiguous ordinals in commit order, rooted at 0.
            for (at, span) in tree.iter().enumerate() {
                prop_assert_eq!(span.ord, at as u64, "ords of {} not contiguous", trace);
            }
            let root = &tree[0];
            prop_assert_eq!(&root.kind, "request", "trace {} lacks a root", trace);
            prop_assert!(root.parent.is_none(), "root of {} has a parent", trace);
            let outcome = root.detail.as_deref().unwrap_or("");
            prop_assert!(
                ["ok", "error", "overloaded"].contains(&outcome),
                "root of {} has undecided outcome {:?}", trace, outcome
            );
            // Exactly one root; every child points at an earlier span.
            for span in &tree[1..] {
                prop_assert!(span.kind != "request", "{} has two roots", trace);
                let parent = span.parent;
                prop_assert!(
                    parent.is_some_and(|p| p < span.ord),
                    "span {} of {} has orphan parent {:?}", span.ord, trace, parent
                );
            }
            // A cache hit never reaches the queue: no worker phases.
            if tree.iter().any(|s| s.name == "cache_hit") {
                for worker in ["queue_wait", "route", "verify", "simulate", "serialize"] {
                    prop_assert!(
                        !tree.iter().any(|s| s.kind == "phase" && s.name == worker),
                        "cache-hit trace {} ran worker phase {}", trace, worker
                    );
                }
            }
        }
    }

    #[test]
    fn zero_capacity_queue_overloads_every_route_miss(
        mix in collection::vec((0u8..4, 0u8..3, 0u8..2), 1..12),
    ) {
        let path = temp_log("zeroqueue");
        let service = Service::start(ServiceConfig {
            cache_capacity: 0, // no hits, so every route must enqueue
            queue_capacity: 0,
            trace_log: Some(path.clone()),
            ..ServiceConfig::default()
        });
        for (index, &(device, circuit, traced)) in mix.iter().enumerate() {
            let reply = service.handle_line(&build_line(
                index,
                &(0, device, circuit % 3, traced), // valid circuits only
            ));
            prop_assert!(
                reply.contains("\"status\":\"overloaded\""),
                "zero-queue route was not refused: {}", reply
            );
        }
        let spans = service.recent_spans(usize::MAX);
        let _ = std::fs::remove_file(&path);
        let trees = span_trees(&spans);
        prop_assert_eq!(trees.len(), mix.len());
        for (trace, tree) in &trees {
            prop_assert_eq!(
                tree[0].detail.as_deref(), Some("overloaded"),
                "root of {} not overloaded", trace
            );
            prop_assert!(
                tree.iter().any(|s| s.kind == "event" && s.name == "enqueue_reject"),
                "trace {} lacks the enqueue_reject event", trace
            );
        }
    }
}
