//! QASM round-trip correctness for every benchmark circuit the service
//! can serve.
//!
//! The daemon's `route` path serializes circuits to QASM twice — the
//! canonical form that keys the cache, and the routed circuit in the
//! response — and clients are expected to re-parse both. That makes
//! `parse(write(parse(x)))` a **correctness dependency** of the
//! service: a circuit that drifts across a write/parse cycle would
//! split cache entries or hand clients a different program than was
//! routed. These tests pin the property over the full 71-entry suite
//! (every `loadgen --max-qubits` pool is a subset of it).

use codar_benchmarks::suite::full_suite;
use codar_circuit::from_qasm::{circuit_from_source, circuit_to_qasm};

#[test]
fn every_suite_circuit_round_trips_exactly() {
    for entry in full_suite() {
        let written = circuit_to_qasm(&entry.circuit)
            .unwrap_or_else(|e| panic!("{}: cannot serialize: {e}", entry.name));
        let reparsed = circuit_from_source(&written)
            .unwrap_or_else(|e| panic!("{}: emitted QASM does not parse: {e}", entry.name));
        assert_eq!(
            entry.circuit.num_qubits(),
            reparsed.num_qubits(),
            "{}: qubit count drifted",
            entry.name
        );
        assert_eq!(
            entry.circuit.gates(),
            reparsed.gates(),
            "{}: gate sequence drifted across write/parse",
            entry.name
        );
    }
}

#[test]
fn second_write_parse_cycle_is_a_fixed_point() {
    // parse(write(parse(x))) == parse(x) gate-for-gate implies the
    // canonical text itself is stable: write(parse(write(c))) ==
    // write(c). The cache key depends on exactly this.
    for entry in full_suite() {
        let first = circuit_to_qasm(&entry.circuit).expect("serializes");
        let reparsed = circuit_from_source(&first).expect("parses");
        let second = circuit_to_qasm(&reparsed).expect("serializes again");
        assert_eq!(
            first, second,
            "{}: canonical QASM is not a fixed point",
            entry.name
        );
    }
}

#[test]
fn routed_outputs_round_trip_too() {
    // The response-path variant: routed circuits contain inserted
    // SWAPs and physical indices; their QASM must survive a cycle as
    // well. One small representative per router is enough here — the
    // e2e test covers the full mix.
    use codar_arch::Device;
    use codar_engine::{RouteWorker, RouterKind, RouterVariant};

    let device = Device::ibm_q5_yorktown();
    let entry = full_suite()
        .into_iter()
        .find(|e| e.num_qubits <= 5 && e.circuit.two_qubit_gate_count() > 3)
        .expect("a small entry exists");
    let mut worker = RouteWorker::new();
    for kind in [RouterKind::Codar, RouterKind::Sabre, RouterKind::Greedy] {
        let initial = worker.initial_mapping(&entry.circuit, &device, 0);
        let routed = worker
            .route(
                &entry.circuit,
                &device,
                &RouterVariant::of_kind(kind),
                Some(initial),
                None,
            )
            .expect("fits");
        let written = circuit_to_qasm(&routed.circuit).expect("routed serializes");
        let reparsed = circuit_from_source(&written).expect("routed QASM parses");
        assert_eq!(
            routed.circuit.gates(),
            reparsed.gates(),
            "routed {} output drifted",
            kind.name()
        );
    }
}
