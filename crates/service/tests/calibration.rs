//! Calibration-request tests: golden `--stdin` fixtures, cache
//! invalidation on snapshot reload, and byte-stream determinism.

use codar_service::json::Json;
use codar_service::{Service, ServiceConfig};
use std::path::PathBuf;
use std::process::{Command, Stdio};

const GHZ3: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                    h q[0];\ncx q[0], q[1];\ncx q[1], q[2];\nmeasure q -> c;\n";

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn route_line(device: &str, router: &str, alpha: Option<f64>, qasm: &str) -> String {
    let alpha = alpha.map_or(String::new(), |a| format!("\"alpha\":{a},"));
    format!(
        "{{\"type\":\"route\",\"device\":{},\"router\":{},{alpha}\"circuit\":{}}}",
        codar_service::json::escape(device),
        codar_service::json::escape(router),
        codar_service::json::escape(qasm)
    )
}

fn set_line(device: &str, seed: u64) -> String {
    format!(
        "{{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"{device}\",\
         \"synthetic\":{{\"seed\":{seed}}}}}"
    )
}

/// Golden regression over the calibration fixtures, byte-for-byte,
/// with the cache-invariance cross-check the plain fixtures get.
/// Regenerate intentionally with
/// `UPDATE_GOLDEN=1 cargo test -p codar-service --test calibration`.
#[test]
fn calibration_stdin_responses_match_golden() {
    let run = |extra_args: &[&str]| -> String {
        let requests =
            std::fs::File::open(fixture("calibration_requests.ndjson")).expect("fixtures file");
        let output = Command::new(env!("CARGO_BIN_EXE_coded"))
            .arg("--stdin")
            .args(extra_args)
            .stdin(Stdio::from(requests))
            .output()
            .expect("spawn coded");
        assert!(
            output.status.success(),
            "coded --stdin {extra_args:?} exited with {:?}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("responses are UTF-8")
    };
    let first = run(&[]);
    assert_eq!(first, run(&[]), "two runs diverged");
    let uncached = run(&["--cache-capacity", "0"]);
    for (a, b) in first.lines().zip(uncached.lines()) {
        if a.contains("\"type\":\"stats\"") && b.contains("\"type\":\"stats\"") {
            continue;
        }
        assert_eq!(a, b, "cache-off run diverged on a non-stats response");
    }

    let path = fixture("calibration_responses.golden.ndjson");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &first).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, first,
        "responses drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A snapshot reload must change the cache key: the old entry stops
/// being probed (stale misses, counters move) and the fresh result is
/// bound to the new snapshot version.
#[test]
fn snapshot_reload_invalidates_cached_routes() {
    let service = Service::start(ServiceConfig::default());
    assert!(service
        .handle_line(&set_line("q5", 1))
        .contains("\"version\":1"));

    // Fill and hit: the same codar-cal route twice.
    let line = route_line("q5", "codar-cal", Some(1.0), GHZ3);
    let v1_body = service.handle_line(&line);
    assert!(v1_body.contains("\"cal_version\":1"), "{v1_body}");
    assert!(v1_body.contains("\"eps\":"), "{v1_body}");
    assert_eq!(service.handle_line(&line), v1_body, "repeat must hit");
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // Reload: different synthetic snapshot, version bumps to 2.
    let ack = service.handle_line(&set_line("q5", 2));
    assert!(
        ack.contains("\"version\":2") && ack.contains("\"replaced\":true"),
        "{ack}"
    );

    // The same request now misses (the stale v1 entry is unreachable
    // under the new key) and returns a v2-bound result.
    let v2_body = service.handle_line(&line);
    let stats = service.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (1, 2),
        "reload must turn the repeat into a miss"
    );
    assert!(v2_body.contains("\"cal_version\":2"), "{v2_body}");
    assert_ne!(
        v1_body, v2_body,
        "a drifted snapshot changes the result context"
    );

    // Plain-codar entries key on the snapshot version too: routing,
    // reloading, and re-routing gives miss → miss, never a stale hit.
    let plain = route_line("q5", "codar", None, GHZ3);
    let before = service.handle_line(&plain);
    service.handle_line(&set_line("q5", 3));
    let after = service.handle_line(&plain);
    let stats = service.cache_stats();
    assert_eq!(stats.hits, 1, "no stale plain-codar hit after reload");
    assert!(before.contains("\"cal_version\":2") && after.contains("\"cal_version\":3"));
}

/// Different alphas are different cache entries (folded into the key),
/// and the eps context changes with alpha when the routes differ.
#[test]
fn alpha_is_part_of_the_cache_key() {
    let service = Service::start(ServiceConfig::default());
    service.handle_line(&set_line("q20", 9));
    let a = service.handle_line(&route_line("q20", "codar-cal", Some(0.0), GHZ3));
    let b = service.handle_line(&route_line("q20", "codar-cal", Some(1.0), GHZ3));
    assert!(a.contains("\"status\":\"ok\"") && b.contains("\"status\":\"ok\""));
    let stats = service.cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 2),
        "distinct alphas must not share an entry"
    );
}

/// Byte-stream determinism across seeded reruns: the full sequence
/// (calibration sets included) replayed against two fresh daemons
/// yields identical byte streams, cache on or off.
#[test]
fn calibration_streams_are_deterministic_across_reruns() {
    let lines = [
        set_line("q5", 7),
        route_line("q5", "codar-cal", Some(0.5), GHZ3),
        route_line("q5", "codar", None, GHZ3),
        set_line("q5", 8),
        route_line("q5", "codar-cal", Some(0.5), GHZ3),
        "{\"type\":\"calibration\",\"action\":\"get\",\"device\":\"q5\"}".to_string(),
    ];
    let stream = |config: ServiceConfig| -> String {
        let service = Service::start(config);
        lines
            .iter()
            .map(|line| service.handle_line(line) + "\n")
            .collect()
    };
    let a = stream(ServiceConfig::default());
    let b = stream(ServiceConfig::default());
    assert_eq!(a, b, "seeded reruns must be byte-identical");
    let uncached = stream(ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    assert_eq!(a, uncached, "the cache must be response-transparent");
}

/// An uploaded snapshot document round-trips through set → get, and
/// re-uploading the same version is rejected (it could serve stale
/// cache entries).
#[test]
fn uploaded_documents_round_trip_and_versions_must_bump() {
    let service = Service::start(ServiceConfig::default());
    service.handle_line(&set_line("q5", 5));
    let get =
        service.handle_line("{\"type\":\"calibration\",\"action\":\"get\",\"device\":\"q5\"}");
    let parsed = Json::parse(&get).unwrap();
    let document = parsed
        .get("snapshot")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let version = parsed.get("version").and_then(Json::as_u64).unwrap();
    assert_eq!(version, 1);

    // Same version back → rejected.
    let same = format!(
        "{{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q5\",\"snapshot\":{}}}",
        codar_service::json::escape(&document)
    );
    let rejected = service.handle_line(&same);
    assert!(rejected.contains("does not exceed"), "{rejected}");

    // Bumped version → accepted, and get returns the new document.
    let bumped_doc = document.replace("\"version\": 1", "\"version\": 9");
    let bumped = format!(
        "{{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q5\",\"snapshot\":{}}}",
        codar_service::json::escape(&bumped_doc)
    );
    let ack = service.handle_line(&bumped);
    assert!(
        ack.contains("\"version\":9") && ack.contains("\"replaced\":true"),
        "{ack}"
    );
    let get2 =
        service.handle_line("{\"type\":\"calibration\",\"action\":\"get\",\"device\":\"q5\"}");
    assert!(get2.contains("\"version\":9"));

    // Versions are a high-water mark, not just "different from the
    // active one": re-uploading a *previously used* version (here 1,
    // while 9 is active) must be rejected — its cache entries may
    // still be resident and would be served against the new content.
    let old_again = service.handle_line(&same);
    assert!(old_again.contains("does not exceed"), "{old_again}");

    // A document for the wrong device is rejected.
    let wrong = format!(
        "{{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q20\",\"snapshot\":{}}}",
        codar_service::json::escape(&bumped_doc)
    );
    let err = service.handle_line(&wrong);
    assert!(err.contains("targets"), "{err}");
}

/// The concrete staleness scenario behind the high-water rule: cache a
/// route under version N, move past it, then try to bring N back —
/// the daemon must refuse rather than let the old cached route be
/// served against new snapshot content.
#[test]
fn resurrected_versions_cannot_serve_stale_cache_entries() {
    let service = Service::start(ServiceConfig::default());
    service.handle_line(&set_line("q5", 1));
    let doc_v1 = {
        let get =
            service.handle_line("{\"type\":\"calibration\",\"action\":\"get\",\"device\":\"q5\"}");
        Json::parse(&get)
            .unwrap()
            .get("snapshot")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    // Cache a route under version 1, then advance to version 2.
    let line = route_line("q5", "codar-cal", Some(1.0), GHZ3);
    service.handle_line(&line);
    service.handle_line(&set_line("q5", 2));
    // Re-uploading the v1 document (even with different content) is
    // refused: its key space still holds the cached v1 route.
    let resurrect = format!(
        "{{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q5\",\"snapshot\":{}}}",
        codar_service::json::escape(&doc_v1)
    );
    let refused = service.handle_line(&resurrect);
    assert!(refused.contains("does not exceed"), "{refused}");
    // The active snapshot is still v2.
    let get =
        service.handle_line("{\"type\":\"calibration\",\"action\":\"get\",\"device\":\"q5\"}");
    assert!(get.contains("\"version\":2"), "{get}");
}
