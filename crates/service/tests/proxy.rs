//! The sharded-tier contracts: shard count is invisible (byte-identical
//! response streams through 1, 2 and 4 backends), seeded kill+restart
//! runs replay byte-identically, and every transport fault kind —
//! delay, hang, refuse-accept, close-after-N, kill — still yields
//! exactly one well-formed reply per client line, byte-equal to a
//! direct single-daemon run. These are the determinism gate and fault
//! matrix the CI proxy smoke re-checks over real processes.

use codar_benchmarks::generators;
use codar_circuit::from_qasm::circuit_to_qasm;
use codar_service::fuzz::InvariantChecker;
use codar_service::json::{escape, Json};
use codar_service::protocol::error_body;
use codar_service::proxy::{Proxy, ProxyConfig};
use codar_service::{FaultPlan, Service, ServiceConfig, ShardFleet};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic circuit for request `pick` (3–5 qubits, so it
/// fits every catalog device).
fn circuit_qasm(pick: u64) -> String {
    let n = 3 + (pick % 3) as usize;
    let gates = 8 + (pick % 24) as usize;
    circuit_to_qasm(&generators::random_clifford_t(n, gates, pick % 7)).expect("serializes")
}

fn route_line(id: u64, device: &str, router: &str, pick: u64) -> String {
    format!(
        "{{\"type\":\"route\",\"id\":{id},\"device\":\"{device}\",\
         \"router\":\"{router}\",\"circuit\":{}}}",
        escape(&circuit_qasm(pick))
    )
}

/// Proxy config for in-process tests: prober parked (an hour) so fault
/// request indices count exactly the lines the tests send, and
/// microsecond backoff so retry storms don't slow the suite.
fn tier_config(backends: Vec<String>) -> ProxyConfig {
    ProxyConfig {
        backends,
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(2000),
        retries: 3,
        backoff_base: Duration::from_micros(100),
        backoff_cap: Duration::from_micros(400),
        probe_interval: Duration::from_secs(3600),
        seed: 7,
        trace_log: None,
    }
}

/// The deterministic forwarded-verb stream of the shard-count gate:
/// routes over a small circuit space (repeats → cache hits on the
/// owning shard), error paths and `devices` probes. No
/// stats/metrics/health — the proxy answers those itself, with its own
/// counters, so they are legitimately tier-dependent.
fn request_stream(seed: u64, range: std::ops::Range<u64>) -> Vec<String> {
    range
        .map(|i| {
            let x =
                (seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            match x % 10 {
                0..=6 => {
                    let device = ["q5", "q16", "q20"][(x / 10 % 3) as usize];
                    let router = ["codar", "sabre", "greedy"][(x / 30 % 3) as usize];
                    route_line(i, device, router, x / 90 % 6)
                }
                7 => format!(
                    "{{\"type\":\"route\",\"id\":{i},\"device\":\"nonexistent\",\"circuit\":\"x\"}}"
                ),
                8 => format!(
                    "{{\"type\":\"route\",\"id\":{i},\"device\":\"q5\",\"circuit\":\"qreg q[;\"}}"
                ),
                _ => format!("{{\"type\":\"devices\",\"id\":{i}}}"),
            }
        })
        .collect()
}

fn u64_field(body: &str, key: &str) -> u64 {
    Json::parse(body)
        .expect(body)
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no integer `{key}` in {body}"))
}

/// The determinism gate: the same request stream through a 1-, 2- and
/// 4-shard tier produces the response stream of a direct single
/// daemon, byte for byte and in order — clients cannot tell how many
/// shards answered, or that a proxy was there at all.
#[test]
fn shard_count_one_two_four_is_byte_invisible() {
    let base = ServiceConfig::default();
    let lines = request_stream(0xC0DA, 0..40);
    let direct = Service::start(base.clone());
    let reference: Vec<String> = lines.iter().map(|l| direct.handle_line(l)).collect();
    for shards in [1usize, 2, 4] {
        let mut fleet = ShardFleet::start(&base, &vec![None; shards], Duration::from_millis(300))
            .expect("fleet starts");
        let proxy = Proxy::start(tier_config(fleet.addrs())).expect("proxy starts");
        let mut conns = proxy.connections();
        let replies: Vec<String> = lines
            .iter()
            .map(|l| proxy.handle_line(l, &mut conns))
            .collect();
        assert_eq!(
            replies, reference,
            "{shards}-shard tier is not byte-transparent"
        );
        if shards == 4 {
            // The tier really spread the keyspace: more than one shard
            // served traffic (HRW would be pointless otherwise).
            let metrics = proxy.metrics_body();
            let spread = (0..shards)
                .filter(|i| u64_field(&metrics, &format!("backend_{i}_served")) > 0)
                .count();
            assert!(spread >= 2, "only {spread} of 4 shards served: {metrics}");
        }
        fleet.shutdown();
    }
}

/// One seeded kill+restart scenario: shard 1 is armed to die on its
/// first request, the stream runs, the dead shard is revived
/// supervisor-style mid-run, and the stream continues. Returns the full
/// in-order response stream.
fn kill_restart_run(before: &[String], after: &[String]) -> Vec<String> {
    let base = ServiceConfig::default();
    let plans = [
        None,
        Some(FaultPlan::parse("kill@1").expect("plan parses")),
        None,
    ];
    let mut fleet =
        ShardFleet::start(&base, &plans, Duration::from_millis(300)).expect("fleet starts");
    let proxy = Proxy::start(tier_config(fleet.addrs())).expect("proxy starts");
    let mut replies = Vec::new();
    let mut conns = proxy.connections();
    for line in before {
        replies.push(proxy.handle_line(line, &mut conns));
    }
    if !fleet.is_killed(1) {
        // Placement is port-dependent (ephemeral ports feed the HRW
        // hash), so on rare streams shard 1 never sees a request.
        // Retire it gracefully so the restart below has a dead shard
        // either way — the byte contract must hold regardless.
        let _ = fleet.service(1).handle_line("{\"type\":\"shutdown\"}");
    }
    fleet.restart(1).expect("shard 1 rebinds its port");
    proxy.set_alive(1, true);
    // Fresh pool: the old shard-1 connection died with the process.
    let mut conns = proxy.connections();
    for line in after {
        replies.push(proxy.handle_line(line, &mut conns));
    }
    fleet.shutdown();
    replies
}

/// The rerun gate: two full executions of the seeded kill+restart
/// scenario produce byte-identical response streams — and both match a
/// fault-free direct daemon, so the crash never leaked into a reply.
#[test]
fn seeded_kill_restart_reruns_are_byte_identical() {
    // Mostly-distinct circuits so the armed shard almost surely owns
    // some keys before the restart point.
    let before = request_stream(0xFA17, 0..30);
    let after = request_stream(0xFA17, 30..48);
    let first = kill_restart_run(&before, &after);
    let second = kill_restart_run(&before, &after);
    assert_eq!(first, second, "kill+restart reruns diverged");
    let direct = Service::start(ServiceConfig::default());
    let reference: Vec<String> = before
        .iter()
        .chain(after.iter())
        .map(|l| direct.handle_line(l))
        .collect();
    assert_eq!(first, reference, "crash recovery leaked into the bytes");
}

/// The fault matrix: each fault kind armed on one of two shards, a
/// stream aimed so the armed shard sees traffic, and every line must
/// come back as exactly one well-formed reply (the proxy-aware
/// invariant checker judges shape) byte-equal to a direct daemon.
/// Kill, torn frames and hangs must additionally show up as failovers.
#[test]
fn every_fault_kind_yields_one_well_formed_reply_per_line() {
    let base = ServiceConfig::default();
    let direct = Service::start(base.clone());
    for (spec, must_fail_over) in [
        ("delay:40@1", false),
        ("hang:600@1", true),
        ("refuse@1", false),
        ("close:5@1", true),
        ("kill@1", true),
    ] {
        let plans = [Some(FaultPlan::parse(spec).expect(spec)), None];
        let mut fleet =
            ShardFleet::start(&base, &plans, Duration::from_millis(300)).expect("fleet starts");
        let proxy = Proxy::start(ProxyConfig {
            // Shorter than the hang so it surfaces as a read timeout.
            read_timeout: Duration::from_millis(250),
            ..tier_config(fleet.addrs())
        })
        .expect("proxy starts");
        // Interleave lines owned by the armed shard with lines owned by
        // the clean one, so the fault definitely fires *and* traffic
        // keeps flowing around it.
        let pool: Vec<String> = (0..20).map(|i| route_line(i, "q20", "codar", i)).collect();
        let (armed, clean): (Vec<_>, Vec<_>) = pool
            .into_iter()
            .partition(|line| proxy.preferred_backend(line) == Some(0));
        assert!(
            !armed.is_empty() && !clean.is_empty(),
            "{spec}: 20 keys all landed on one shard"
        );
        let mut lines = Vec::new();
        for pair in armed.iter().zip(clean.iter()) {
            lines.push(pair.0.clone());
            lines.push(pair.1.clone());
        }
        let mut checker = InvariantChecker::new();
        let mut conns = proxy.connections();
        for line in &lines {
            let reply = proxy.handle_line(line, &mut conns);
            checker
                .check(line, &reply)
                .unwrap_or_else(|e| panic!("{spec}: invariant violation: {e}"));
            assert_eq!(
                reply,
                direct.handle_line(line),
                "{spec}: reply bytes diverged"
            );
        }
        let failovers = u64_field(&proxy.stats_body(), "failovers");
        if must_fail_over {
            assert!(failovers >= 1, "{spec}: expected a failover, saw none");
        }
        fleet.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Retry idempotency: a request whose reply is killed mid-frame
    /// (close-after-N on the owning shard) is retried on the failover
    /// shard and answered byte-identically to a fault-free daemon —
    /// the client never learns its first attempt died.
    #[test]
    fn torn_reply_fails_over_to_byte_identical(seed in 0u64..10_000) {
        let base = ServiceConfig::default();
        // Route replies run hundreds of bytes; any cut this size tears
        // the frame rather than completing it.
        let cut = 1 + seed % 40;
        let plans = [Some(FaultPlan::parse(&format!("close:{cut}@1")).expect("plan parses")), None];
        let mut fleet = ShardFleet::start(&base, &plans, Duration::from_millis(300))
            .expect("fleet starts");
        let proxy = Proxy::start(tier_config(fleet.addrs())).expect("proxy starts");
        // Walk seed-derived circuits until one's canonical key lands on
        // the armed shard (placement hashes ephemeral ports, so the hit
        // must be found at runtime; each try lands there with p≈1/2).
        let mut aimed = None;
        for probe in 0..64u64 {
            let candidate = route_line(seed, "q16", "codar", seed.wrapping_mul(64) + probe);
            if proxy.preferred_backend(&candidate) == Some(0) {
                aimed = Some(candidate);
                break;
            }
        }
        let line = aimed.expect("64 candidate keys never landed on the armed shard");
        let direct = Service::start(base.clone());
        let expected = direct.handle_line(&line);
        let mut conns = proxy.connections();
        let reply = proxy.handle_line(&line, &mut conns);
        prop_assert_eq!(&reply, &expected, "failover reply diverged (cut {})", cut);
        prop_assert!(u64_field(&proxy.stats_body(), "failovers") >= 1,
            "the torn frame never registered as a failover");
        // And the retried key keeps answering from the survivor.
        let again = proxy.handle_line(&line, &mut conns);
        prop_assert_eq!(&again, &expected);
        fleet.shutdown();
    }
}

/// Picks (at runtime — placement hashes ephemeral ports) a route line
/// whose canonical key the fake backend at index 0 owns.
fn line_owned_by_backend_zero(proxy: &Proxy) -> String {
    for pick in 0..64 {
        let candidate = route_line(9, "q5", "codar", pick);
        if proxy.preferred_backend(&candidate) == Some(0) {
            return candidate;
        }
    }
    panic!("64 candidate keys never landed on backend 0");
}

/// The truncation sweep: a fake backend that cuts the canned reply at
/// every byte offset — including 0 (instant EOF) and full length (a
/// complete frame) — must never leak a torn or missing line to the
/// client: every offset yields the exact reference reply, served by
/// the fake itself only when the frame arrived whole.
#[test]
fn every_truncation_offset_is_survived() {
    let base = ServiceConfig::default();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake backend");
    let fake_addr = listener.local_addr().expect("fake addr").to_string();
    let mut fleet =
        ShardFleet::start(&base, &[None], Duration::from_millis(300)).expect("fleet starts");
    let proxy =
        Proxy::start(tier_config(vec![fake_addr, fleet.addrs()[0].clone()])).expect("proxy starts");
    let line = line_owned_by_backend_zero(&proxy);
    let direct = Service::start(base.clone());
    let expected = direct.handle_line(&line);
    let canned: Vec<u8> = format!("{expected}\n").into_bytes();
    let offset = Arc::new(AtomicUsize::new(0));
    {
        let offset = Arc::clone(&offset);
        let canned = canned.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let Ok(clone) = stream.try_clone() else {
                    continue;
                };
                let mut reader = BufReader::new(clone);
                let mut request = String::new();
                if reader.read_line(&mut request).is_err() {
                    continue;
                }
                let cut = offset.load(Ordering::SeqCst).min(canned.len());
                let mut writer = stream;
                let _ = writer.write_all(&canned[..cut]);
                let _ = writer.flush();
                // Dropping the stream closes it: a torn frame for every
                // cut short of the full canned reply.
            }
        });
    }
    for cut in 0..=canned.len() {
        offset.store(cut, Ordering::SeqCst);
        // Revive the fake (the previous iteration demoted it) and
        // start a fresh pool so it is dialed again.
        proxy.set_alive(0, true);
        proxy.set_alive(1, true);
        let mut conns = proxy.connections();
        let reply = proxy.handle_line(&line, &mut conns);
        assert_eq!(reply, expected, "offset {cut}/{} leaked", canned.len());
    }
    fleet.shutdown();
}

/// A backend answering well-formed `draining` refusals (what a real
/// shard's drain path emits) is taken out of rotation and the request
/// fails over — the refusal line itself never reaches the client.
#[test]
fn draining_refusal_fails_over_cleanly() {
    let base = ServiceConfig::default();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake backend");
    let fake_addr = listener.local_addr().expect("fake addr").to_string();
    let mut fleet =
        ShardFleet::start(&base, &[None], Duration::from_millis(300)).expect("fleet starts");
    let proxy =
        Proxy::start(tier_config(vec![fake_addr, fleet.addrs()[0].clone()])).expect("proxy starts");
    let line = line_owned_by_backend_zero(&proxy);
    std::thread::spawn(move || {
        let refusal = format!("{}\n", error_body("draining: going away"));
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let Ok(clone) = stream.try_clone() else {
                continue;
            };
            let mut reader = BufReader::new(clone);
            let mut writer = stream;
            let mut request = String::new();
            while matches!(reader.read_line(&mut request), Ok(n) if n > 0) {
                if writer.write_all(refusal.as_bytes()).is_err() || writer.flush().is_err() {
                    break;
                }
                request.clear();
            }
        }
    });
    let direct = Service::start(base.clone());
    let expected = direct.handle_line(&line);
    let mut conns = proxy.connections();
    let reply = proxy.handle_line(&line, &mut conns);
    assert_eq!(reply, expected, "the draining refusal leaked to the client");
    assert!(
        !proxy.is_alive(0),
        "the draining backend stayed in rotation"
    );
    assert!(u64_field(&proxy.stats_body(), "retries") >= 1);
    fleet.shutdown();
}

/// `shutdown` through the proxy drains the whole deployment: every
/// backend sees the broadcast, the proxy acks it, and the tier stops.
#[test]
fn shutdown_broadcast_reaches_every_shard() {
    let base = ServiceConfig::default();
    let mut fleet = ShardFleet::start(&base, &[None, None, None], Duration::from_millis(300))
        .expect("fleet starts");
    let proxy = Proxy::start(tier_config(fleet.addrs())).expect("proxy starts");
    let mut conns = proxy.connections();
    let reply = proxy.handle_line("{\"type\":\"shutdown\",\"id\":1}", &mut conns);
    let parsed = Json::parse(&reply).expect(&reply);
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
    assert!(proxy.shutdown_requested());
    for i in 0..3 {
        assert!(
            fleet.service(i).shutdown_requested(),
            "shard {i} missed the shutdown broadcast"
        );
    }
    fleet.shutdown();
}
