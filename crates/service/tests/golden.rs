//! Golden-response regression test for `coded --stdin`.
//!
//! Drives the daemon binary end to end over a fixtures file of NDJSON
//! requests (routes on three routers, a cache-hit repeat with
//! different formatting, every error path, `devices`/`stats`/
//! `shutdown`) and diffs stdout byte-for-byte against the committed
//! golden responses — the same harness pattern as
//! `crates/bench/tests/golden.rs`. Regenerate after an intentional
//! protocol change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p codar-service --test golden
//! ```

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_coded_stdin(extra_args: &[&str]) -> String {
    let requests = std::fs::File::open(fixture("requests.ndjson")).expect("fixtures file");
    let output = Command::new(env!("CARGO_BIN_EXE_coded"))
        .arg("--stdin")
        .args(extra_args)
        .stdin(Stdio::from(requests))
        .output()
        .expect("spawn coded");
    assert!(
        output.status.success(),
        "coded --stdin {extra_args:?} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("responses are UTF-8")
}

#[test]
fn stdin_responses_match_golden_and_are_cache_invariant() {
    let first = run_coded_stdin(&[]);
    // Replays and a cache-disabled daemon must produce the same bytes.
    assert_eq!(
        first,
        run_coded_stdin(&[]),
        "two runs over the same requests diverged"
    );
    let uncached = run_coded_stdin(&["--cache-capacity", "0"]);
    assert_eq!(
        first.lines().count(),
        uncached.lines().count(),
        "cache-off run produced a different number of responses"
    );
    for (a, b) in first.lines().zip(uncached.lines()) {
        // stats and metrics lines legitimately differ (they report
        // the cache); everything else must not.
        let reveals_cache = |line: &str| {
            line.contains("\"type\":\"stats\"") || line.contains("\"type\":\"metrics\"")
        };
        if reveals_cache(a) && reveals_cache(b) {
            continue;
        }
        assert_eq!(a, b, "cache-off run diverged on a non-stats response");
    }

    let path = fixture("responses.golden.ndjson");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &first).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        expected, first,
        "responses drifted; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn malformed_cli_flags_fail_loudly() {
    for args in [
        &["--workers", "many"][..],
        &["--cache-capacity"][..],
        &["--seed", "-3"][..],
        &["--bogus"][..],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_coded"))
            .args(args)
            .output()
            .expect("spawn coded");
        assert!(
            !output.status.success(),
            "coded {args:?} must exit non-zero"
        );
        assert!(
            !output.stderr.is_empty(),
            "coded {args:?} must print an error"
        );
    }
}

#[test]
fn loadgen_cli_is_strict_too() {
    for args in [
        &["--requests", "ten"][..],
        &["--repeat-ratio", "often"][..],
        &["--connect"][..],
        &["--whatever"][..],
        // Daemon-config flags shape the in-process daemon only; with
        // --connect they would silently do nothing, so they must be
        // rejected (in either flag order).
        &["--connect", "127.0.0.1:1", "--cache-capacity", "0"][..],
        &["--workers", "2", "--connect", "127.0.0.1:1"][..],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
            .args(args)
            .output()
            .expect("spawn loadgen");
        assert!(
            !output.status.success(),
            "loadgen {args:?} must exit non-zero"
        );
        assert!(
            !output.stderr.is_empty(),
            "loadgen {args:?} must print an error"
        );
    }
}

#[test]
fn loadgen_summary_is_deterministic_across_runs() {
    // The CI determinism check, as a test: identical summary JSON on
    // stdout for two identical seeded runs (latency goes to stderr).
    let run = || {
        let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
            .args(["--requests", "40", "--seed", "7", "--max-qubits", "5"])
            .output()
            .expect("spawn loadgen");
        assert!(
            output.status.success(),
            "loadgen exited with {:?}\nstderr:\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("summary is UTF-8")
    };
    let first = run();
    assert_eq!(first, run(), "loadgen summaries diverged across runs");
    assert!(first.contains("\"cache_hit_rate\""), "{first}");
}
