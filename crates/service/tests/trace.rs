//! Trace determinism gates.
//!
//! The tracing contract splits structure from measurement: the span
//! *tree* (ordinals, parents, kinds, names, details, minted-id stream)
//! is a pure function of the request stream, while wall time lives
//! only in `t_us`/`dur_us` (zeroed by `trace::normalize_line`) and in
//! the histogram sums/buckets (zeroed by `fuzz::normalize_reply`).
//! These tests replay one seeded stream twice and diff everything the
//! contract says must match — and check that arming the trace log
//! changes nothing an untraced client can see.

use codar_service::fuzz::normalize_reply;
use codar_service::trace::normalize_line;
use codar_service::{Service, ServiceConfig};

fn temp_log(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("codar_trace_it_{}_{}", tag, std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn traced_service(tag: &str) -> (Service, String) {
    let path = temp_log(tag);
    let service = Service::start(ServiceConfig {
        trace_log: Some(path.clone()),
        ..ServiceConfig::default()
    });
    (service, path)
}

/// A stream exercising every span shape: minted route miss + hit,
/// client-traced route, traced and untraced control probes, histogram
/// metrics, a bad-device error, a QASM error, an envelope rejection,
/// and a `trace` readback.
const STREAM: &[&str] = &[
    r#"{"type":"route","device":"q20","circuit":"qreg q[2]; cx q[0], q[1];"}"#,
    r#"{"type":"route","device":"q20","circuit":"qreg q[2]; cx q[0], q[1];"}"#,
    r#"{"type":"route","trace":"cli-1","device":"q5","circuit":"qreg q[3]; cx q[0], q[2];"}"#,
    r#"{"type":"stats","trace":"cli-2"}"#,
    r#"{"type":"health"}"#,
    r#"{"type":"metrics","hist":true}"#,
    r#"{"type":"route","device":"nope","circuit":"qreg q[1];"}"#,
    r#"{"type":"route","trace":"cli-3","device":"q20","circuit":"qreg q["}"#,
    r#"not json at all"#,
    r#"{"type":"trace","n":64}"#,
];

#[test]
fn traced_replay_has_deterministic_normalized_structure() {
    let run = |tag: &str| -> (Vec<String>, Vec<String>, String) {
        let (service, path) = traced_service(tag);
        let replies: Vec<String> = STREAM
            .iter()
            .map(|line| normalize_reply(&service.handle_line(line)))
            .collect();
        let spans: Vec<String> = service
            .recent_spans(usize::MAX)
            .iter()
            .map(|l| normalize_line(l))
            .collect();
        let log: String = std::fs::read_to_string(&path)
            .expect("trace log readable")
            .lines()
            .map(normalize_line)
            .collect::<Vec<_>>()
            .join("\n");
        let _ = std::fs::remove_file(&path);
        (replies, spans, log)
    };
    let (replies_a, spans_a, log_a) = run("det_a");
    let (replies_b, spans_b, log_b) = run("det_b");
    assert_eq!(replies_a, replies_b, "normalized replies diverged");
    assert_eq!(spans_a, spans_b, "normalized ring spans diverged");
    assert_eq!(log_a, log_b, "normalized trace logs diverged");

    // The stream mints for exactly the three untraced routes, in
    // arrival order, and echoes exactly the client-supplied ids.
    let all = spans_a.join("\n");
    for id in ["t-1", "t-2", "t-3", "cli-1", "cli-2", "cli-3"] {
        assert!(all.contains(&format!("\"trace\":\"{id}\"")), "missing {id}");
    }
    assert!(
        !all.contains("\"trace\":\"t-4\""),
        "minted beyond the routes"
    );
    // Roots carry the decided outcome.
    assert!(all.contains("\"name\":\"route\",\"detail\":\"ok\""));
    assert!(all.contains("\"name\":\"route\",\"detail\":\"error\""));
    // Replies never leak a minted id — except the `trace` readback
    // (the final stream line), whose whole point is serving the
    // recorded span objects back.
    assert!(
        replies_a[..replies_a.len() - 1]
            .iter()
            .all(|r| !r.contains("\"trace\":\"t-")),
        "minted id escaped into a reply body"
    );
}

/// Arming `--trace-log` must be invisible to untraced clients: same
/// stream, one daemon with a sink and one without, byte-identical
/// replies (after measurement normalization for the histogram probe).
#[test]
fn arming_the_trace_log_does_not_change_untraced_replies() {
    let stream = [
        r#"{"type":"route","device":"q20","circuit":"qreg q[2]; cx q[0], q[1];"}"#,
        r#"{"type":"route","device":"q20","circuit":"qreg q[2]; cx q[0], q[1];"}"#,
        r#"{"type":"stats"}"#,
        r#"{"type":"health"}"#,
        r#"{"type":"metrics","hist":true}"#,
        r#"{"type":"route","device":"nope","circuit":"qreg q[1];"}"#,
    ];
    let (armed, path) = traced_service("invisible");
    let unarmed = Service::start(ServiceConfig::default());
    for line in stream {
        let a = armed.handle_line(line);
        let b = unarmed.handle_line(line);
        assert!(!a.contains("\"trace\""), "untraced reply grew a trace: {a}");
        assert_eq!(
            normalize_reply(&a),
            normalize_reply(&b),
            "armed and unarmed replies diverged for {line}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Without a sink the daemon is id-echo-only: the `"trace"` field
/// still round-trips, but no span tree is built, nothing is minted,
/// and the `trace` verb serves an empty ring.
#[test]
fn without_a_sink_tracing_is_echo_only() {
    let service = Service::start(ServiceConfig::default());
    let reply = service.handle_line(r#"{"type":"stats","trace":"probe-9"}"#);
    assert!(
        reply.contains("\"trace\":\"probe-9\""),
        "echo lost: {reply}"
    );
    let routed = service
        .handle_line(r#"{"type":"route","trace":"r-1","device":"q20","circuit":"qreg q[1];"}"#);
    assert!(routed.contains("\"trace\":\"r-1\""), "echo lost: {routed}");
    assert_eq!(service.recent_spans(usize::MAX), Vec::<String>::new());
    let readback = service.handle_line(r#"{"type":"trace"}"#);
    assert!(
        readback.contains("\"count\":0,\"spans\":[]"),
        "unarmed ring was not empty: {readback}"
    );
}
