//! Protocol robustness: the hostile NDJSON corpus.
//!
//! `tests/fixtures/hostile.ndjson` is a checked-in file of adversarial
//! request lines — deep nesting, mispaired surrogate escapes, huge and
//! malformed numbers, truncated frames, raw control characters,
//! oversized keys. Replayed against the real `coded --stdin` binary,
//! the daemon must (a) never panic or crash, (b) emit exactly one
//! well-formed JSON reply per line, and (c) reply deterministically.
//! (The corpus is valid UTF-8 by construction: the line reader
//! terminates the stream on invalid UTF-8 before any request parsing
//! runs, which is transport framing, not protocol handling.)

use codar_service::json::Json;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hostile.ndjson")
}

fn replay() -> String {
    let corpus = std::fs::File::open(corpus_path()).expect("hostile corpus fixture");
    let output = Command::new(env!("CARGO_BIN_EXE_coded"))
        .arg("--stdin")
        .stdin(Stdio::from(corpus))
        .output()
        .expect("spawn coded");
    assert!(
        output.status.success(),
        "coded --stdin crashed on the hostile corpus: {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("replies are UTF-8")
}

#[test]
fn hostile_corpus_gets_one_well_formed_error_reply_per_line() {
    let corpus = std::fs::read_to_string(corpus_path()).expect("read corpus");
    let requests: Vec<&str> = corpus.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(requests.len() >= 30, "corpus shrank to {}", requests.len());

    let replies = replay();
    let reply_lines: Vec<&str> = replies.lines().collect();
    assert_eq!(
        reply_lines.len(),
        requests.len(),
        "exactly one reply per corpus line"
    );
    for (request, reply) in requests.iter().zip(&reply_lines) {
        let parsed = Json::parse(reply)
            .unwrap_or_else(|e| panic!("reply to `{request}` is not JSON ({e}): {reply}"));
        let status = parsed.get("status").and_then(Json::as_str);
        assert!(
            status.is_some(),
            "reply to `{request}` lacks a status: {reply}"
        );
        // Every corpus line is hostile; none may succeed as a route.
        assert_ne!(
            parsed.get("type").and_then(Json::as_str),
            Some("route"),
            "hostile line `{request}` routed successfully: {reply}"
        );
    }

    // Deterministic: the same corpus replays to the same bytes, up to
    // measurement normalization (the corpus probes `"hist":true`, whose
    // latency sums and bucket rows are wall-clock; everything decided —
    // statuses, counts, echoes, field order — stays byte-checked).
    let normalized = |text: &str| -> String {
        text.lines()
            .map(codar_service::fuzz::normalize_reply)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        normalized(&replies),
        normalized(&replay()),
        "hostile replies diverged across runs"
    );
}
