//! The daemon core: request lifecycle, NDJSON stream serving, TCP.
//!
//! Request lifecycle (see ARCHITECTURE.md, "Service layer"):
//!
//! ```text
//! accept line → parse → [route?] cache probe ──hit──────────────┐
//!                          │ miss                               │
//!                          ▼                                    ▼
//!                    bounded queue ──full──► "overloaded"    respond
//!                          │
//!                          ▼
//!                 worker (per-thread scratch)
//!                 route → verify → serialize
//!                          │
//!                          ▼
//!                    cache fill → respond
//! ```
//!
//! A [`Service`] is cheaply cloneable (an `Arc` around the shared
//! state); [`Service::handle_line`] is the synchronous core used by
//! every front end — the `--stdin` NDJSON mode, per-connection TCP
//! threads and the in-process loadgen transport. Responses for one
//! stream are always emitted in request order because each stream is
//! handled by one thread; concurrent streams share the worker pool and
//! the cache.

use crate::cache::{fnv1a_extend, key_material, CacheStats, ShardedCache, FNV_OFFSET};
use crate::faults::{FaultAction, FaultInjector, FaultPlan, KILL_EXIT_CODE};
use crate::json::escape;
use crate::metrics::{ServiceMetrics, PHASE_NAMES, VERB_NAMES};
use crate::protocol::{
    attach_id, attach_trace, calibration_get_body, calibration_set_body, error_body,
    overloaded_body, shutdown_body, CalAction, CalPayload, Request, TRACE_REPLY_DEFAULT,
    TRACE_REPLY_MAX,
};
use crate::queue::{Bounded, PushError};
use crate::trace::{phase_sample, TraceCtx, TraceRecorder};
use crate::worker::{spawn_pool, RouteJob};
use codar_arch::{CalibrationSnapshot, Device, FidelityModel};
use codar_circuit::decompose::decompose_three_qubit_gates;
use codar_circuit::from_qasm::{circuit_from_flat, circuit_to_qasm};
use codar_engine::{Backend, RouterKind, RouterVariant};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default calibration blend weight of `codar-cal` route requests
/// that do not pass an explicit `alpha`.
pub const DEFAULT_CAL_ALPHA: f64 = 0.5;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Routing worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Bounded request-queue capacity; a full queue answers
    /// `overloaded` instead of buffering.
    pub queue_capacity: usize,
    /// Seed of the reverse-traversal initial placement (part of the
    /// cache key: different seeds are different results).
    pub seed: u64,
    /// Deterministic transport-fault schedule (`None` = no faults,
    /// the production shape). See [`crate::faults`].
    pub fault_plan: Option<FaultPlan>,
    /// Whether a `kill` fault exits the process (`coded
    /// --fault-plan`) or merely latches [`Service::fault_killed`]
    /// (the in-process harness).
    pub fault_exit: bool,
    /// NDJSON trace log path (`coded --trace-log`). When set, every
    /// route/calibration request is traced (ids are minted for
    /// requests that carry none) and committed span trees are
    /// appended to this file. `None` keeps the untraced hot path:
    /// only requests carrying a `"trace"` field build span trees,
    /// and those stay in the in-memory rings.
    pub trace_log: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            cache_capacity: 1024,
            cache_shards: 8,
            queue_capacity: 64,
            seed: 0,
            fault_plan: None,
            fault_exit: false,
            trace_log: None,
        }
    }
}

/// The per-device calibration state behind one mutex. The lock is
/// held only for map reads and inserts — document parsing and model
/// derivation happen outside it, so a large upload cannot stall
/// concurrent route traffic.
#[derive(Default)]
struct CalibrationStore {
    /// Active snapshot + its (precomputed) EPS model per canonical
    /// device name; workers share these `Arc`s instead of re-deriving
    /// the per-edge tables on every cache miss.
    active: HashMap<String, (Arc<CalibrationSnapshot>, Arc<FidelityModel>)>,
    /// Highest snapshot version ever active per device. Uploads must
    /// *exceed* it (not merely differ from the active one): cache
    /// entries of any previously-active version may still be
    /// resident, so re-using an old number could serve them against
    /// new snapshot content.
    high_water: HashMap<String, u64>,
}

struct Inner {
    config: ServiceConfig,
    /// Preset catalog: (lookup key, shared device). Devices are built
    /// once at startup so their all-pairs distance matrices are paid
    /// once, never per request.
    catalog: Vec<(String, Arc<Device>)>,
    cache: Arc<ShardedCache>,
    metrics: Arc<ServiceMetrics>,
    queue: Arc<Bounded<RouteJob>>,
    /// Active calibration snapshots. The snapshot's `version` is
    /// folded into every route cache key for that device, so replacing
    /// a snapshot atomically invalidates the stale cached routes (they
    /// simply stop being probed).
    calibration: Mutex<CalibrationStore>,
    shutdown: AtomicBool,
    /// The transport-fault injector, present iff the config carries a
    /// plan. Serve loops consult it per request line; `handle_line`
    /// never does (faults model the transport, not the router).
    faults: Option<FaultInjector>,
    /// Per-thread span rings + optional NDJSON sink (see
    /// [`crate::trace`]). Minting is on exactly when the config
    /// carries a `trace_log`.
    recorder: TraceRecorder,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.lock().expect("worker handles").drain(..) {
            let _ = handle.join();
        }
    }
}

/// The running daemon (see the module docs). Clones share one
/// instance; the worker pool stops when the last clone drops.
#[derive(Clone)]
pub struct Service {
    inner: Arc<Inner>,
}

impl Service {
    /// Builds the device catalog and starts the worker pool.
    pub fn start(config: ServiceConfig) -> Service {
        let catalog: Vec<(String, Arc<Device>)> = Device::presets()
            .into_iter()
            .map(|(key, device)| (key.to_string(), Arc::new(device)))
            .collect();
        let cache = Arc::new(ShardedCache::new(
            config.cache_capacity,
            config.cache_shards,
        ));
        let metrics = Arc::new(ServiceMetrics::new());
        let queue = Arc::new(Bounded::new(config.queue_capacity));
        let workers = spawn_pool(config.workers, &queue, &cache, &metrics, config.seed);
        let faults = config
            .fault_plan
            .clone()
            .map(|plan| FaultInjector::new(plan, config.fault_exit));
        // A trace log that cannot be created is a startup
        // misconfiguration (bad path, unwritable directory) — fail
        // loudly instead of silently dropping every span.
        let recorder = match &config.trace_log {
            Some(path) => TraceRecorder::with_sink(path)
                .unwrap_or_else(|e| panic!("cannot create trace log `{path}`: {e}")),
            None => TraceRecorder::new(),
        };
        Service {
            inner: Arc::new(Inner {
                config,
                catalog,
                cache,
                metrics,
                queue,
                calibration: Mutex::new(CalibrationStore::default()),
                shutdown: AtomicBool::new(false),
                faults,
                recorder,
                workers: Mutex::new(workers),
            }),
        }
    }

    /// Resolves a device by preset key or canonical name
    /// (case-insensitive).
    fn lookup_device(&self, name: &str) -> Option<Arc<Device>> {
        let wanted = name.to_ascii_lowercase();
        self.inner
            .catalog
            .iter()
            .find(|(key, device)| *key == wanted || device.name().to_ascii_lowercase() == wanted)
            .map(|(_, device)| Arc::clone(device))
    }

    /// Whether a `shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Whether an injected `kill` fault has fired (in-process harness
    /// mode; the real binary exits instead). Serve loops treat it like
    /// a shutdown with no drain courtesy — a dead process writes
    /// nothing.
    pub fn fault_killed(&self) -> bool {
        self.inner
            .faults
            .as_ref()
            .is_some_and(FaultInjector::killed)
    }

    /// Whether an injected `refuse` fault has fired: the accept loop
    /// must close its listener (existing connections keep serving).
    pub fn fault_refusing(&self) -> bool {
        self.inner
            .faults
            .as_ref()
            .is_some_and(FaultInjector::refusing)
    }

    /// Counts one request line against the fault plan and returns the
    /// serve loop's marching orders.
    fn fault_action(&self) -> FaultAction {
        self.inner
            .faults
            .as_ref()
            .map_or(FaultAction::None, FaultInjector::on_request)
    }

    /// The active calibration snapshot of `device` (canonical name).
    pub fn active_snapshot(&self, device_name: &str) -> Option<Arc<CalibrationSnapshot>> {
        self.active_calibration(device_name)
            .map(|(snapshot, _)| snapshot)
    }

    /// The active snapshot plus its shared EPS model.
    fn active_calibration(
        &self,
        device_name: &str,
    ) -> Option<(Arc<CalibrationSnapshot>, Arc<FidelityModel>)> {
        self.inner
            .calibration
            .lock()
            .expect("calibration store poisoned")
            .active
            .get(device_name)
            .cloned()
    }

    /// Point-in-time cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// The configuration this service was started with — what a fuzz
    /// harness needs to spin up an identically-shaped fresh instance
    /// when minimizing a failing line.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// Handles one request line and returns the one response line
    /// (without trailing newline). Never panics on malformed input.
    ///
    /// Tracing: a request carrying a `"trace"` field gets its whole
    /// lifecycle recorded as a span tree (committed to the recorder,
    /// served by the `trace` verb) and the id echoed in the reply.
    /// With a trace log attached (`--trace-log`), untraced **work**
    /// requests (route, calibration) additionally get daemon-minted
    /// ids — control probes never mint, so health/stats pollers
    /// cannot make the log nondeterministic — and minted ids appear
    /// in the log only, never in the reply, keeping untraced clients'
    /// bytes unchanged.
    pub fn handle_line(&self, line: &str) -> String {
        let t0 = Instant::now();
        let metrics = &self.inner.metrics;
        ServiceMetrics::bump(&metrics.requests);
        let envelope = match Request::parse_envelope(line) {
            Ok(envelope) => envelope,
            Err(rejection) => {
                ServiceMetrics::bump(&metrics.errors);
                // The rejection carries any recoverable `id`/`trace`
                // so clients can correlate it — extracted during the
                // one parse, not by re-parsing a possibly-huge hostile
                // line.
                let body =
                    attach_trace(rejection.trace.as_deref(), &error_body(&rejection.message));
                return attach_id(rejection.id, &body);
            }
        };
        let parsed_at = Instant::now();
        let request = envelope.request;
        let id = request.id();
        let verb = request.verb();
        let mint = envelope.trace.is_none()
            && matches!(request, Request::Route { .. } | Request::Calibration { .. });
        // Span recording is armed by `--trace-log`. Without a sink the
        // daemon is id-echo-only: no minting, no ring writes — so
        // seeded replays (and their `trace`-verb readbacks) stay
        // byte-reproducible, and the untraced hot path builds no tree.
        let trace_id = if self.inner.recorder.minting() {
            envelope.trace.clone().or_else(|| {
                if mint {
                    self.inner.recorder.mint()
                } else {
                    None
                }
            })
        } else {
            None
        };
        let mut ctx = trace_id.map(|trace_id| {
            let mut ctx = TraceCtx::begin_at(trace_id, verb, t0);
            // Protocol parse finished before the tree existed; its
            // sample still offsets from t0 correctly.
            ctx.sample(phase_sample("parse", t0, t0, parsed_at), 0);
            ctx
        });
        let body = match request {
            Request::Route {
                device,
                router,
                alpha,
                sim,
                qasm,
                ..
            } => {
                ServiceMetrics::bump(&metrics.verb_route);
                self.handle_route(&mut ctx, t0, &device, router, alpha, sim, &qasm)
            }
            Request::Calibration {
                device,
                action,
                payload,
                ..
            } => {
                ServiceMetrics::bump(&metrics.verb_calibration);
                self.handle_calibration(&device, action, payload)
            }
            Request::Stats { .. } => {
                ServiceMetrics::bump(&metrics.verb_stats);
                self.stats_body()
            }
            Request::Health { .. } => {
                ServiceMetrics::bump(&metrics.verb_health);
                self.health_body()
            }
            Request::Metrics { hist, .. } => {
                ServiceMetrics::bump(&metrics.verb_metrics);
                if hist {
                    self.metrics_body_hist()
                } else {
                    self.metrics_body()
                }
            }
            Request::Devices { .. } => {
                ServiceMetrics::bump(&metrics.verb_devices);
                self.devices_body()
            }
            Request::Trace { n, .. } => {
                ServiceMetrics::bump(&metrics.verb_trace);
                self.trace_body(n)
            }
            Request::Shutdown { .. } => {
                ServiceMetrics::bump(&metrics.verb_shutdown);
                self.inner.shutdown.store(true, Ordering::SeqCst);
                shutdown_body()
            }
        };
        if let Some(hist) = metrics.verb_histogram(verb) {
            hist.record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        if let Some(mut ctx) = ctx {
            ctx.finish_root(outcome_of(&body));
            self.inner.recorder.commit(ctx);
        }
        // Echo the trace id exactly when the request carried one;
        // minted ids live in the log, not the reply.
        attach_id(id, &attach_trace(envelope.trace.as_deref(), &body))
    }

    /// The route path: parse → fit check → cache probe → queue →
    /// blocked wait for the worker's verified reply. With a trace
    /// context, the canonicalize/cache phases plus the worker's
    /// shipped-back samples are recorded under the root span, in
    /// deterministic (logical) order.
    fn handle_route(
        &self,
        ctx: &mut Option<TraceCtx>,
        t0: Instant,
        device_name: &str,
        router: RouterKind,
        alpha: Option<f64>,
        sim: Option<Backend>,
        qasm: &str,
    ) -> String {
        let metrics = &self.inner.metrics;
        let fail = |message: String| -> String {
            ServiceMetrics::bump(&metrics.errors);
            error_body(&message)
        };
        // New work is refused the moment drain starts: a draining
        // daemon only finishes what it already accepted. The error
        // message leads with "draining" — the proxy keys its failover
        // on that prefix.
        if self.shutdown_requested() {
            return fail("draining: shutting down, not accepting new route work".to_string());
        }
        let Some(device) = self.lookup_device(device_name) else {
            let known: Vec<&str> = self.inner.catalog.iter().map(|(k, _)| k.as_str()).collect();
            return fail(format!(
                "unknown device `{device_name}` (known: {})",
                known.join(", ")
            ));
        };
        let calibration = self.active_calibration(device.name());
        if router == RouterKind::CodarCal && calibration.is_none() {
            return fail(format!(
                "router `codar-cal` needs an active calibration snapshot for {}; \
                 set one with a `calibration` request",
                device.name()
            ));
        }
        let alpha = alpha.unwrap_or(DEFAULT_CAL_ALPHA);
        // Canonicalization (QASM parse → ≤2-qubit decompose → fit
        // check → re-serialize) is one traced phase bracketing the
        // whole block, recorded whether it succeeds or fails, so the
        // span *set* stays a pure function of the request.
        let canon_started = Instant::now();
        let canonicalized = (|| {
            let flat =
                codar_qasm::parse_and_flatten(qasm).map_err(|e| format!("QASM error: {e}"))?;
            // Router-ready form: ≤2-qubit gates only, same
            // normalization as the benchmark suite.
            let circuit = decompose_three_qubit_gates(&circuit_from_flat(&flat));
            if circuit.num_qubits() > device.num_qubits() {
                return Err(format!(
                    "circuit uses {} qubits but {} has {}",
                    circuit.num_qubits(),
                    device.name(),
                    device.num_qubits()
                ));
            }
            // The cache key hashes the *canonical* circuit text
            // (parsed, decomposed, re-serialized), so formatting
            // differences in the submitted QASM cannot split cache
            // entries.
            let canonical = circuit_to_qasm(&circuit)
                .map_err(|e| format!("cannot canonicalize circuit: {e}"))?;
            Ok((circuit, canonical))
        })();
        if let Some(ctx) = ctx.as_mut() {
            ctx.sample(
                phase_sample("canonicalize", t0, canon_started, Instant::now()),
                0,
            );
        }
        let (circuit, canonical) = match canonicalized {
            Ok(pair) => pair,
            Err(message) => return fail(message),
        };
        let seed_text = self.inner.config.seed.to_string();
        // The active snapshot's version is part of every route key (0
        // = no snapshot): a calibration reload therefore misses every
        // stale entry instead of serving it. codar-cal keys also fold
        // in the blend weight — different alphas are different routes.
        let cal_version = calibration
            .as_ref()
            .map_or(0, |(s, _)| s.version)
            .to_string();
        // The exact bit pattern, not a rounded decimal: the router uses
        // the exact f64, so two alphas closer than any fixed precision
        // can still route differently and must not share a cache entry.
        // `auto` folds it in too (alpha configures the portfolio's
        // codar-cal member); every other router keeps the historical
        // empty element, so pre-existing key bytes are untouched.
        let alpha_text = if router == RouterKind::CodarCal || router == RouterKind::Portfolio {
            format!("{:016x}", alpha.to_bits())
        } else {
            String::new()
        };
        // A `sim` request adds one trailing key element; sim-less
        // requests keep the historical 6-element material byte for
        // byte, so existing cache entries (and the golden fixtures
        // that hash them) are untouched.
        let mut parts: Vec<&str> = vec![
            &canonical,
            device.name(),
            router.name(),
            &seed_text,
            &cal_version,
            &alpha_text,
        ];
        if let Some(backend) = sim {
            parts.push(backend.name());
        }
        let mut material = key_material(&parts);
        // `auto` requests append one more element: the member label the
        // result is bound to. With win history for this (device,
        // circuit-class) the leader is known now — key on it and probe
        // the cache (exploit). Without history the winner is only known
        // after the race, so the worker finalizes the key (explore) and
        // the probe below is skipped. Non-`auto` requests never reach
        // this branch: their material stays byte-identical to before.
        let class = circuit_class(&circuit);
        let leader = if router == RouterKind::Portfolio {
            let leader = metrics.portfolio_leader(device.name(), &class);
            match &leader {
                Some(label) => {
                    ServiceMetrics::bump(&metrics.portfolio_exploit);
                    material.push('\0');
                    material.push_str(label);
                }
                None => ServiceMetrics::bump(&metrics.portfolio_explore),
            }
            leader
        } else {
            None
        };
        let explore = router == RouterKind::Portfolio && leader.is_none();
        let key = fnv1a_extend(FNV_OFFSET, material.as_bytes());
        let lookup_started = Instant::now();
        // Explore requests cannot hit: their final key is unknown until
        // the portfolio has raced. The lookup phase is still recorded so
        // the span set stays a pure function of the request type.
        let cached = if explore {
            None
        } else {
            self.inner.cache.get(key, &material)
        };
        if let Some(ctx) = ctx.as_mut() {
            ctx.sample(
                phase_sample("cache_lookup", t0, lookup_started, Instant::now()),
                0,
            );
            ctx.event(
                if cached.is_some() {
                    "cache_hit"
                } else {
                    "cache_miss"
                },
                0,
                None,
            );
        }
        if let Some(body) = cached {
            // The deep copy happens here, outside the shard lock; the
            // probe itself only bumped a refcount.
            return body.as_ref().to_string();
        }
        let (reply, result) = mpsc::channel();
        let (snapshot, model) = match calibration {
            Some((snapshot, model)) => (Some(snapshot), Some(model)),
            None => (None, None),
        };
        // Exploit jobs route just the leader; explore jobs race the
        // whole portfolio. A leader label that no longer names a member
        // (it can only come from the member labels, but be defensive)
        // degrades to a full explore-style race under the exploit key.
        let members = if router == RouterKind::Portfolio {
            let all = RouterVariant::portfolio_members(alpha);
            match &leader {
                Some(label) => {
                    let picked: Vec<RouterVariant> =
                        all.iter().filter(|m| &m.label == label).cloned().collect();
                    if picked.is_empty() {
                        all
                    } else {
                        picked
                    }
                }
                None => all,
            }
        } else {
            Vec::new()
        };
        let job = RouteJob {
            key,
            material,
            circuit,
            device,
            router,
            alpha,
            members,
            class,
            explore,
            sim,
            snapshot,
            model,
            t0,
            enqueued: Instant::now(),
            reply,
        };
        match self.inner.queue.try_push(job) {
            Ok(()) => match result.recv() {
                Ok(reply) => {
                    // The worker ships its samples back (queue wait
                    // first, then execution order) so the tree is
                    // assembled here, on one thread, in logical order.
                    if let Some(ctx) = ctx.as_mut() {
                        for sample in &reply.phases {
                            ctx.sample(*sample, 0);
                        }
                    }
                    reply.body
                }
                Err(_) => fail("worker terminated".to_string()),
            },
            Err(PushError::Full(_)) => {
                ServiceMetrics::bump(&metrics.overloaded);
                if let Some(ctx) = ctx.as_mut() {
                    ctx.event("enqueue_reject", 0, None);
                }
                overloaded_body()
            }
            Err(PushError::Closed(_)) => fail("service is shutting down".to_string()),
        }
    }

    /// The `calibration` path: inspect or replace a device's active
    /// snapshot. A replacement must carry a version different from
    /// the active one — the version is the cache-invalidation token,
    /// so re-using it would keep serving stale cached routes.
    fn handle_calibration(
        &self,
        device_name: &str,
        action: CalAction,
        payload: Option<CalPayload>,
    ) -> String {
        let metrics = &self.inner.metrics;
        let fail = |message: String| -> String {
            ServiceMetrics::bump(&metrics.errors);
            error_body(&message)
        };
        let Some(device) = self.lookup_device(device_name) else {
            let known: Vec<&str> = self.inner.catalog.iter().map(|(k, _)| k.as_str()).collect();
            return fail(format!(
                "unknown device `{device_name}` (known: {})",
                known.join(", ")
            ));
        };
        match action {
            CalAction::Get => {
                let snapshot = self.active_snapshot(device.name());
                let document = snapshot.as_ref().map(|s| (s.version, s.to_json()));
                calibration_get_body(
                    device.name(),
                    document.as_ref().map(|(v, doc)| (*v, doc.as_str())),
                )
            }
            CalAction::Set => {
                // Parse, validate and derive the EPS model *outside*
                // the calibration lock: a large uploaded document must
                // not stall concurrent route traffic. (The model never
                // reads the version, so stamping a synthetic version
                // under the lock below is safe.)
                let payload = payload.expect("parser guarantees a set payload");
                let is_document = matches!(payload, CalPayload::Document(_));
                let mut snapshot = match payload {
                    CalPayload::Document(document) => {
                        let snapshot = match CalibrationSnapshot::from_json(&document) {
                            Ok(snapshot) => snapshot,
                            Err(e) => return fail(format!("calibration document rejected: {e}")),
                        };
                        if snapshot.device != device.name() {
                            return fail(format!(
                                "snapshot calibrates `{}` but the request targets `{}`",
                                snapshot.device,
                                device.name()
                            ));
                        }
                        if let Err(e) = snapshot.validate_for(&device) {
                            return fail(format!("calibration document rejected: {e}"));
                        }
                        snapshot
                    }
                    CalPayload::Synthetic { seed, drift } => {
                        let mut snapshot = CalibrationSnapshot::synthetic(&device, seed);
                        for _ in 0..drift {
                            snapshot = snapshot.drifted(seed);
                        }
                        snapshot
                    }
                };
                let model = Arc::new(FidelityModel::from_snapshot(&snapshot));
                let mut store = self
                    .inner
                    .calibration
                    .lock()
                    .expect("calibration store poisoned");
                let high_water = store.high_water.get(device.name()).copied().unwrap_or(0);
                if is_document {
                    // Versions are the cache-invalidation token; any
                    // previously-active version may still have
                    // resident cache entries, so uploads must strictly
                    // exceed the high-water mark.
                    if snapshot.version <= high_water {
                        return fail(format!(
                            "snapshot version {} does not exceed the highest version {} \
                             already seen on {}; bump the version so stale cache entries \
                             cannot be served",
                            snapshot.version,
                            high_water,
                            device.name()
                        ));
                    }
                } else {
                    // Server-generated: stamp the next version so a
                    // reload always invalidates.
                    snapshot.version = high_water + 1;
                }
                let version = snapshot.version;
                store.high_water.insert(device.name().to_string(), version);
                let replaced = store
                    .active
                    .insert(device.name().to_string(), (Arc::new(snapshot), model))
                    .is_some();
                calibration_set_body(device.name(), version, replaced)
            }
        }
    }

    /// The `stats` response body.
    pub fn stats_body(&self) -> String {
        let metrics = &self.inner.metrics;
        let cache = self.inner.cache.stats();
        format!(
            "{{\"type\":\"stats\",\"status\":\"ok\",\"requests\":{},\"routed\":{},\
             \"errors\":{},\"overloaded\":{},\"cache\":{{\"capacity\":{},\"shards\":{},\
             \"entries\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"hit_rate\":{:.6}}}}}",
            ServiceMetrics::read(&metrics.requests),
            ServiceMetrics::read(&metrics.routed),
            ServiceMetrics::read(&metrics.errors),
            ServiceMetrics::read(&metrics.overloaded),
            cache.capacity,
            cache.shards,
            cache.entries,
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate(),
        )
    }

    /// The `health` response body: readiness (`false` once drain has
    /// started — a draining daemon refuses new route work, and the
    /// proxy's prober takes `ready:false` as "stop routing here").
    pub fn health_body(&self) -> String {
        let draining = self.shutdown_requested();
        format!(
            "{{\"type\":\"health\",\"status\":\"ok\",\"ready\":{},\"draining\":{},\
             \"workers\":{},\"queue_depth\":{},\"queue_capacity\":{}}}",
            !draining,
            draining,
            self.inner.config.workers.max(1),
            self.inner.queue.len(),
            self.inner.config.queue_capacity,
        )
    }

    /// The `metrics` response body: everything `stats` reports plus
    /// queue depth, the in-flight gauge and per-verb counters — flat
    /// (every top-level value a scalar), so a scraper needs no nested
    /// traversal. `stats` keeps its historical nested shape untouched.
    pub fn metrics_body(&self) -> String {
        let metrics = &self.inner.metrics;
        let cache = self.inner.cache.stats();
        format!(
            "{{\"type\":\"metrics\",\"status\":\"ok\",\"requests\":{},\"routed\":{},\
             \"errors\":{},\"overloaded\":{},\"in_flight\":{},\"queue_depth\":{},\
             \"queue_capacity\":{},\"workers\":{},\"draining\":{},\"verb_route\":{},\
             \"verb_calibration\":{},\"verb_stats\":{},\"verb_devices\":{},\
             \"verb_health\":{},\"verb_metrics\":{},\"verb_shutdown\":{},\
             \"cache_capacity\":{},\"cache_shards\":{},\"cache_entries\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
             \"cache_hit_rate\":{:.6}}}",
            ServiceMetrics::read(&metrics.requests),
            ServiceMetrics::read(&metrics.routed),
            ServiceMetrics::read(&metrics.errors),
            ServiceMetrics::read(&metrics.overloaded),
            ServiceMetrics::read(&metrics.in_flight),
            self.inner.queue.len(),
            self.inner.config.queue_capacity,
            self.inner.config.workers.max(1),
            self.shutdown_requested(),
            ServiceMetrics::read(&metrics.verb_route),
            ServiceMetrics::read(&metrics.verb_calibration),
            ServiceMetrics::read(&metrics.verb_stats),
            ServiceMetrics::read(&metrics.verb_devices),
            ServiceMetrics::read(&metrics.verb_health),
            ServiceMetrics::read(&metrics.verb_metrics),
            ServiceMetrics::read(&metrics.verb_shutdown),
            cache.capacity,
            cache.shards,
            cache.entries,
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.hit_rate(),
        )
    }

    /// [`Service::metrics_body`] plus the extended observability
    /// fields, served for `{"type":"metrics","hist":true}`: the queue
    /// depth high-water mark, the `trace` verb counter and the
    /// fixed-boundary log2 latency histograms (per verb, queue wait,
    /// per routing phase). Opt-in so the plain body's bytes stay
    /// frozen for historical clients and the golden fixtures; still
    /// flat — bucket counts are one comma-joined string scalar each,
    /// never a nested array.
    pub fn metrics_body_hist(&self) -> String {
        let metrics = &self.inner.metrics;
        let mut out = self.metrics_body();
        out.pop(); // reopen the object; extension fields follow
        let _ = write!(
            out,
            ",\"verb_trace\":{},\"queue_depth_high_water\":{}",
            ServiceMetrics::read(&metrics.verb_trace),
            self.inner.queue.high_water(),
        );
        for (name, hist) in VERB_NAMES.iter().zip(&metrics.hist_verbs) {
            let _ = write!(out, ",{}", hist.json_fields(name));
        }
        let _ = write!(
            out,
            ",{}",
            metrics.hist_queue_wait.json_fields("queue_wait")
        );
        for (name, hist) in PHASE_NAMES.iter().zip(&metrics.hist_phases) {
            let _ = write!(out, ",{}", hist.json_fields(&format!("phase_{name}")));
        }
        // Portfolio (`auto`) telemetry: the explore/exploit split and
        // the per-(device, class, member) win table — new flat keys
        // only, so the plain `metrics` and `stats` bodies stay
        // byte-frozen.
        let _ = write!(
            out,
            ",\"portfolio_explore\":{},\"portfolio_exploit\":{}{}",
            ServiceMetrics::read(&metrics.portfolio_explore),
            ServiceMetrics::read(&metrics.portfolio_exploit),
            metrics.portfolio_win_fields(),
        );
        out.push('}');
        out
    }

    /// The `trace` response body: the last `n` committed span lines
    /// (default [`TRACE_REPLY_DEFAULT`], clamped to
    /// [`TRACE_REPLY_MAX`]), oldest first, embedded as raw span
    /// objects — the same lines the NDJSON sink receives.
    pub fn trace_body(&self, n: Option<u64>) -> String {
        let n = n.unwrap_or(TRACE_REPLY_DEFAULT).min(TRACE_REPLY_MAX);
        let spans = self
            .inner
            .recorder
            .recent(usize::try_from(n).unwrap_or(usize::MAX));
        let mut out = format!(
            "{{\"type\":\"trace\",\"status\":\"ok\",\"count\":{},\"spans\":[",
            spans.len()
        );
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(span);
        }
        out.push_str("]}");
        out
    }

    /// The last `n` committed span lines (oldest first) — what the
    /// `trace` verb serves, exposed directly for tests and property
    /// harnesses that assert on span-tree structure.
    pub fn recent_spans(&self, n: usize) -> Vec<String> {
        self.inner.recorder.recent(n)
    }

    /// The `devices` response body (catalog order).
    pub fn devices_body(&self) -> String {
        let mut out = String::from("{\"type\":\"devices\",\"status\":\"ok\",\"devices\":[");
        for (i, (key, device)) in self.inner.catalog.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"device\":{},\"qubits\":{}}}",
                escape(key),
                escape(device.name()),
                device.num_qubits()
            );
        }
        out.push_str("]}");
        out
    }

    /// Serves one NDJSON stream: one response line per request line,
    /// in order. Returns after EOF or a `shutdown` request — including
    /// a shutdown served on *another* stream of the same service: the
    /// flag is checked before every line is handled, so no stream
    /// keeps serving new requests once any stream accepted a shutdown.
    /// Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the reader or writer.
    pub fn serve_ndjson(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            // Before, not only after, handling: a shutdown served on a
            // concurrent stream must stop this one at its next line,
            // not let it keep serving indefinitely. A fired kill fault
            // stops every stream the same way.
            if self.shutdown_requested() || self.fault_killed() {
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            // The fault plan counts request lines globally across this
            // daemon's streams; most lines get `None` and cost one
            // atomic increment.
            match self.fault_action() {
                FaultAction::None => {}
                FaultAction::Delay(pause) => std::thread::sleep(pause),
                FaultAction::Hang(pause) => {
                    // A stuck shard: park, then close without a reply.
                    std::thread::sleep(pause);
                    break;
                }
                FaultAction::Kill => {
                    if self.inner.config.fault_exit {
                        std::process::exit(KILL_EXIT_CODE);
                    }
                    break;
                }
                FaultAction::CloseAfter(bytes) => {
                    // The torn frame: a prefix of the real reply, then
                    // the stream ends.
                    let mut response = self.handle_line(&line);
                    response.push('\n');
                    let cut = bytes.min(response.len());
                    writer.write_all(&response.as_bytes()[..cut])?;
                    writer.flush()?;
                    break;
                }
            }
            let mut response = self.handle_line(&line);
            response.push('\n');
            // One write per response line: a split write would put the
            // newline in its own TCP segment and stall on
            // Nagle/delayed-ACK interaction.
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
            if self.shutdown_requested() {
                break;
            }
        }
        Ok(())
    }

    /// Accept loop: one thread per connection, each serving its stream
    /// through [`Service::serve_ndjson`]. Returns once a `shutdown`
    /// request has been served (on any connection) **and** the
    /// per-connection threads have drained (default deadline 5 s) —
    /// see [`Service::serve_tcp_with_drain`].
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than `WouldBlock`.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        self.serve_tcp_with_drain(listener, Duration::from_secs(5))
    }

    /// [`Service::serve_tcp`] with an explicit drain deadline.
    ///
    /// Connection threads are tracked, and after a `shutdown` has been
    /// served the accept loop stops and joins them so in-flight
    /// responses complete before the caller (typically `coded`'s
    /// `main`) exits and would kill them mid-write. Threads parked in a
    /// blocking read on an idle connection cannot be interrupted
    /// portably, so the join is bounded by `drain`: a connection still
    /// open at the deadline is sent one final well-formed
    /// `error:"draining"` line and its socket is shut down — the
    /// client sees an explicit goodbye and a clean EOF, never silence
    /// or a torn frame (the socket shutdown also wakes the parked
    /// reader so the thread exits).
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than `WouldBlock`.
    pub fn serve_tcp_with_drain(
        &self,
        listener: TcpListener,
        drain: Duration,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        // Inside an Option so a `refuse` fault can close it mid-loop
        // while existing connections keep being served.
        let mut listener = Some(listener);
        let mut connections: Vec<(JoinHandle<()>, SharedWriter)> = Vec::new();
        while !self.shutdown_requested() && !self.fault_killed() {
            if self.fault_refusing() {
                listener = None;
            }
            let Some(active) = listener.as_ref() else {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            };
            match active.accept() {
                Ok((stream, _addr)) => {
                    // Reap finished connections as we go so the handle
                    // list tracks live connections, not history.
                    connections = connections
                        .into_iter()
                        .filter_map(|(handle, shared)| {
                            if handle.is_finished() {
                                let _ = handle.join();
                                None
                            } else {
                                Some((handle, shared))
                            }
                        })
                        .collect();
                    // Per-connection setup failures (e.g. the client
                    // RSTs immediately) only cost that client its
                    // connection — they must never stop the accept
                    // loop. Request/response lines are tiny, so Nagle
                    // coalescing would cost tens of ms per line.
                    if stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let Ok(reader) = stream.try_clone() else {
                        continue;
                    };
                    let shared = SharedWriter::new(stream);
                    let writer = shared.clone();
                    let service = self.clone();
                    connections.push((
                        std::thread::spawn(move || {
                            let _ = service.serve_ndjson(std::io::BufReader::new(reader), writer);
                        }),
                        shared,
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        let deadline = std::time::Instant::now() + drain;
        // A killed daemon is a dead process: it writes no goodbye. A
        // draining one owes every still-open connection a final
        // well-formed line before the close.
        let courtesy = !self.fault_killed();
        for (handle, shared) in connections {
            while !handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if !handle.is_finished() {
                shared.close(courtesy);
                // The shutdown wakes the parked reader with EOF, so
                // the thread exits promptly; a short grace bounds the
                // join (a hang-faulted thread may sleep past it — it
                // holds nothing but its stack by now).
                let grace = std::time::Instant::now() + Duration::from_millis(250);
                while !handle.is_finished() && std::time::Instant::now() < grace {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        Ok(())
    }
}

/// The circuit class that keys portfolio (`auto`) win history:
/// `q<qubits>g<bucket>` where the bucket is the log2 band of the gate
/// count (`floor(log2(gates)) + 1`, 0 for an empty circuit). Coarse on
/// purpose — classes must recur across requests for the win table to
/// converge on a leader, and which member wins is driven by circuit
/// width and scale far more than by exact gate counts.
///
/// # Examples
///
/// ```
/// use codar_circuit::Circuit;
/// use codar_service::server::circuit_class;
///
/// let mut c = Circuit::new(4);
/// c.h(0);
/// c.cx(0, 3);
/// c.cx(1, 2);
/// assert_eq!(circuit_class(&c), "q4g2"); // 3 gates → band [2, 4)
/// assert_eq!(circuit_class(&Circuit::new(2)), "q2g0");
/// ```
pub fn circuit_class(circuit: &codar_circuit::Circuit) -> String {
    let gates = circuit.len() as u64;
    let bucket = (u64::BITS - gates.leading_zeros()) as u64;
    format!("q{}g{bucket}", circuit.num_qubits())
}

/// The deterministic root-span outcome annotation of a response body.
/// Every body renders `"status"` with the string escaped, so the
/// needle cannot occur inside an embedded payload.
pub(crate) fn outcome_of(body: &str) -> &'static str {
    if body.contains("\"status\":\"error\"") {
        "error"
    } else if body.contains("\"status\":\"overloaded\"") {
        "overloaded"
    } else {
        "ok"
    }
}

/// A cloneable TCP writer shared between a connection's serve thread
/// and the drain path, so drain can deliver one final well-formed
/// `error:"draining"` line instead of silently abandoning the client.
/// Each [`Write::write`] takes the lock once and writes the whole
/// buffer, so response lines written by either side never interleave
/// mid-line.
#[derive(Clone)]
pub(crate) struct SharedWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl SharedWriter {
    pub(crate) fn new(stream: TcpStream) -> SharedWriter {
        SharedWriter {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Ends the connection: with `courtesy`, first writes the final
    /// draining error line; either way shuts the socket down both
    /// directions (waking any parked reader with EOF). Write failures
    /// are ignored — the client may already be gone.
    pub(crate) fn close(&self, courtesy: bool) {
        let Ok(mut stream) = self.stream.lock() else {
            return;
        };
        if courtesy {
            let mut line = error_body("draining: connection closed by server shutdown");
            line.push('\n');
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.flush();
        }
        let _ = stream.shutdown(Shutdown::Both);
    }
}

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| std::io::Error::other("writer lock poisoned"))?;
        // All-or-nothing under one lock hold: `write_all` on the
        // wrapper must not interleave with the drain line.
        stream.write_all(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        let mut stream = self
            .stream
            .lock()
            .map_err(|_| std::io::Error::other("writer lock poisoned"))?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const GHZ3: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
                        h q[0];\ncx q[0], q[1];\ncx q[1], q[2];\nmeasure q -> c;\n";

    fn route_line(device: &str, router: &str, qasm: &str) -> String {
        format!(
            "{{\"type\":\"route\",\"device\":{},\"router\":{},\"circuit\":{}}}",
            escape(device),
            escape(router),
            escape(qasm)
        )
    }

    #[test]
    fn sim_requests_route_end_to_end_and_cache_separately() {
        let service = Service::start(ServiceConfig::default());
        // Sim-less request: no `sim` field in the response (historical
        // shape, byte-compatible with the golden fixtures).
        let plain = service.handle_line(&route_line("q5", "codar", GHZ3));
        assert!(!plain.contains("\"sim\""), "{plain}");
        // `auto` on a Clifford circuit resolves to the stabilizer
        // backend, and the response reports it.
        let line = format!(
            "{{\"type\":\"route\",\"device\":\"q5\",\"router\":\"codar\",\
             \"sim\":\"auto\",\"circuit\":{}}}",
            escape(GHZ3)
        );
        let simmed = service.handle_line(&line);
        let parsed = Json::parse(&simmed).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("sim").and_then(Json::as_str), Some("stabilizer"));
        // The two are distinct cache entries: re-issuing each returns
        // its own body (a shared key would alias the sim-less reply).
        assert_eq!(service.handle_line(&route_line("q5", "codar", GHZ3)), plain);
        assert_eq!(service.handle_line(&line), simmed);
        // Unknown backend names are rejected at parse time.
        let bad = service.handle_line(
            "{\"type\":\"route\",\"device\":\"q5\",\"router\":\"codar\",\
             \"sim\":\"gpu\",\"circuit\":\"qreg q[2];\"}",
        );
        assert!(bad.contains("unknown simulation backend"), "{bad}");
        service.handle_line("{\"type\":\"shutdown\"}");
    }

    #[test]
    fn route_stats_devices_shutdown_lifecycle() {
        let service = Service::start(ServiceConfig::default());
        let response = service.handle_line(&route_line("q5", "codar", GHZ3));
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("ok"),
            "{response}"
        );
        assert_eq!(parsed.get("verified").and_then(Json::as_bool), Some(true));

        // Identical request → cache hit, byte-identical response.
        let again = service.handle_line(&route_line("q5", "codar", GHZ3));
        assert_eq!(response, again);
        let stats = Json::parse(&service.handle_line("{\"type\":\"stats\"}")).unwrap();
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("routed").and_then(Json::as_u64), Some(1));

        let devices = Json::parse(&service.handle_line("{\"type\":\"devices\"}")).unwrap();
        match devices.get("devices") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), Device::presets().len()),
            other => panic!("expected device array, got {other:?}"),
        }

        assert!(!service.shutdown_requested());
        let ack = service.handle_line("{\"type\":\"shutdown\",\"id\":5}");
        assert_eq!(ack, "{\"id\":5,\"type\":\"shutdown\",\"status\":\"ok\"}");
        assert!(service.shutdown_requested());
    }

    #[test]
    fn auto_router_explores_then_exploits_the_leader() {
        let service = Service::start(ServiceConfig::default());
        // Explore: no win history for (q5, q3g3) yet, so the whole
        // portfolio races and the reply names the winner. No snapshot
        // is active — `auto` must still work (the codar-cal member is
        // skipped, scoring falls back to depth + swaps).
        let first = service.handle_line(&route_line("q5", "auto", GHZ3));
        let parsed = Json::parse(&first).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("ok"),
            "{first}"
        );
        assert_eq!(parsed.get("router").and_then(Json::as_str), Some("auto"));
        let chosen = parsed
            .get("chosen")
            .and_then(Json::as_str)
            .expect("auto replies carry the winner")
            .to_string();
        assert!(
            ["codar", "codar-cal", "greedy", "sabre"].contains(&chosen.as_str()),
            "{chosen}"
        );
        // Exploit: the identical request keys on the leader, which is
        // exactly the label the explore insert was filed under — a
        // cache hit, byte for byte. (Explore skipped the probe, so the
        // only counted lookup is this hit.)
        let second = service.handle_line(&route_line("q5", "auto", GHZ3));
        assert_eq!(first, second);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        // A fixed-router request keeps its historical cache identity
        // and never reports a winner.
        let fixed = service.handle_line(&route_line("q5", "codar", GHZ3));
        assert!(!fixed.contains("\"chosen\""), "{fixed}");
        // Plain `metrics` and `stats` bodies stay byte-frozen: the
        // portfolio telemetry only rides the extended body.
        let metrics = service.metrics_body();
        assert!(!metrics.contains("portfolio"), "{metrics}");
        let stats_body = service.handle_line("{\"type\":\"stats\"}");
        assert!(!stats_body.contains("portfolio"), "{stats_body}");
        let hist = service.metrics_body_hist();
        assert!(hist.contains("\"portfolio_explore\":1"), "{hist}");
        assert!(hist.contains("\"portfolio_exploit\":1"), "{hist}");
        assert!(
            hist.contains(&format!(
                "\"portfolio_wins_IBM_Q5_Yorktown_q3g3_{chosen}\":1"
            )),
            "{hist}"
        );
        service.handle_line("{\"type\":\"shutdown\"}");
    }

    #[test]
    fn canonicalization_merges_equivalent_formattings() {
        let service = Service::start(ServiceConfig::default());
        let compact = "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[3]; h q[0]; cx q[0], q[2];";
        let spaced = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[3];\n  h q[0];\n  \
                      cx q[0],q[2];\n";
        let a = service.handle_line(&route_line("q20", "sabre", compact));
        let b = service.handle_line(&route_line("q20", "sabre", spaced));
        assert_eq!(a, b, "formatting must not split cache entries");
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn bad_requests_get_error_responses() {
        let service = Service::start(ServiceConfig::default());
        for (line, needle) in [
            ("{not json", "malformed JSON"),
            (&route_line("warp-drive", "codar", GHZ3), "unknown device"),
            (
                &route_line("q5", "codar", "qreg q[2]; zz q[0];"),
                "QASM error",
            ),
            (
                &route_line("q5", "codar", "qreg q[9]; cx q[0], q[8];"),
                "uses 9 qubits",
            ),
        ] {
            let response = service.handle_line(line);
            let parsed = Json::parse(&response).unwrap();
            assert_eq!(
                parsed.get("status").and_then(Json::as_str),
                Some("error"),
                "{line} -> {response}"
            );
            assert!(
                parsed
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap()
                    .contains(needle),
                "{line} -> {response}"
            );
        }
    }

    #[test]
    fn zero_capacity_queue_answers_overloaded() {
        let service = Service::start(ServiceConfig {
            queue_capacity: 0,
            ..ServiceConfig::default()
        });
        let response = service.handle_line(&route_line("q5", "codar", GHZ3));
        let parsed = Json::parse(&response).unwrap();
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("overloaded"),
            "{response}"
        );
        let stats = Json::parse(&service.stats_body()).unwrap();
        assert_eq!(stats.get("overloaded").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn ndjson_stream_responds_in_order_and_stops_at_shutdown() {
        let service = Service::start(ServiceConfig::default());
        let input = format!(
            "{}\n\n{{\"type\":\"stats\",\"id\":1}}\n{{\"type\":\"shutdown\"}}\n\
             {{\"type\":\"stats\",\"id\":2}}\n",
            route_line("q5", "greedy", GHZ3)
        );
        let mut output = Vec::new();
        service
            .serve_ndjson(std::io::BufReader::new(input.as_bytes()), &mut output)
            .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Three responses: route, stats, shutdown ack; the post-
        // shutdown stats line is never served.
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("\"router\":\"greedy\""));
        assert!(lines[1].starts_with("{\"id\":1,\"type\":\"stats\""));
        assert!(lines[2].contains("\"type\":\"shutdown\""));
    }

    #[test]
    fn sub_microscale_alpha_differences_get_distinct_cache_entries() {
        // Regression: codar-cal cache keys used to fold a 6-decimal
        // rounding of alpha, so two alphas closer than 1e-6 shared one
        // cache entry even though the router blends the exact f64 and
        // can route them differently. Keys now fold `alpha.to_bits()`.
        let service = Service::start(ServiceConfig::default());
        let ack = service.handle_line(
            "{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q5\",\
             \"synthetic\":{\"seed\":3,\"drift\":2}}",
        );
        assert!(ack.contains("\"status\":\"ok\""), "{ack}");
        for alpha in ["0.1234567", "0.12345674"] {
            let response = service.handle_line(&format!(
                "{{\"type\":\"route\",\"device\":\"q5\",\"router\":\"codar-cal\",\
                 \"alpha\":{alpha},\"circuit\":{}}}",
                escape(GHZ3)
            ));
            assert!(response.contains("\"status\":\"ok\""), "{response}");
        }
        let stats = service.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 2),
            "both alphas round to the same 6-decimal string; they must \
             still be distinct cache entries"
        );
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn rejected_lines_echo_a_recoverable_id_without_reparsing() {
        let service = Service::start(ServiceConfig::default());
        // Recoverable: well-formed JSON object, well-formed id.
        let response = service.handle_line("{\"id\":7,\"type\":\"warp\"}");
        assert!(response.starts_with("{\"id\":7,"), "{response}");
        assert!(response.contains("unknown request type"), "{response}");
        // Unrecoverable ids (ill-typed, or no JSON at all) stay absent.
        for line in [
            "{\"id\":-1,\"type\":\"stats\"}",
            "{\"id\":1.5,\"type\":\"stats\"}",
            "{\"id\":7,\"type\"",
        ] {
            let response = service.handle_line(line);
            assert!(!response.contains("\"id\""), "{line} -> {response}");
            assert!(response.contains("\"status\":\"error\""), "{response}");
        }
        // The rejection itself carries the id — the parse-error path
        // must not pay a second full parse of a hostile line.
        let rejection = Request::parse_line("{\"id\":9,\"type\":\"warp\"}").unwrap_err();
        assert_eq!(rejection.id, Some(9));
    }

    #[test]
    fn shutdown_on_one_connection_stops_and_drains_the_others() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let service = Service::start(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = {
            let service = service.clone();
            std::thread::spawn(move || {
                service.serve_tcp_with_drain(listener, Duration::from_millis(300))
            })
        };
        let mut idle = std::net::TcpStream::connect(addr).expect("connect idle");
        let mut idle_reader = BufReader::new(idle.try_clone().unwrap());
        let mut control = std::net::TcpStream::connect(addr).expect("connect control");
        let mut control_reader = BufReader::new(control.try_clone().unwrap());
        let mut line = String::new();

        // The idle connection serves a request first, proving its
        // thread is up before the shutdown arrives elsewhere.
        idle.write_all(b"{\"type\":\"stats\",\"id\":1}\n").unwrap();
        idle_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "{line}");

        line.clear();
        control.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
        control_reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"shutdown\""), "{line}");

        // The accept loop returns despite the idle connection still
        // being open: at the bounded drain deadline the idle client is
        // told goodbye and its socket is closed, instead of keeping
        // the daemon alive forever.
        server
            .join()
            .unwrap()
            .expect("accept loop drains and exits");

        // Regression (the old behavior silently abandoned the parked
        // connection): the client must receive one final well-formed
        // `error:"draining"` line, then a clean EOF — never bare
        // silence, never a torn frame.
        line.clear();
        let n = idle_reader.read_line(&mut line).unwrap();
        assert!(n > 0, "drain must say goodbye, not just vanish");
        assert!(line.ends_with('\n'), "drain line must be a whole frame");
        let parsed = Json::parse(line.trim_end()).expect("drain line is valid JSON");
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
        assert!(
            parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .starts_with("draining"),
            "{line}"
        );
        line.clear();
        let n = idle_reader.read_line(&mut line).unwrap();
        assert_eq!(n, 0, "after the goodbye the stream is closed: {line}");
    }

    #[test]
    fn health_reports_readiness_and_flips_on_drain() {
        let service = Service::start(ServiceConfig::default());
        let health = Json::parse(&service.handle_line("{\"type\":\"health\",\"id\":3}")).unwrap();
        assert_eq!(health.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(health.get("ready").and_then(Json::as_bool), Some(true));
        assert_eq!(health.get("draining").and_then(Json::as_bool), Some(false));
        assert_eq!(health.get("queue_depth").and_then(Json::as_u64), Some(0));
        assert_eq!(
            health.get("queue_capacity").and_then(Json::as_u64),
            Some(64)
        );
        service.handle_line("{\"type\":\"shutdown\"}");
        let drained = Json::parse(&service.handle_line("{\"type\":\"health\"}")).unwrap();
        assert_eq!(drained.get("ready").and_then(Json::as_bool), Some(false));
        assert_eq!(drained.get("draining").and_then(Json::as_bool), Some(true));
        // Draining refuses new route work with a well-formed error
        // whose message leads with "draining" (the proxy's failover
        // cue) — it never queues the job.
        let refused = service.handle_line(&route_line("q5", "codar", GHZ3));
        let parsed = Json::parse(&refused).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
        assert!(
            parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .starts_with("draining"),
            "{refused}"
        );
    }

    #[test]
    fn metrics_are_flat_and_count_per_verb() {
        let service = Service::start(ServiceConfig::default());
        service.handle_line(&route_line("q5", "codar", GHZ3));
        service.handle_line(&route_line("q5", "codar", GHZ3)); // cache hit
        service.handle_line("{\"type\":\"stats\"}");
        service.handle_line("{\"type\":\"devices\"}");
        service.handle_line("{\"type\":\"health\"}");
        service.handle_line("not json at all");
        let body = service.handle_line("{\"type\":\"metrics\",\"id\":9}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        // Flat: every top-level value is a scalar — a scraper never
        // recurses. (`stats` keeps its nested `cache` object.)
        match &parsed {
            Json::Obj(fields) => {
                for (key, value) in fields {
                    assert!(
                        !matches!(value, Json::Obj(_) | Json::Arr(_)),
                        "metrics field `{key}` is not a scalar"
                    );
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
        let count = |key: &str| parsed.get(key).and_then(Json::as_u64);
        assert_eq!(count("requests"), Some(7));
        assert_eq!(count("verb_route"), Some(2));
        assert_eq!(count("verb_stats"), Some(1));
        assert_eq!(count("verb_devices"), Some(1));
        assert_eq!(count("verb_health"), Some(1));
        assert_eq!(count("verb_metrics"), Some(1), "counts itself");
        assert_eq!(count("errors"), Some(1), "the malformed line");
        assert_eq!(count("routed"), Some(1));
        assert_eq!(count("cache_hits"), Some(1));
        assert_eq!(count("cache_misses"), Some(1));
        assert_eq!(count("in_flight"), Some(0), "all work finished");
        assert_eq!(count("queue_depth"), Some(0));
        // The old `stats` shape is untouched: nested cache object, no
        // new fields.
        let stats = service.handle_line("{\"type\":\"stats\"}");
        assert!(stats.contains("\"cache\":{"), "{stats}");
        assert!(!stats.contains("verb_"), "{stats}");
        assert!(!stats.contains("in_flight"), "{stats}");
        service.handle_line("{\"type\":\"shutdown\"}");
    }

    #[test]
    fn fault_plan_delays_truncates_and_kills_the_stream() {
        use crate::faults::FaultPlan;
        // delay@1 serves normally (slowly); close:10@2 tears reply 2
        // after 10 bytes; the stream ends there.
        let service = Service::start(ServiceConfig {
            fault_plan: Some(FaultPlan::parse("delay:1@1;close:10@2").unwrap()),
            ..ServiceConfig::default()
        });
        let input = "{\"type\":\"stats\",\"id\":1}\n{\"type\":\"stats\",\"id\":2}\n\
                     {\"type\":\"stats\",\"id\":3}\n";
        let mut output = Vec::new();
        service
            .serve_ndjson(std::io::BufReader::new(input.as_bytes()), &mut output)
            .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.split('\n').collect();
        assert!(lines[0].contains("\"id\":1"), "{text}");
        assert_eq!(lines[1], "{\"id\":2,\"t", "10-byte torn frame: {text}");
        assert_eq!(lines.len(), 2, "the stream closed after the tear: {text}");

        // A kill fault stops the daemon mid-stream: replies before it,
        // nothing at or after it, and the killed flag latches so every
        // other stream of the same service stops too.
        let service = Service::start(ServiceConfig {
            fault_plan: Some(FaultPlan::parse("kill@2").unwrap()),
            ..ServiceConfig::default()
        });
        let mut output = Vec::new();
        service
            .serve_ndjson(std::io::BufReader::new(input.as_bytes()), &mut output)
            .unwrap();
        let text = String::from_utf8(output).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(service.fault_killed());
        let mut other = Vec::new();
        service
            .serve_ndjson(
                std::io::BufReader::new(&b"{\"type\":\"stats\"}\n"[..]),
                &mut other,
            )
            .unwrap();
        assert!(other.is_empty(), "killed daemons serve no stream");
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        use std::io::{BufRead as _, BufReader, Write as _};
        let service = Service::start(ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let server = {
            let service = service.clone();
            std::thread::spawn(move || service.serve_tcp(listener))
        };
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();

        stream
            .write_all(format!("{}\n", route_line("q20", "codar", GHZ3)).as_bytes())
            .unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "{line}");

        line.clear();
        stream.write_all(b"{\"type\":\"shutdown\"}\n").unwrap();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"type\":\"shutdown\""), "{line}");
        server.join().unwrap().expect("accept loop exits cleanly");
    }
}
