//! `loadgen` — deterministic load generator for the routing daemon.
//!
//! ```text
//! loadgen [--requests N] [--seed S] [--repeat-ratio R] [--device NAME]
//!         [--router NAME] [--max-qubits N] [--hot N]
//!         [--connect ADDR | --proxy ADDR | in-process]
//!         [--arrival-us MEAN] [--latency-json PATH]
//!         [--workers N] [--cache-capacity N] [--queue-capacity N]
//! loadgen --soak [--rounds N | --duration-secs S]
//!         [--requests-per-round N] [--reload-every N] [--clients N]
//!         [common flags as above]
//! ```
//!
//! The default mode replays a seeded mix of benchmark circuits
//! (hot-set repeats with probability `--repeat-ratio`) and reports:
//!
//! * **stdout** — the deterministic summary JSON (counts, cache hit
//!   rate, response-stream checksum; no timing). Two runs with the
//!   same flags print byte-identical summaries — the CI check.
//! * **stderr** — the latency summary (p50/p90/p99 µs), which is a
//!   measurement and therefore *not* deterministic.
//! * `--latency-json PATH` — the versioned latency JSON.
//!
//! `--soak` switches to long-run mixed traffic (route hot-set +
//! periodic calibration reloads + stats probes) under the fuzzer's
//! protocol invariants — see `codar_service::soak`. `--rounds N` is
//! fully deterministic (reruns print byte-identical summary lines);
//! `--duration-secs S` runs on the wall clock instead. `--clients N`
//! (with `--connect`) soaks through N concurrent TCP connections and
//! checks each client's route replies match a solo run — the
//! cache-transparency contract under real concurrency.
//!
//! Without `--connect` the run is closed-loop: loadgen starts an
//! in-process daemon (configured by `--workers`/`--cache-capacity`/
//! `--queue-capacity`) and drives it directly, no port involved.
//!
//! `--proxy ADDR` targets a `codar-proxy` front tier instead of a bare
//! daemon: same protocol and byte-identical route replies, but the run
//! fails unless the target really answers as a proxy, and the latency
//! JSON reports the tier's retry/failover counters. `--arrival-us MEAN`
//! switches from the closed loop to **open-loop** issue (TCP targets
//! only): a seeded exponential arrival schedule paces sends regardless
//! of outstanding replies, and latency is measured from each request's
//! scheduled departure — no coordinated omission.

use codar_service::loadgen::{run, run_open_loop, LoadgenConfig, TcpTransport};
use codar_service::soak::{run_soak, run_soak_tcp_clients, SoakConfig};
use codar_service::{Service, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: LoadgenConfig,
    service: ServiceConfig,
    connect: Option<String>,
    /// `--proxy` targets must answer as one ("proxy":true stats).
    expect_proxy: bool,
    latency_json: Option<String>,
    soak: bool,
    soak_rounds: Option<usize>,
    soak_duration: Option<u64>,
    requests_per_round: usize,
    reload_every: usize,
    clients: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: LoadgenConfig::default(),
        service: ServiceConfig::default(),
        connect: None,
        expect_proxy: false,
        latency_json: None,
        soak: false,
        soak_rounds: None,
        soak_duration: None,
        requests_per_round: 20,
        reload_every: 10,
        clients: 1,
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut daemon_flag: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--requests"
            | "--seed"
            | "--max-qubits"
            | "--hot"
            | "--workers"
            | "--cache-capacity"
            | "--queue-capacity"
            | "--rounds"
            | "--duration-secs"
            | "--requests-per-round"
            | "--reload-every"
            | "--clients" => {
                let text = value(args, i, flag)?;
                let number: usize = text.parse().map_err(|e| format!("bad {flag}: {e}"))?;
                match flag {
                    "--requests" => parsed.config.requests = number,
                    "--seed" => parsed.config.seed = number as u64,
                    "--max-qubits" => parsed.config.max_qubits = number,
                    "--hot" => parsed.config.hot = number,
                    "--workers" => parsed.service.workers = number,
                    "--cache-capacity" => parsed.service.cache_capacity = number,
                    "--queue-capacity" => parsed.service.queue_capacity = number,
                    "--rounds" => parsed.soak_rounds = Some(number),
                    "--duration-secs" => parsed.soak_duration = Some(number as u64),
                    "--requests-per-round" => parsed.requests_per_round = number,
                    "--reload-every" => parsed.reload_every = number,
                    "--clients" => parsed.clients = number,
                    _ => unreachable!(),
                }
                if matches!(flag, "--workers" | "--cache-capacity" | "--queue-capacity") {
                    daemon_flag = Some(flag);
                }
                i += 2;
            }
            "--repeat-ratio" => {
                parsed.config.repeat_ratio = value(args, i, flag)?
                    .parse()
                    .map_err(|e| format!("bad --repeat-ratio: {e}"))?;
                i += 2;
            }
            "--device" => {
                parsed.config.device = value(args, i, flag)?;
                i += 2;
            }
            "--router" => {
                parsed.config.router = value(args, i, flag)?;
                i += 2;
            }
            "--connect" => {
                parsed.connect = Some(value(args, i, flag)?);
                i += 2;
            }
            "--proxy" => {
                parsed.connect = Some(value(args, i, flag)?);
                parsed.expect_proxy = true;
                i += 2;
            }
            "--arrival-us" => {
                let mean: u64 = value(args, i, flag)?
                    .parse()
                    .map_err(|e| format!("bad --arrival-us: {e}"))?;
                if mean == 0 {
                    return Err("--arrival-us must be at least 1".to_string());
                }
                parsed.config.arrival_us = Some(mean);
                i += 2;
            }
            "--latency-json" => {
                parsed.latency_json = Some(value(args, i, flag)?);
                i += 2;
            }
            "--soak" => {
                parsed.soak = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Daemon-config flags only shape the in-process daemon; a remote
    // daemon keeps its own config, so accepting them with --connect
    // would silently do nothing.
    if let (Some(addr), Some(flag)) = (&parsed.connect, daemon_flag) {
        return Err(format!(
            "{flag} configures the in-process daemon and has no effect with --connect {addr}; \
             pass it to `coded` instead"
        ));
    }
    if !parsed.soak {
        for (set, flag) in [
            (parsed.soak_rounds.is_some(), "--rounds"),
            (parsed.soak_duration.is_some(), "--duration-secs"),
            (parsed.clients != 1, "--clients"),
        ] {
            if set {
                return Err(format!("{flag} only makes sense with --soak"));
            }
        }
    }
    if parsed.soak && parsed.soak_rounds.is_some() && parsed.soak_duration.is_some() {
        return Err("--rounds and --duration-secs are mutually exclusive".to_string());
    }
    if parsed.soak && parsed.clients > 1 && parsed.connect.is_none() {
        return Err("--clients needs --connect: concurrent soak clients are TCP".to_string());
    }
    if parsed.config.arrival_us.is_some() && parsed.connect.is_none() {
        return Err(
            "--arrival-us needs --connect or --proxy: open-loop issue is TCP-only".to_string(),
        );
    }
    if parsed.config.arrival_us.is_some() && parsed.soak {
        return Err("--arrival-us does not apply to --soak".to_string());
    }
    Ok(parsed)
}

fn run_soak_mode(args: &Args) -> Result<(), String> {
    let config = SoakConfig {
        seed: args.config.seed,
        // --duration-secs switches to wall-clock mode (rounds = 0);
        // otherwise --rounds (default 50) keeps the run deterministic.
        rounds: match (args.soak_rounds, args.soak_duration) {
            (_, Some(_)) => 0,
            (Some(rounds), None) => rounds,
            (None, None) => 50,
        },
        duration: Duration::from_secs(args.soak_duration.unwrap_or(30)),
        requests_per_round: args.requests_per_round,
        reload_every: args.reload_every,
        device: args.config.device.clone(),
        router: args.config.router.clone(),
        max_qubits: args.config.max_qubits,
        hot: args.config.hot,
        repeat_ratio: args.config.repeat_ratio,
    };
    if args.clients > 1 {
        let addr = args.connect.as_ref().expect("checked in parse_args");
        let reports = run_soak_tcp_clients(addr, args.clients, &config)
            .map_err(|e| format!("soak failed: {e}"))?;
        for (i, report) in reports.iter().enumerate() {
            let client_config = SoakConfig {
                seed: config.seed + i as u64,
                reload_every: 0,
                ..config.clone()
            };
            println!("client {i}: {}", report.summary_line(&client_config));
        }
        println!(
            "OK: {} clients x {} rounds, zero invariant violations",
            reports.len(),
            reports.first().map_or(0, |r| r.rounds),
        );
        return Ok(());
    }
    let report = match &args.connect {
        Some(addr) => {
            let mut transport = TcpTransport::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            run_soak(&config, &mut transport)
        }
        None => {
            let mut service = Service::start(args.service.clone());
            run_soak(&config, &mut service)
        }
    }
    .map_err(|e| format!("soak failed: {e}"))?;
    println!("{}", report.summary_line(&config));
    println!(
        "OK: {} rounds, {} requests, zero invariant violations",
        report.rounds, report.requests
    );
    Ok(())
}

fn run_load(args: &Args) -> Result<(), String> {
    if args.soak {
        return run_soak_mode(args);
    }
    let report = match (&args.connect, args.config.arrival_us) {
        (Some(addr), Some(_)) => run_open_loop(&args.config, addr),
        (Some(addr), None) => {
            let mut transport = TcpTransport::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            run(&args.config, &mut transport)
        }
        (None, _) => {
            // Closed-loop: drive an in-process daemon directly. The
            // loadgen seed keeps the daemon's placement seed at its
            // default so summaries depend only on the printed config.
            let mut service = Service::start(args.service.clone());
            run(&args.config, &mut service)
        }
    }
    .map_err(|e| format!("load run failed: {e}"))?;
    if args.expect_proxy && !report.proxy {
        return Err(
            "--proxy target did not answer as a proxy (no \"proxy\":true in stats); \
             use --connect for a bare daemon"
                .to_string(),
        );
    }

    print!("{}", report.summary_json());
    let latency = report.latency();
    eprintln!(
        "latency over {} requests: mean {:.1} us, p50 {} us, p90 {} us, p99 {} us, max {} us; \
         cache hit rate {:.3}",
        latency.count,
        latency.mean_us,
        latency.p50_us,
        latency.p90_us,
        latency.p99_us,
        latency.max_us,
        report.cache_hit_rate(),
    );
    if report.proxy {
        eprintln!(
            "proxy tier: {} retries, {} failovers over the run",
            report.proxy_retries, report.proxy_failovers,
        );
    }
    if let Some(path) = &args.latency_json {
        std::fs::write(path, report.latency_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.config.requests
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run_load(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
