//! `loadgen` — deterministic load generator for the routing daemon.
//!
//! ```text
//! loadgen [--requests N] [--seed S] [--repeat-ratio R] [--device NAME]
//!         [--router NAME] [--max-qubits N] [--hot N]
//!         [--connect ADDR | in-process] [--latency-json PATH]
//!         [--workers N] [--cache-capacity N] [--queue-capacity N]
//! ```
//!
//! Replays a seeded mix of benchmark circuits (hot-set repeats with
//! probability `--repeat-ratio`) and reports:
//!
//! * **stdout** — the deterministic summary JSON (counts, cache hit
//!   rate, response-stream checksum; no timing). Two runs with the
//!   same flags print byte-identical summaries — the CI check.
//! * **stderr** — the latency summary (p50/p90/p99 µs), which is a
//!   measurement and therefore *not* deterministic.
//! * `--latency-json PATH` — the versioned latency JSON.
//!
//! Without `--connect` the run is closed-loop: loadgen starts an
//! in-process daemon (configured by `--workers`/`--cache-capacity`/
//! `--queue-capacity`) and drives it directly, no port involved.

use codar_service::loadgen::{run, LoadgenConfig, TcpTransport};
use codar_service::{Service, ServiceConfig};
use std::process::ExitCode;

struct Args {
    config: LoadgenConfig,
    service: ServiceConfig,
    connect: Option<String>,
    latency_json: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: LoadgenConfig::default(),
        service: ServiceConfig::default(),
        connect: None,
        latency_json: None,
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut daemon_flag: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--requests" | "--seed" | "--max-qubits" | "--hot" | "--workers"
            | "--cache-capacity" | "--queue-capacity" => {
                let text = value(args, i, flag)?;
                let number: usize = text.parse().map_err(|e| format!("bad {flag}: {e}"))?;
                match flag {
                    "--requests" => parsed.config.requests = number,
                    "--seed" => parsed.config.seed = number as u64,
                    "--max-qubits" => parsed.config.max_qubits = number,
                    "--hot" => parsed.config.hot = number,
                    "--workers" => parsed.service.workers = number,
                    "--cache-capacity" => parsed.service.cache_capacity = number,
                    "--queue-capacity" => parsed.service.queue_capacity = number,
                    _ => unreachable!(),
                }
                if matches!(flag, "--workers" | "--cache-capacity" | "--queue-capacity") {
                    daemon_flag = Some(flag);
                }
                i += 2;
            }
            "--repeat-ratio" => {
                parsed.config.repeat_ratio = value(args, i, flag)?
                    .parse()
                    .map_err(|e| format!("bad --repeat-ratio: {e}"))?;
                i += 2;
            }
            "--device" => {
                parsed.config.device = value(args, i, flag)?;
                i += 2;
            }
            "--router" => {
                parsed.config.router = value(args, i, flag)?;
                i += 2;
            }
            "--connect" => {
                parsed.connect = Some(value(args, i, flag)?);
                i += 2;
            }
            "--latency-json" => {
                parsed.latency_json = Some(value(args, i, flag)?);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Daemon-config flags only shape the in-process daemon; a remote
    // daemon keeps its own config, so accepting them with --connect
    // would silently do nothing.
    if let (Some(addr), Some(flag)) = (&parsed.connect, daemon_flag) {
        return Err(format!(
            "{flag} configures the in-process daemon and has no effect with --connect {addr}; \
             pass it to `coded` instead"
        ));
    }
    Ok(parsed)
}

fn run_load(args: &Args) -> Result<(), String> {
    let report = match &args.connect {
        Some(addr) => {
            let mut transport = TcpTransport::connect(addr)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            run(&args.config, &mut transport)
        }
        None => {
            // Closed-loop: drive an in-process daemon directly. The
            // loadgen seed keeps the daemon's placement seed at its
            // default so summaries depend only on the printed config.
            let mut service = Service::start(args.service.clone());
            run(&args.config, &mut service)
        }
    }
    .map_err(|e| format!("load run failed: {e}"))?;

    print!("{}", report.summary_json());
    let latency = report.latency();
    eprintln!(
        "latency over {} requests: mean {:.1} us, p50 {} us, p90 {} us, p99 {} us, max {} us; \
         cache hit rate {:.3}",
        latency.count,
        latency.mean_us,
        latency.p50_us,
        latency.p90_us,
        latency.p99_us,
        latency.max_us,
        report.cache_hit_rate(),
    );
    if let Some(path) = &args.latency_json {
        std::fs::write(path, report.latency_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.errors > 0 {
        return Err(format!(
            "{} of {} requests failed",
            report.errors, report.config.requests
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run_load(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
