//! `codar-fuzz` — seeded structured fuzzing of the daemon protocol.
//!
//! ```text
//! codar-fuzz [--seed S] [--iterations N]
//!            [--grammar all|protocol|qasm|calibration|proxy|trace] [--stats-every N]
//!            [--cache-capacity N] [--e2e] [--coded PATH]
//!            [--emit-corpus PATH]
//! ```
//!
//! Generates a corpus with `codar_service::fuzz` (a pure function of
//! the seed — two runs at equal flags print byte-identical summaries)
//! and replays it either in-process against `Service::handle_line`
//! (default) or end-to-end against a spawned `coded --stdin` child
//! (`--e2e`), holding every reply to the protocol contract: one
//! single-line JSON reply per request, known status, exact id echo,
//! monotone counters and bounded cache occupancy across `stats`
//! probes.
//!
//! Exit status: 0 on a clean run, 1 with a minimized repro on any
//! invariant violation, 2 on usage errors. A served `shutdown` in
//! `--e2e` mode exits the child; the harness expects that, verifies
//! the goodbye reply, and respawns for the rest of the corpus.

use codar_service::fuzz::{
    expected_id, generate_corpus, minimize, run_in_process, FuzzConfig, Grammar, InvariantChecker,
    ReplyTally, DEFAULT_SEED,
};
use codar_service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, ExitCode, Stdio};

struct Args {
    fuzz: FuzzConfig,
    cache_capacity: usize,
    e2e: bool,
    coded: Option<String>,
    emit_corpus: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        fuzz: FuzzConfig {
            seed: DEFAULT_SEED,
            iterations: 1000,
            grammars: Grammar::ALL.to_vec(),
            stats_every: 16,
        },
        cache_capacity: 64,
        e2e: false,
        coded: None,
        emit_corpus: None,
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                parsed.fuzz.seed = value(args, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                i += 2;
            }
            "--iterations" => {
                parsed.fuzz.iterations = value(args, i, "--iterations")?
                    .parse()
                    .map_err(|e| format!("bad --iterations value: {e}"))?;
                i += 2;
            }
            "--stats-every" => {
                parsed.fuzz.stats_every = value(args, i, "--stats-every")?
                    .parse()
                    .map_err(|e| format!("bad --stats-every value: {e}"))?;
                i += 2;
            }
            "--cache-capacity" => {
                parsed.cache_capacity = value(args, i, "--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("bad --cache-capacity value: {e}"))?;
                i += 2;
            }
            "--grammar" => {
                let name = value(args, i, "--grammar")?;
                parsed.fuzz.grammars = if name == "all" {
                    Grammar::ALL.to_vec()
                } else {
                    vec![Grammar::parse(&name).ok_or_else(|| {
                        format!(
                            "unknown grammar `{name}` \
                             (protocol|qasm|calibration|proxy|trace|portfolio|all)"
                        )
                    })?]
                };
                i += 2;
            }
            "--e2e" => {
                parsed.e2e = true;
                i += 1;
            }
            "--coded" => {
                parsed.coded = Some(value(args, i, "--coded")?);
                i += 2;
            }
            "--emit-corpus" => {
                parsed.emit_corpus = Some(value(args, i, "--emit-corpus")?);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

/// Where the daemon binary lives for `--e2e`: an explicit `--coded`,
/// or `coded` next to this executable (the cargo layout).
fn coded_path(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(path) = &args.coded {
        return Ok(path.into());
    }
    let me = std::env::current_exe().map_err(|e| format!("cannot locate self: {e}"))?;
    let sibling = me.with_file_name("coded");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err("cannot find `coded` next to codar-fuzz; pass --coded PATH".to_string())
    }
}

struct Violation {
    index: usize,
    input: String,
    reply: String,
    message: String,
}

/// Replays the corpus against `coded --stdin` children, respawning
/// after every served shutdown and verifying the stream stays in
/// lockstep (one reply per line, nothing unsolicited at EOF).
fn run_e2e(
    corpus: &[String],
    coded: &std::path::Path,
    service_config: &ServiceConfig,
) -> Result<(u64, ReplyTally), Violation> {
    let spawn = || -> std::io::Result<(Child, BufReader<std::process::ChildStdout>)> {
        let mut child = Command::new(coded)
            .arg("--stdin")
            .arg("--cache-capacity")
            .arg(service_config.cache_capacity.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        Ok((child, BufReader::new(stdout)))
    };
    let fail = |index: usize, input: &str, reply: &str, message: String| Violation {
        index,
        input: input.to_string(),
        reply: reply.to_string(),
        message,
    };
    let mut reply_fnv = codar_service::cache::FNV_OFFSET;
    let mut tally = ReplyTally::default();
    let (mut child, mut reader) =
        spawn().map_err(|e| fail(0, "", "", format!("cannot spawn coded: {e}")))?;
    // Counter invariants hold per daemon lifetime, so the checker is
    // reborn with every child.
    let mut checker = InvariantChecker::new();
    let mut respawn_next = false;
    for (index, line) in corpus.iter().enumerate() {
        if respawn_next {
            let _ = child.wait();
            tally.ok += checker.tally.ok;
            tally.error += checker.tally.error;
            tally.overloaded += checker.tally.overloaded;
            let (c, r) =
                spawn().map_err(|e| fail(index, line, "", format!("cannot respawn coded: {e}")))?;
            child = c;
            reader = r;
            checker = InvariantChecker::new();
            respawn_next = false;
        }
        let stdin = child.stdin.as_mut().expect("piped stdin");
        if let Err(e) = writeln!(stdin, "{line}").and_then(|()| stdin.flush()) {
            return Err(fail(
                index,
                line,
                "",
                format!("daemon dropped the stream: {e}"),
            ));
        }
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) => {
                return Err(fail(
                    index,
                    line,
                    "",
                    "daemon exited without replying".to_string(),
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(fail(index, line, "", format!("broken reply stream: {e}"))),
        }
        let reply = reply.trim_end_matches('\n');
        // Same normalization as the in-process report: measurements
        // (histogram sums/buckets, span clocks) are zeroed before
        // hashing, everything decided stays byte-checked.
        reply_fnv = codar_service::cache::fnv1a_extend(
            reply_fnv,
            codar_service::fuzz::normalize_reply(reply).as_bytes(),
        );
        reply_fnv = codar_service::cache::fnv1a_extend(reply_fnv, b"\n");
        if let Err(message) = checker.check(line, reply) {
            return Err(fail(index, line, reply, message));
        }
        // A served shutdown means this child is exiting; everything
        // after it needs a fresh daemon.
        if reply.contains("\"type\":\"shutdown\"") && reply.contains("\"status\":\"ok\"") {
            respawn_next = true;
        }
    }
    // Close the stream and make sure the daemon says nothing more:
    // exactly one reply per line means silence at EOF.
    drop(child.stdin.take());
    let mut leftovers = String::new();
    let _ = reader.read_to_string(&mut leftovers);
    let _ = child.wait();
    if !leftovers.trim().is_empty() {
        return Err(fail(
            corpus.len(),
            "",
            leftovers.trim(),
            "unsolicited output after the last request".to_string(),
        ));
    }
    tally.ok += checker.tally.ok;
    tally.error += checker.tally.error;
    tally.overloaded += checker.tally.overloaded;
    Ok((reply_fnv, tally))
}

fn grammars_label(grammars: &[Grammar]) -> String {
    grammars
        .iter()
        .map(|g| g.name())
        .collect::<Vec<_>>()
        .join(",")
}

fn run(args: &Args) -> Result<(), (String, ExitCode)> {
    let usage = |m: String| (m, ExitCode::from(2));
    let corpus = generate_corpus(&args.fuzz);
    let mut corpus_fnv = codar_service::cache::FNV_OFFSET;
    for line in &corpus {
        corpus_fnv = codar_service::cache::fnv1a_extend(corpus_fnv, line.as_bytes());
        corpus_fnv = codar_service::cache::fnv1a_extend(corpus_fnv, b"\n");
    }
    if let Some(path) = &args.emit_corpus {
        let mut text = corpus.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| usage(format!("cannot write {path}: {e}")))?;
    }
    let service_config = ServiceConfig {
        cache_capacity: args.cache_capacity,
        ..ServiceConfig::default()
    };
    println!(
        "codar-fuzz: seed={} iterations={} grammars={} mode={}",
        args.fuzz.seed,
        args.fuzz.iterations,
        grammars_label(&args.fuzz.grammars),
        if args.e2e { "e2e" } else { "in-process" },
    );
    let (reply_fnv, tally) = if args.e2e {
        let coded = coded_path(args).map_err(usage)?;
        match run_e2e(&corpus, &coded, &service_config) {
            Ok(result) => result,
            Err(violation) => {
                // Shrink against a fresh in-process service: nearly
                // every e2e crasher reproduces there, and it avoids a
                // process spawn per ddmin probe.
                let config = service_config.clone();
                let minimized = minimize(&violation.input, |candidate| {
                    let fresh = Service::start(config.clone());
                    let reply = fresh.handle_line(candidate);
                    InvariantChecker::new().check(candidate, &reply).is_err()
                });
                return Err((
                    format!(
                        "invariant violation at corpus line {} (seed {}):\n  {}\n  \
                         input:     {}\n  minimized: {}\n  reply:     {}\n  expected id: {:?}",
                        violation.index,
                        args.fuzz.seed,
                        violation.message,
                        violation.input,
                        minimized,
                        violation.reply,
                        expected_id(&violation.input),
                    ),
                    ExitCode::FAILURE,
                ));
            }
        }
    } else {
        let service = Service::start(service_config);
        match run_in_process(&corpus, &service) {
            Ok(report) => (report.reply_fnv, report.tally),
            Err(violation) => {
                return Err((
                    format!(
                        "invariant violation at corpus line {} (seed {}):\n  {}\n  \
                         minimized: {}\n  reply:     {}\n  expected id: {:?}",
                        violation.index,
                        args.fuzz.seed,
                        violation.message,
                        violation.input,
                        violation.reply,
                        expected_id(&violation.input),
                    ),
                    ExitCode::FAILURE,
                ));
            }
        }
    };
    println!("corpus fnv=0x{corpus_fnv:016x} replies fnv=0x{reply_fnv:016x}");
    println!(
        "replies ok={} error={} overloaded={}",
        tally.ok, tally.error, tally.overloaded
    );
    println!("OK: {} lines, zero invariant violations", corpus.len());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err((message, code)) => {
            eprintln!("{message}");
            code
        }
    }
}
