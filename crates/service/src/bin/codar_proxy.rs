//! `codar-proxy` — the stateless sharded front tier.
//!
//! ```text
//! codar-proxy --backend ADDR [--backend ADDR ...] [--listen ADDR]
//!             [--retries N] [--connect-timeout-ms N] [--read-timeout-ms N]
//!             [--backoff-base-ms N] [--backoff-cap-ms N]
//!             [--probe-interval-ms N] [--seed S] [--drain-ms N]
//!             [--trace-log FILE]
//! ```
//!
//! Speaks the same NDJSON protocol as `coded` on the client side and
//! fans requests out across the `--backend` fleet by rendezvous
//! hashing of the canonical route identity (see
//! `codar_service::proxy`). Run every backend with the **same seed and
//! configuration**; replies are then byte-identical regardless of
//! which shard answers, and the tier is transparent: clients cannot
//! tell one shard from eight, even across failovers.
//!
//! `--trace-log FILE` attaches the structured trace sink: the proxy
//! records its shard-pick/attempt span trees to FILE and injects
//! minted `p-N` trace ids into untraced forwarded route lines, so
//! `codar-trace --merge` can stitch proxy and shard logs into
//! per-request waterfalls.

use codar_service::{Proxy, ProxyConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: ProxyConfig,
    listen: String,
    drain: Duration,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: ProxyConfig::default(),
        listen: "127.0.0.1:7800".to_string(),
        drain: Duration::from_millis(5000),
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_ms = |text: String, flag: &str| -> Result<Duration, String> {
        text.parse()
            .map(Duration::from_millis)
            .map_err(|e| format!("bad {flag} value: {e}"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                parsed.config.backends.push(value(args, i, "--backend")?);
                i += 2;
            }
            "--listen" => {
                parsed.listen = value(args, i, "--listen")?;
                i += 2;
            }
            "--retries" => {
                parsed.config.retries = value(args, i, "--retries")?
                    .parse()
                    .map_err(|e| format!("bad --retries value: {e}"))?;
                i += 2;
            }
            "--connect-timeout-ms" => {
                parsed.config.connect_timeout = parse_ms(
                    value(args, i, "--connect-timeout-ms")?,
                    "--connect-timeout-ms",
                )?;
                i += 2;
            }
            "--read-timeout-ms" => {
                parsed.config.read_timeout =
                    parse_ms(value(args, i, "--read-timeout-ms")?, "--read-timeout-ms")?;
                i += 2;
            }
            "--backoff-base-ms" => {
                parsed.config.backoff_base =
                    parse_ms(value(args, i, "--backoff-base-ms")?, "--backoff-base-ms")?;
                i += 2;
            }
            "--backoff-cap-ms" => {
                parsed.config.backoff_cap =
                    parse_ms(value(args, i, "--backoff-cap-ms")?, "--backoff-cap-ms")?;
                i += 2;
            }
            "--probe-interval-ms" => {
                parsed.config.probe_interval = parse_ms(
                    value(args, i, "--probe-interval-ms")?,
                    "--probe-interval-ms",
                )?;
                i += 2;
            }
            "--seed" => {
                parsed.config.seed = value(args, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                i += 2;
            }
            "--drain-ms" => {
                parsed.drain = parse_ms(value(args, i, "--drain-ms")?, "--drain-ms")?;
                i += 2;
            }
            "--trace-log" => {
                parsed.config.trace_log = Some(value(args, i, "--trace-log")?);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: Args) -> Result<(), String> {
    let backends = args.config.backends.len();
    let proxy = Proxy::start(args.config)?;
    let listener = std::net::TcpListener::bind(&args.listen)
        .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
    eprintln!(
        "codar-proxy: listening on {} ({backends} backends, retry budget {})",
        listener
            .local_addr()
            .map_or(args.listen.clone(), |a| a.to_string()),
        proxy.config().retries,
    );
    proxy
        .serve_tcp_with_drain(listener, args.drain)
        .map_err(|e| format!("accept loop failed: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
