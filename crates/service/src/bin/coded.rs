//! `coded` — the CODAR routing daemon.
//!
//! ```text
//! coded [--stdin | --listen ADDR] [--workers N] [--cache-capacity N]
//!       [--cache-shards N] [--queue-capacity N] [--seed S]
//!       [--drain-ms N] [--fault-plan PLAN] [--trace-log FILE]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `codar_service::protocol`:
//! `route` / `stats` / `devices` / `shutdown` requests, one response
//! line per request, in order. `--stdin` serves a single NDJSON stream
//! on stdin/stdout (no port; what tests and CI drive); the default
//! serves TCP on `--listen` (default `127.0.0.1:7878`), one thread per
//! connection over a shared worker pool and result cache.
//!
//! `--cache-capacity 0` disables the result cache — responses stay
//! byte-identical, only slower (the determinism gate diffs the two).
//!
//! On `shutdown` the TCP accept loop stops and **drains**: tracked
//! per-connection threads are joined so in-flight responses complete;
//! `--drain-ms` bounds how long readers parked on idle connections can
//! hold up the exit (default 5000).
//!
//! `--trace-log FILE` attaches the structured trace sink: one NDJSON
//! span line per request-tree node is appended to FILE (see
//! `codar_service::trace`; `codar-trace` merges and profiles the
//! logs). Without the flag, tracing stays id-echo-only and mints
//! nothing.
//!
//! `--fault-plan` arms deterministic transport-fault injection (see
//! `codar_service::faults` for the grammar, e.g.
//! `delay:50@3;close:17@9;kill@40`): the plan's `kill` events call
//! `process::exit(9)` so a supervisor — or the CI proxy smoke's
//! restart wrapper — observes a real crash. Strictly a test/chaos
//! facility; production daemons run without it.

use codar_service::faults::FaultPlan;
use codar_service::{Service, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    config: ServiceConfig,
    stdin: bool,
    listen: String,
    drain: Duration,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: ServiceConfig::default(),
        stdin: false,
        listen: "127.0.0.1:7878".to_string(),
        drain: Duration::from_millis(5000),
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_num = |text: String, flag: &str| -> Result<usize, String> {
        text.parse().map_err(|e| format!("bad {flag} value: {e}"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdin" => {
                parsed.stdin = true;
                i += 1;
            }
            "--listen" => {
                parsed.listen = value(args, i, "--listen")?;
                i += 2;
            }
            "--workers" => {
                parsed.config.workers = parse_num(value(args, i, "--workers")?, "--workers")?;
                i += 2;
            }
            "--cache-capacity" => {
                parsed.config.cache_capacity =
                    parse_num(value(args, i, "--cache-capacity")?, "--cache-capacity")?;
                i += 2;
            }
            "--cache-shards" => {
                parsed.config.cache_shards =
                    parse_num(value(args, i, "--cache-shards")?, "--cache-shards")?;
                i += 2;
            }
            "--queue-capacity" => {
                parsed.config.queue_capacity =
                    parse_num(value(args, i, "--queue-capacity")?, "--queue-capacity")?;
                i += 2;
            }
            "--seed" => {
                parsed.config.seed = value(args, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                i += 2;
            }
            "--drain-ms" => {
                parsed.drain = Duration::from_millis(
                    value(args, i, "--drain-ms")?
                        .parse()
                        .map_err(|e| format!("bad --drain-ms value: {e}"))?,
                );
                i += 2;
            }
            "--fault-plan" => {
                parsed.config.fault_plan = Some(
                    FaultPlan::parse(&value(args, i, "--fault-plan")?)
                        .map_err(|e| format!("bad --fault-plan value: {e}"))?,
                );
                // In the real bin a planned kill is a real crash.
                parsed.config.fault_exit = true;
                i += 2;
            }
            "--trace-log" => {
                parsed.config.trace_log = Some(value(args, i, "--trace-log")?);
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let service = Service::start(args.config.clone());
    if args.stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        service
            .serve_ndjson(stdin.lock(), stdout.lock())
            .map_err(|e| format!("stdin stream failed: {e}"))
    } else {
        let listener = std::net::TcpListener::bind(&args.listen)
            .map_err(|e| format!("cannot listen on {}: {e}", args.listen))?;
        eprintln!(
            "coded: listening on {} ({} workers, cache capacity {})",
            listener
                .local_addr()
                .map_or(args.listen.clone(), |a| a.to_string()),
            args.config.workers.max(1),
            args.config.cache_capacity,
        );
        service
            .serve_tcp_with_drain(listener, args.drain)
            .map_err(|e| format!("accept loop failed: {e}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
