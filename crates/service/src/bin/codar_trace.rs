//! `codar-trace` — offline trace-log tooling for the service tier.
//!
//! ```text
//! codar-trace --normalize FILE...
//! codar-trace --merge --proxy FILE --shard FILE [--shard FILE ...]
//!             [--require-join] [--limit N]
//! codar-trace --profile FILE...
//! ```
//!
//! Consumes the NDJSON trace logs written by `coded --trace-log` and
//! `codar-proxy --trace-log` (one span line per request-tree node, see
//! `codar_service::trace`).
//!
//! * `--normalize` prints every span line with the two wall-clock
//!   fields (`t_us`, `dur_us`) zeroed. Two seeded reruns of the same
//!   workload must produce byte-identical normalized output — the CI
//!   trace smoke diffs exactly this.
//! * `--merge` joins the proxy log with the shard logs by trace id and
//!   prints a per-request waterfall: the proxy's shard-pick/attempt
//!   timeline followed by the owning shard's phase timeline.
//!   `--require-join` additionally asserts that every proxy request
//!   tree that reached a backend (root outcome not `overloaded`) joins
//!   **exactly one** shard tree, and fails the run otherwise.
//! * `--profile` aggregates phase spans across logs into a table of
//!   count / total / mean / share per phase name.

use codar_service::json::Json;
use codar_service::normalize_line;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

/// One parsed span line. Field names mirror the serialized form.
struct SpanLine {
    trace: String,
    ord: u64,
    kind: String,
    name: String,
    detail: Option<String>,
    t_us: u64,
    dur_us: Option<u64>,
}

fn parse_span(line: &str) -> Result<SpanLine, String> {
    let json = Json::parse(line)?;
    let field = |key: &str| -> Result<String, String> {
        json.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("span line missing string field `{key}`"))
    };
    Ok(SpanLine {
        trace: field("trace")?,
        ord: json
            .get("ord")
            .and_then(Json::as_u64)
            .ok_or("span line missing `ord`")?,
        kind: field("kind")?,
        name: field("name")?,
        detail: json
            .get("detail")
            .and_then(Json::as_str)
            .map(str::to_string),
        t_us: json
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or("span line missing `t_us`")?,
        dur_us: json.get("dur_us").and_then(Json::as_u64),
    })
}

fn read_lines(path: &str) -> Result<Vec<String>, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open trace log `{path}`: {e}"))?;
    BufReader::new(file)
        .lines()
        .map(|line| line.map_err(|e| format!("cannot read `{path}`: {e}")))
        .collect()
}

fn read_spans(path: &str) -> Result<Vec<SpanLine>, String> {
    read_lines(path)?
        .iter()
        .filter(|line| !line.trim().is_empty())
        .map(|line| parse_span(line).map_err(|e| format!("{path}: {e}")))
        .collect()
}

/// Spans of one log grouped into per-trace trees, first-seen order.
struct Trees {
    order: Vec<String>,
    by_trace: HashMap<String, Vec<SpanLine>>,
}

fn group(spans: Vec<SpanLine>) -> Trees {
    let mut order = Vec::new();
    let mut by_trace: HashMap<String, Vec<SpanLine>> = HashMap::new();
    for span in spans {
        if !by_trace.contains_key(&span.trace) {
            order.push(span.trace.clone());
        }
        by_trace.entry(span.trace.clone()).or_default().push(span);
    }
    for tree in by_trace.values_mut() {
        tree.sort_by_key(|s| s.ord);
    }
    Trees { order, by_trace }
}

fn root_of(tree: &[SpanLine]) -> Option<&SpanLine> {
    tree.iter().find(|s| s.ord == 0 && s.kind == "request")
}

fn print_tier(tier: &str, tree: &[SpanLine]) {
    for span in tree.iter().filter(|s| s.ord != 0) {
        let mut label = span.name.clone();
        if let Some(detail) = &span.detail {
            label.push(' ');
            label.push_str(detail);
        }
        match span.dur_us {
            Some(dur) => println!("  {tier:<5} {label:<42} @{:<8} {dur}us", span.t_us),
            None => println!("  {tier:<5} {label:<42} @{}", span.t_us),
        }
    }
}

fn merge(
    proxy_path: &str,
    shard_paths: &[String],
    require_join: bool,
    limit: usize,
) -> Result<(), String> {
    let proxy = group(read_spans(proxy_path)?);
    let mut shard_spans = Vec::new();
    for path in shard_paths {
        shard_spans.extend(read_spans(path)?);
    }
    let shards = group(shard_spans);
    let mut violations = 0usize;
    let mut printed = 0usize;
    for trace in &proxy.order {
        let tree = &proxy.by_trace[trace];
        let Some(root) = root_of(tree) else {
            eprintln!("codar-trace: proxy trace `{trace}` has no root span");
            violations += 1;
            continue;
        };
        let outcome = root.detail.as_deref().unwrap_or("?");
        let shard_tree = shards.by_trace.get(trace);
        // A forwarded request that got a backend answer must have
        // recorded exactly one shard tree under the same id; local
        // proxy verbs never share an id with a shard (the `p-` mint
        // namespace is the proxy's own).
        let joinable = root.name == "route" && outcome != "overloaded";
        if require_join && joinable {
            let shard_roots = shard_tree.map_or(0, |tree| {
                tree.iter()
                    .filter(|s| s.ord == 0 && s.kind == "request")
                    .count()
            });
            if shard_roots != 1 {
                eprintln!(
                    "codar-trace: trace `{trace}` joins {shard_roots} shard trees, expected 1"
                );
                violations += 1;
            }
        }
        if printed < limit {
            printed += 1;
            let shard_total = shard_tree
                .and_then(|tree| root_of(tree))
                .and_then(|root| root.dur_us);
            match (root.dur_us, shard_total) {
                (Some(p), Some(s)) => {
                    println!("{trace} {} {outcome} (proxy {p}us, shard {s}us)", root.name);
                }
                (Some(p), None) => println!("{trace} {} {outcome} (proxy {p}us)", root.name),
                _ => println!("{trace} {} {outcome}", root.name),
            }
            print_tier("proxy", tree);
            if let Some(shard_tree) = shard_tree {
                print_tier("shard", shard_tree);
            }
            println!();
        }
    }
    let joined = proxy
        .order
        .iter()
        .filter(|t| shards.by_trace.contains_key(*t))
        .count();
    println!(
        "merged {} proxy traces with {} shard trees ({} joined, {} shown)",
        proxy.order.len(),
        shards.order.len(),
        joined,
        printed,
    );
    if violations > 0 {
        return Err(format!("{violations} join violations"));
    }
    Ok(())
}

fn profile(paths: &[String]) -> Result<(), String> {
    // Name -> (count, total_us); insertion-ordered for stable output.
    let mut names: Vec<String> = Vec::new();
    let mut stats: HashMap<String, (u64, u64)> = HashMap::new();
    for path in paths {
        for span in read_spans(path)? {
            if span.kind != "phase" {
                continue;
            }
            if !stats.contains_key(&span.name) {
                names.push(span.name.clone());
            }
            let entry = stats.entry(span.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.dur_us.unwrap_or(0);
        }
    }
    let grand: u64 = stats.values().map(|(_, total)| total).sum();
    println!(
        "{:<12} {:>8} {:>12} {:>10} {:>7}",
        "phase", "count", "total_us", "mean_us", "share"
    );
    for name in &names {
        let (count, total) = stats[name];
        let mean = if count == 0 { 0 } else { total / count };
        let share = if grand == 0 {
            0.0
        } else {
            100.0 * total as f64 / grand as f64
        };
        println!("{name:<12} {count:>8} {total:>12} {mean:>10} {share:>6.1}%");
    }
    Ok(())
}

fn normalize(paths: &[String]) -> Result<(), String> {
    for path in paths {
        for line in read_lines(path)? {
            if line.trim().is_empty() {
                continue;
            }
            println!("{}", normalize_line(&line));
        }
    }
    Ok(())
}

enum Mode {
    Normalize,
    Merge,
    Profile,
}

fn run(args: &[String]) -> Result<(), String> {
    let mut mode = None;
    let mut files = Vec::new();
    let mut proxy_log = None;
    let mut shard_logs = Vec::new();
    let mut require_join = false;
    let mut limit = 10usize;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let set_mode = |m: Mode, current: &mut Option<Mode>| -> Result<(), String> {
        if current.is_some() {
            return Err("pick exactly one of --normalize / --merge / --profile".into());
        }
        *current = Some(m);
        Ok(())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--normalize" => {
                set_mode(Mode::Normalize, &mut mode)?;
                i += 1;
            }
            "--merge" => {
                set_mode(Mode::Merge, &mut mode)?;
                i += 1;
            }
            "--profile" => {
                set_mode(Mode::Profile, &mut mode)?;
                i += 1;
            }
            "--proxy" => {
                proxy_log = Some(value(args, i, "--proxy")?);
                i += 2;
            }
            "--shard" => {
                shard_logs.push(value(args, i, "--shard")?);
                i += 2;
            }
            "--require-join" => {
                require_join = true;
                i += 1;
            }
            "--limit" => {
                limit = value(args, i, "--limit")?
                    .parse()
                    .map_err(|e| format!("bad --limit value: {e}"))?;
                i += 2;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            file => {
                files.push(file.to_string());
                i += 1;
            }
        }
    }
    match mode {
        Some(Mode::Normalize) => {
            if files.is_empty() {
                return Err("--normalize needs at least one FILE".into());
            }
            normalize(&files)
        }
        Some(Mode::Profile) => {
            if files.is_empty() {
                return Err("--profile needs at least one FILE".into());
            }
            profile(&files)
        }
        Some(Mode::Merge) => {
            let proxy_log = proxy_log.ok_or("--merge needs --proxy FILE")?;
            if shard_logs.is_empty() {
                return Err("--merge needs at least one --shard FILE".into());
            }
            merge(&proxy_log, &shard_logs, require_join, limit)
        }
        None => Err("pick one of --normalize / --merge / --profile".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("codar-trace: {message}");
            ExitCode::FAILURE
        }
    }
}
