//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! Requests are JSON objects dispatched on their `"type"` field:
//!
//! | request | fields | response |
//! |---|---|---|
//! | `route` | `circuit` (QASM source), `device`, optional `router` (default `codar`), optional `id` | routed QASM + depth/swap/duration metrics |
//! | `stats` | optional `id` | request/cache counters |
//! | `devices` | optional `id` | the device catalog |
//! | `shutdown` | optional `id` | ack; the daemon stops serving |
//!
//! Responses always carry `"status"`: `"ok"`, `"error"` or
//! `"overloaded"`. When the request had an `id`, the response echoes it
//! as its first field. **Route response bodies are cache-transparent**:
//! they never say whether they were served from the cache, so a
//! cache-enabled and a cache-disabled daemon produce byte-identical
//! response streams for the same route requests (the determinism gate);
//! cache effectiveness is observable via `stats` instead.
//!
//! Responses are emitted with hand-formatted, fixed field order — they
//! are diffed byte-for-byte by golden tests and the loadgen stream
//! checksum.

use crate::json::{escape, Json};
use codar_circuit::schedule::Time;
use codar_engine::RouterKind;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Route a QASM circuit on a named device.
    Route {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// Target device name (see `codar_arch::Device::by_name`).
        device: String,
        /// Router to use.
        router: RouterKind,
        /// OpenQASM 2.0 source of the circuit.
        qasm: String,
    },
    /// Request/cache counters.
    Stats {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// The device catalog.
    Devices {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Stop serving after replying.
    Shutdown {
        /// Echoed correlation id.
        id: Option<u64>,
    },
}

impl Request {
    /// Parses one NDJSON request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, a missing
    /// or unknown `type`, or missing/ill-typed fields.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let value = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        if !matches!(value, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let id = match value.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "`id` must be a non-negative integer".to_string())?,
            ),
        };
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `type` field".to_string())?;
        match kind {
            "route" => {
                let device = value
                    .get("device")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "route request needs a `device` string".to_string())?
                    .to_string();
                let qasm = value
                    .get("circuit")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "route request needs a `circuit` string".to_string())?
                    .to_string();
                let router = match value.get("router") {
                    None | Some(Json::Null) => RouterKind::Codar,
                    Some(v) => {
                        let name = v
                            .as_str()
                            .ok_or_else(|| "`router` must be a string".to_string())?;
                        RouterKind::parse(name).ok_or_else(|| format!("unknown router `{name}`"))?
                    }
                };
                Ok(Request::Route {
                    id,
                    device,
                    router,
                    qasm,
                })
            }
            "stats" => Ok(Request::Stats { id }),
            "devices" => Ok(Request::Devices { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// The correlation id, for any request kind.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Route { id, .. }
            | Request::Stats { id }
            | Request::Devices { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// Everything a successful `route` reply reports.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Device the circuit was routed on.
    pub device: String,
    /// Router that produced the result.
    pub router: RouterKind,
    /// Qubits used by the input circuit.
    pub qubits: usize,
    /// Input gate count (after ≤2-qubit decomposition).
    pub input_gates: usize,
    /// Weighted depth (schedule makespan) of the routed circuit.
    pub weighted_depth: Time,
    /// Unweighted depth of the routed circuit.
    pub depth: usize,
    /// SWAPs inserted by the router.
    pub swaps: usize,
    /// Output gate count.
    pub output_gates: usize,
    /// Routed circuit as OpenQASM 2.0 (physical qubit indices).
    pub qasm: String,
}

impl RouteOutcome {
    /// The response body (no `id`; see [`attach_id`]).
    pub fn body(&self) -> String {
        format!(
            "{{\"type\":\"route\",\"status\":\"ok\",\"device\":{},\"router\":{},\
             \"qubits\":{},\"input_gates\":{},\"weighted_depth\":{},\"depth\":{},\
             \"swaps\":{},\"output_gates\":{},\"verified\":true,\"qasm\":{}}}",
            escape(&self.device),
            escape(self.router.name()),
            self.qubits,
            self.input_gates,
            self.weighted_depth,
            self.depth,
            self.swaps,
            self.output_gates,
            escape(&self.qasm),
        )
    }
}

/// An error response body.
pub fn error_body(message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"status\":\"error\",\"error\":{}}}",
        escape(message)
    )
}

/// The backpressure response body: the bounded request queue was full.
pub fn overloaded_body() -> String {
    "{\"type\":\"error\",\"status\":\"overloaded\",\
     \"error\":\"request queue full, retry later\"}"
        .to_string()
}

/// The `shutdown` acknowledgement body.
pub fn shutdown_body() -> String {
    "{\"type\":\"shutdown\",\"status\":\"ok\"}".to_string()
}

/// Splices the echoed request `id` in front of a response body.
pub fn attach_id(id: Option<u64>, body: &str) -> String {
    match id {
        None => body.to_string(),
        Some(id) => {
            debug_assert!(body.starts_with('{'));
            format!("{{\"id\":{id},{}", &body[1..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_route_requests() {
        let req = Request::parse_line(
            r#"{"type":"route","id":3,"device":"q20","router":"sabre","circuit":"qreg q[1];"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Route {
                id: Some(3),
                device: "q20".into(),
                router: RouterKind::Sabre,
                qasm: "qreg q[1];".into(),
            }
        );
        assert_eq!(req.id(), Some(3));
    }

    #[test]
    fn router_defaults_to_codar_and_id_is_optional() {
        let req = Request::parse_line(r#"{"type":"route","device":"q5","circuit":"qreg q[1];"}"#)
            .unwrap();
        match req {
            Request::Route { id, router, .. } => {
                assert_eq!(id, None);
                assert_eq!(router, RouterKind::Codar);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(
            Request::parse_line(r#"{"type":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"devices","id":9}"#).unwrap(),
            Request::Devices { id: Some(9) }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: None }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("{oops", "malformed JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"device":"q20"}"#, "missing `type`"),
            (r#"{"type":"fly"}"#, "unknown request type"),
            (r#"{"type":"route","device":"q20"}"#, "`circuit`"),
            (r#"{"type":"route","circuit":"x"}"#, "`device`"),
            (
                r#"{"type":"route","device":"q20","circuit":"x","router":"qiskit"}"#,
                "unknown router",
            ),
            (r#"{"type":"stats","id":-1}"#, "`id`"),
            (r#"{"type":"stats","id":1.5}"#, "`id`"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.contains(needle), "`{line}` gave `{err}`");
        }
    }

    #[test]
    fn bodies_are_single_lines_with_ids_spliced() {
        let outcome = RouteOutcome {
            device: "q20".into(),
            router: RouterKind::Codar,
            qubits: 3,
            input_gates: 5,
            weighted_depth: 42,
            depth: 6,
            swaps: 1,
            output_gates: 6,
            qasm: "OPENQASM 2.0;\nqreg q[3];\n".into(),
        };
        let body = outcome.body();
        assert!(!body.contains('\n'), "NDJSON bodies must be one line");
        assert!(body.contains("\"verified\":true"));
        assert!(body.contains("\\n"), "QASM newlines must be escaped");
        let with = attach_id(Some(7), &body);
        assert!(with.starts_with("{\"id\":7,\"type\":\"route\""));
        assert_eq!(attach_id(None, &body), body);
        // Every body kind parses back as JSON.
        for b in [
            body,
            error_body("boom \"quoted\""),
            overloaded_body(),
            shutdown_body(),
        ] {
            let parsed = Json::parse(&b).expect(&b);
            assert!(parsed.get("status").is_some());
        }
    }
}
