//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order.
//! Requests are JSON objects dispatched on their `"type"` field:
//!
//! | request | fields | response |
//! |---|---|---|
//! | `route` | `circuit` (QASM source), `device`, optional `router` (default `codar`; `auto` routes the whole portfolio and keeps the winner), optional `alpha` (codar-cal and auto only), optional `id` | routed QASM + depth/swap/duration metrics (+ `cal_version`/`eps` when the device has an active calibration snapshot, + `chosen` for `auto` requests) |
//! | `calibration` | `device`, `action` (`get`/`set`); for `set`: `snapshot` (a calibration JSON document as a string) or `synthetic` (`{seed, drift}`) | the active snapshot / a versioned ack |
//! | `stats` | optional `id` | request/cache counters |
//! | `health` | optional `id` | readiness + draining state (a draining daemon reports `ready:false` and refuses new route work) |
//! | `metrics` | optional `id`, optional `hist` (boolean; `true` appends the log2-bucket latency histograms) | everything `stats` reports plus queue depth, in-flight gauge and per-verb counters, as scrape-friendly flat JSON |
//! | `devices` | optional `id` | the device catalog |
//! | `trace` | optional `id`, optional `n` (default 32, capped) | the last `n` span lines from the daemon's trace ring |
//! | `shutdown` | optional `id` | ack; the daemon stops serving |
//!
//! Every request additionally accepts an optional `"trace"` field — a
//! non-empty string of at most
//! [`TRACE_ID_MAX_BYTES`](crate::trace::TRACE_ID_MAX_BYTES) bytes used
//! as the request's trace id. When (and only when) a request carries a
//! valid trace id, the response echoes it right after the `id`; absent
//! the field, responses are byte-identical to the pre-tracing
//! protocol.
//!
//! Responses always carry `"status"`: `"ok"`, `"error"` or
//! `"overloaded"`. When the request had an `id`, the response echoes it
//! as its first field. **Route response bodies are cache-transparent**:
//! they never say whether they were served from the cache, so a
//! cache-enabled and a cache-disabled daemon produce byte-identical
//! response streams for the same route requests (the determinism gate);
//! cache effectiveness is observable via `stats` instead.
//!
//! Responses are emitted with hand-formatted, fixed field order — they
//! are diffed byte-for-byte by golden tests and the loadgen stream
//! checksum.

use crate::json::{escape, Json};
use crate::trace::valid_trace_id;
use codar_circuit::schedule::Time;
use codar_engine::{Backend, RouterKind};

/// Most span lines a `trace` request may ask for (`n` is clamped).
pub const TRACE_REPLY_MAX: u64 = 256;

/// Span lines a `trace` request returns when `n` is absent.
pub const TRACE_REPLY_DEFAULT: u64 = 32;

/// What a `calibration` request does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalAction {
    /// Inspect the active snapshot.
    Get,
    /// Replace the active snapshot.
    Set,
}

/// How a `calibration set` provides the new snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum CalPayload {
    /// A full calibration JSON document, carried as a string (the same
    /// convention as the `circuit` field carrying QASM).
    Document(String),
    /// Server-generated synthetic snapshot: seed + drift steps.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Drift steps applied after generation.
        drift: usize,
    },
}

/// Why a request line was rejected, plus the correlation id and trace
/// id when they could still be recovered from the line (a well-formed
/// JSON object with a well-formed `id`/`trace`). Carrying them here
/// lets the server echo both without re-parsing the line — on hostile
/// near-valid megabyte lines a second parse doubles the rejection
/// cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRejection {
    /// The `id` recovered from the rejected line, if any.
    pub id: Option<u64>,
    /// The valid `trace` id recovered from the rejected line, if any
    /// (an ill-formed trace value is never echoed).
    pub trace: Option<String>,
    /// Human-readable rejection reason.
    pub message: String,
}

impl ParseRejection {
    fn new(id: Option<u64>, trace: Option<String>, message: impl Into<String>) -> Self {
        ParseRejection {
            id,
            trace,
            message: message.into(),
        }
    }
}

/// A parsed request line plus its transport-level trace id. The trace
/// id rides outside [`Request`] because it belongs to the request's
/// *journey* (span correlation), not its semantics — two requests that
/// differ only in trace id are the same request, hit the same cache
/// entry, and route identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The request itself.
    pub request: Request,
    /// The validated trace id, when the line carried one.
    pub trace: Option<String>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Route a QASM circuit on a named device.
    Route {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// Target device name (see `codar_arch::Device::by_name`).
        device: String,
        /// Router to use.
        router: RouterKind,
        /// Calibration blend weight (`codar-cal` only; default 0.5).
        alpha: Option<f64>,
        /// Simulation backend for the differential routed-vs-original
        /// check (`None` = no simulation; the reply then carries no
        /// `sim` field, keeping pre-existing replies byte-identical).
        sim: Option<Backend>,
        /// OpenQASM 2.0 source of the circuit.
        qasm: String,
    },
    /// Inspect or replace a device's active calibration snapshot.
    Calibration {
        /// Echoed correlation id.
        id: Option<u64>,
        /// Target device name.
        device: String,
        /// Get or set.
        action: CalAction,
        /// The new snapshot (`set` only).
        payload: Option<CalPayload>,
    },
    /// Request/cache counters.
    Stats {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Readiness + draining state.
    Health {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Flat scrape-friendly counters (the `stats` superset).
    Metrics {
        /// Echoed correlation id.
        id: Option<u64>,
        /// Append the log2-bucket latency histograms. Opt-in because
        /// the plain `metrics` body is byte-frozen by golden fixtures.
        hist: bool,
    },
    /// The device catalog.
    Devices {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// The last `n` span lines from the daemon's trace ring.
    Trace {
        /// Echoed correlation id.
        id: Option<u64>,
        /// How many span lines to return (default
        /// [`TRACE_REPLY_DEFAULT`], clamped to [`TRACE_REPLY_MAX`]).
        n: Option<u64>,
    },
    /// Stop serving after replying.
    Shutdown {
        /// Echoed correlation id.
        id: Option<u64>,
    },
}

impl Request {
    /// Parses one NDJSON request line, dropping the envelope. Prefer
    /// [`Request::parse_envelope`] when the trace id matters; this
    /// shorthand keeps call sites that only care about semantics
    /// simple.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Request::parse_envelope`].
    pub fn parse_line(line: &str) -> Result<Request, ParseRejection> {
        Request::parse_envelope(line).map(|envelope| envelope.request)
    }

    /// Parses one NDJSON request line into the request plus its
    /// optional trace id.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseRejection`] — a human-readable message for
    /// malformed JSON, a missing or unknown `type`, missing or
    /// ill-typed fields, or an invalid `trace` value — together with
    /// the recovered `id` and valid `trace` (when the line was at
    /// least a JSON object carrying well-formed ones) so the server
    /// can echo both without parsing the line a second time.
    pub fn parse_envelope(line: &str) -> Result<Envelope, ParseRejection> {
        let value = Json::parse(line)
            .map_err(|e| ParseRejection::new(None, None, format!("malformed JSON: {e}")))?;
        // Recovered once, up front: rejected lines echo these so
        // clients can correlate the rejection.
        let recovered_id = value.get("id").and_then(Json::as_u64);
        let recovered_trace = value
            .get("trace")
            .and_then(Json::as_str)
            .filter(|t| valid_trace_id(t))
            .map(str::to_string);
        let reject = |message| ParseRejection::new(recovered_id, recovered_trace.clone(), message);
        let trace = match value.get("trace") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let id = v
                    .as_str()
                    .ok_or_else(|| reject("`trace` must be a string".to_string()))?;
                if !valid_trace_id(id) {
                    return Err(reject(format!(
                        "`trace` must be a non-empty string of at most {} bytes",
                        crate::trace::TRACE_ID_MAX_BYTES
                    )));
                }
                Some(id.to_string())
            }
        };
        let request = Request::parse_value(&value).map_err(|message| reject(message))?;
        Ok(Envelope { request, trace })
    }

    /// The structural half of [`Request::parse_line`]: dispatches an
    /// already-parsed JSON value.
    fn parse_value(value: &Json) -> Result<Request, String> {
        if !matches!(value, Json::Obj(_)) {
            return Err("request must be a JSON object".into());
        }
        let id = match value.get("id") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "`id` must be a non-negative integer".to_string())?,
            ),
        };
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `type` field".to_string())?;
        match kind {
            "route" => {
                let device = value
                    .get("device")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "route request needs a `device` string".to_string())?
                    .to_string();
                let qasm = value
                    .get("circuit")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "route request needs a `circuit` string".to_string())?
                    .to_string();
                let router = match value.get("router") {
                    None | Some(Json::Null) => RouterKind::Codar,
                    Some(v) => {
                        let name = v
                            .as_str()
                            .ok_or_else(|| "`router` must be a string".to_string())?;
                        RouterKind::parse(name).ok_or_else(|| format!("unknown router `{name}`"))?
                    }
                };
                let alpha = match value.get("alpha") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let alpha = v
                            .as_f64()
                            .filter(|a| a.is_finite() && (0.0..=8.0).contains(a))
                            .ok_or_else(|| "`alpha` must be a number in [0, 8]".to_string())?;
                        // `auto` legitimately carries codar-cal
                        // portfolio members, so alpha configures them;
                        // for plain fixed routers it stays an error.
                        if router != RouterKind::CodarCal && router != RouterKind::Portfolio {
                            return Err(format!(
                                "`alpha` is only meaningful for router `codar-cal` or `auto`, \
                                 not `{}`",
                                router.name()
                            ));
                        }
                        Some(alpha)
                    }
                };
                let sim = match value.get("sim") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let name = v
                            .as_str()
                            .ok_or_else(|| "`sim` must be a string".to_string())?;
                        Some(
                            Backend::parse(name)
                                .ok_or_else(|| format!("unknown simulation backend `{name}`"))?,
                        )
                    }
                };
                Ok(Request::Route {
                    id,
                    device,
                    router,
                    alpha,
                    sim,
                    qasm,
                })
            }
            "calibration" => {
                let device = value
                    .get("device")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "calibration request needs a `device` string".to_string())?
                    .to_string();
                let action = match value.get("action").and_then(Json::as_str) {
                    Some("get") => CalAction::Get,
                    Some("set") => CalAction::Set,
                    Some(other) => return Err(format!("unknown calibration action `{other}`")),
                    None => return Err("calibration request needs an `action` string".to_string()),
                };
                let payload = match (value.get("snapshot"), value.get("synthetic")) {
                    (Some(_), Some(_)) => {
                        return Err("pass `snapshot` or `synthetic`, not both".to_string())
                    }
                    (Some(doc), None) => Some(CalPayload::Document(
                        doc.as_str()
                            .ok_or_else(|| {
                                "`snapshot` must be a string holding a calibration JSON document"
                                    .to_string()
                            })?
                            .to_string(),
                    )),
                    (None, Some(synth)) => {
                        let seed = synth
                            .get("seed")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| "`synthetic` needs a `seed` integer".to_string())?;
                        let drift = match synth.get("drift") {
                            None | Some(Json::Null) => 0,
                            Some(v) => {
                                usize::try_from(v.as_u64().filter(|&d| d <= 1024).ok_or_else(
                                    || "`drift` must be an integer in [0, 1024]".to_string(),
                                )?)
                                .expect("<= 1024 fits usize")
                            }
                        };
                        Some(CalPayload::Synthetic { seed, drift })
                    }
                    (None, None) => None,
                };
                match (action, &payload) {
                    (CalAction::Get, Some(_)) => {
                        Err("calibration get takes no `snapshot`/`synthetic`".to_string())
                    }
                    (CalAction::Set, None) => {
                        Err("calibration set needs `snapshot` or `synthetic`".to_string())
                    }
                    _ => Ok(Request::Calibration {
                        id,
                        device,
                        action,
                        payload,
                    }),
                }
            }
            "stats" => Ok(Request::Stats { id }),
            "health" => Ok(Request::Health { id }),
            "metrics" => {
                let hist = match value.get("hist") {
                    None | Some(Json::Null) => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| "`hist` must be a boolean".to_string())?,
                };
                Ok(Request::Metrics { id, hist })
            }
            "devices" => Ok(Request::Devices { id }),
            "trace" => {
                let n = match value.get("n") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or_else(|| "`n` must be a non-negative integer".to_string())?,
                    ),
                };
                Ok(Request::Trace { id, n })
            }
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// The correlation id, for any request kind.
    pub fn id(&self) -> Option<u64> {
        match self {
            Request::Route { id, .. }
            | Request::Calibration { id, .. }
            | Request::Stats { id }
            | Request::Health { id }
            | Request::Metrics { id, .. }
            | Request::Devices { id }
            | Request::Trace { id, .. }
            | Request::Shutdown { id } => *id,
        }
    }

    /// The verb name of this request, matching
    /// [`crate::metrics::VERB_NAMES`] — the root span's name and the
    /// per-verb latency histogram key.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Route { .. } => "route",
            Request::Calibration { .. } => "calibration",
            Request::Stats { .. } => "stats",
            Request::Health { .. } => "health",
            Request::Metrics { .. } => "metrics",
            Request::Devices { .. } => "devices",
            Request::Trace { .. } => "trace",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

/// Everything a successful `route` reply reports.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Device the circuit was routed on.
    pub device: String,
    /// Router that produced the result.
    pub router: RouterKind,
    /// Qubits used by the input circuit.
    pub qubits: usize,
    /// Input gate count (after ≤2-qubit decomposition).
    pub input_gates: usize,
    /// Weighted depth (schedule makespan) of the routed circuit.
    pub weighted_depth: Time,
    /// Unweighted depth of the routed circuit.
    pub depth: usize,
    /// SWAPs inserted by the router.
    pub swaps: usize,
    /// Output gate count.
    pub output_gates: usize,
    /// Active-snapshot context: `(snapshot version, EPS of the routed
    /// circuit under it)`. `None` when the device has no active
    /// calibration snapshot — the body is then byte-identical to the
    /// pre-calibration protocol.
    pub calibration: Option<(u64, f64)>,
    /// Resolved simulation backend of the differential
    /// routed-vs-original check. Present exactly when the request asked
    /// for one (`"sim"` field) — including dense resolutions, so a
    /// client can always see which engine actually verified its
    /// circuit (never a silent fallback). `None` keeps the body
    /// byte-identical to the pre-simulation protocol.
    pub sim: Option<String>,
    /// Winning portfolio member label (`auto` requests only). `None`
    /// keeps fixed-router bodies byte-identical to the pre-portfolio
    /// protocol.
    pub chosen: Option<String>,
    /// Routed circuit as OpenQASM 2.0 (physical qubit indices).
    pub qasm: String,
}

impl RouteOutcome {
    /// The response body (no `id`; see [`attach_id`]).
    ///
    /// `eps` is formatted with `{}` — Rust's shortest round-trip f64
    /// form (never scientific notation), the same discipline as the
    /// calibration JSON writer — so a client re-parsing the reply
    /// recovers the bit-identical f64. A fixed `{:.6}` would collapse
    /// distinct EPS values, which portfolio win decisions and the
    /// alphasweep deltas (order 1e-3) cannot afford.
    pub fn body(&self) -> String {
        let cal = match self.calibration {
            Some((version, eps)) => format!(",\"cal_version\":{version},\"eps\":{eps}"),
            None => String::new(),
        };
        let sim = match &self.sim {
            Some(backend) => format!(",\"sim\":{}", escape(backend)),
            None => String::new(),
        };
        let chosen = match &self.chosen {
            Some(label) => format!(",\"chosen\":{}", escape(label)),
            None => String::new(),
        };
        format!(
            "{{\"type\":\"route\",\"status\":\"ok\",\"device\":{},\"router\":{},\
             \"qubits\":{},\"input_gates\":{},\"weighted_depth\":{},\"depth\":{},\
             \"swaps\":{},\"output_gates\":{},\"verified\":true{}{}{},\"qasm\":{}}}",
            escape(&self.device),
            escape(self.router.name()),
            self.qubits,
            self.input_gates,
            self.weighted_depth,
            self.depth,
            self.swaps,
            self.output_gates,
            cal,
            sim,
            chosen,
            escape(&self.qasm),
        )
    }
}

/// The `calibration get` response body: the active snapshot (carried
/// as a JSON document in a string, the inverse of the `set`
/// convention) or `null` with version 0.
pub fn calibration_get_body(device: &str, snapshot: Option<(u64, &str)>) -> String {
    match snapshot {
        Some((version, document)) => format!(
            "{{\"type\":\"calibration\",\"status\":\"ok\",\"device\":{},\
             \"version\":{version},\"snapshot\":{}}}",
            escape(device),
            escape(document),
        ),
        None => format!(
            "{{\"type\":\"calibration\",\"status\":\"ok\",\"device\":{},\
             \"version\":0,\"snapshot\":null}}",
            escape(device),
        ),
    }
}

/// The `calibration set` acknowledgement: the now-active version and
/// whether a previous snapshot was replaced.
pub fn calibration_set_body(device: &str, version: u64, replaced: bool) -> String {
    format!(
        "{{\"type\":\"calibration\",\"status\":\"ok\",\"device\":{},\
         \"version\":{version},\"replaced\":{replaced}}}",
        escape(device),
    )
}

/// An error response body.
pub fn error_body(message: &str) -> String {
    format!(
        "{{\"type\":\"error\",\"status\":\"error\",\"error\":{}}}",
        escape(message)
    )
}

/// The backpressure response body: the bounded request queue was full.
pub fn overloaded_body() -> String {
    "{\"type\":\"error\",\"status\":\"overloaded\",\
     \"error\":\"request queue full, retry later\"}"
        .to_string()
}

/// The `shutdown` acknowledgement body.
pub fn shutdown_body() -> String {
    "{\"type\":\"shutdown\",\"status\":\"ok\"}".to_string()
}

/// Splices the echoed request `id` in front of a response body.
pub fn attach_id(id: Option<u64>, body: &str) -> String {
    match id {
        None => body.to_string(),
        Some(id) => {
            debug_assert!(body.starts_with('{'));
            format!("{{\"id\":{id},{}", &body[1..])
        }
    }
}

/// Splices the echoed `trace` id in front of a response body. Applied
/// *before* [`attach_id`], so an id-carrying traced reply reads
/// `{"id":N,"trace":"...",...}` — the id stays the first field, as the
/// pre-tracing protocol promised.
pub fn attach_trace(trace: Option<&str>, body: &str) -> String {
    match trace {
        None => body.to_string(),
        Some(trace) => {
            debug_assert!(body.starts_with('{'));
            format!("{{\"trace\":{},{}", escape(trace), &body[1..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_route_requests() {
        let req = Request::parse_line(
            r#"{"type":"route","id":3,"device":"q20","router":"sabre","circuit":"qreg q[1];"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Route {
                id: Some(3),
                device: "q20".into(),
                router: RouterKind::Sabre,
                alpha: None,
                sim: None,
                qasm: "qreg q[1];".into(),
            }
        );
        assert_eq!(req.id(), Some(3));
    }

    /// The daemon surface and the engine CLI share one router-name
    /// parser ([`RouterKind::parse`]); this drives the daemon's route
    /// parse through the full canonical name table — every
    /// `RouterKind::ALL` name, the alias set, and case variants — so
    /// the two surfaces cannot drift apart.
    #[test]
    fn daemon_accepts_every_canonical_router_name_and_alias() {
        let cases: Vec<(String, RouterKind)> = RouterKind::ALL
            .iter()
            .flat_map(|&kind| {
                [
                    (kind.name().to_string(), kind),
                    (kind.name().to_ascii_uppercase(), kind),
                ]
            })
            .chain([
                ("codar_cal".to_string(), RouterKind::CodarCal),
                ("codarcal".to_string(), RouterKind::CodarCal),
                ("portfolio".to_string(), RouterKind::Portfolio),
                ("Portfolio".to_string(), RouterKind::Portfolio),
            ])
            .collect();
        for (name, expected) in cases {
            let line = format!(
                r#"{{"type":"route","device":"q20","router":"{name}","circuit":"qreg q[1];"}}"#
            );
            match Request::parse_line(&line)
                .unwrap_or_else(|e| panic!("`{name}` rejected: {}", e.message))
            {
                Request::Route { router, .. } => {
                    assert_eq!(router, expected, "`{name}` parsed to the wrong kind")
                }
                other => panic!("unexpected request for `{name}`: {other:?}"),
            }
        }
        // Near-misses stay rejected on this surface exactly like on
        // the CLI: the shared parser does not trim or fuzzy-match.
        for bad in ["auto ", " auto", "portfolio!", "codar cal", "best"] {
            let line = format!(
                r#"{{"type":"route","device":"q20","router":"{bad}","circuit":"qreg q[1];"}}"#
            );
            let err = Request::parse_line(&line).expect_err("near-miss must be rejected");
            assert!(
                err.message.contains("unknown router"),
                "`{bad}` -> {}",
                err.message
            );
        }
    }

    #[test]
    fn parses_codar_cal_routes_with_alpha() {
        let req = Request::parse_line(
            r#"{"type":"route","device":"q20","router":"codar-cal","alpha":0.25,"circuit":"qreg q[1];"}"#,
        )
        .unwrap();
        match req {
            Request::Route { router, alpha, .. } => {
                assert_eq!(router, RouterKind::CodarCal);
                assert_eq!(alpha, Some(0.25));
            }
            other => panic!("unexpected {other:?}"),
        }
        // alpha with `auto` configures the portfolio's codar-cal
        // members instead of erroring.
        let req = Request::parse_line(
            r#"{"type":"route","device":"q20","router":"auto","alpha":0.25,"circuit":"qreg q[1];"}"#,
        )
        .unwrap();
        match req {
            Request::Route { router, alpha, .. } => {
                assert_eq!(router, RouterKind::Portfolio);
                assert_eq!(alpha, Some(0.25));
            }
            other => panic!("unexpected {other:?}"),
        }
        // alpha on plain fixed routers is rejected (default codar,
        // explicit sabre/greedy alike); out-of-range too.
        for (line, needle) in [
            (
                r#"{"type":"route","device":"q20","alpha":0.5,"circuit":"x"}"#,
                "only meaningful for router `codar-cal` or `auto`",
            ),
            (
                r#"{"type":"route","device":"q20","router":"sabre","alpha":0.5,"circuit":"x"}"#,
                "only meaningful for router `codar-cal` or `auto`",
            ),
            (
                r#"{"type":"route","device":"q20","router":"greedy","alpha":0.5,"circuit":"x"}"#,
                "only meaningful for router `codar-cal` or `auto`",
            ),
            (
                r#"{"type":"route","device":"q20","router":"codar-cal","alpha":-1,"circuit":"x"}"#,
                "`alpha` must be a number",
            ),
            (
                r#"{"type":"route","device":"q20","router":"codar-cal","alpha":"big","circuit":"x"}"#,
                "`alpha` must be a number",
            ),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
        }
    }

    #[test]
    fn parses_route_sim_field() {
        for (name, backend) in [
            ("auto", Backend::Auto),
            ("dense", Backend::Dense),
            ("stabilizer", Backend::Stabilizer),
            ("sparse", Backend::Sparse),
        ] {
            let line = format!(
                r#"{{"type":"route","device":"q20","sim":"{name}","circuit":"qreg q[1];"}}"#
            );
            match Request::parse_line(&line).unwrap() {
                Request::Route { sim, .. } => assert_eq!(sim, Some(backend), "{name}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Null and absent both mean "no simulation".
        let line = r#"{"type":"route","device":"q20","sim":null,"circuit":"qreg q[1];"}"#;
        match Request::parse_line(line).unwrap() {
            Request::Route { sim, .. } => assert_eq!(sim, None),
            other => panic!("unexpected {other:?}"),
        }
        // Unknown names and non-strings are parse errors.
        for (line, needle) in [
            (
                r#"{"type":"route","device":"q20","sim":"gpu","circuit":"x"}"#,
                "unknown simulation backend `gpu`",
            ),
            (
                r#"{"type":"route","device":"q20","sim":7,"circuit":"x"}"#,
                "`sim` must be a string",
            ),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
        }
    }

    #[test]
    fn parses_calibration_requests() {
        assert_eq!(
            Request::parse_line(r#"{"type":"calibration","action":"get","device":"q5","id":2}"#)
                .unwrap(),
            Request::Calibration {
                id: Some(2),
                device: "q5".into(),
                action: CalAction::Get,
                payload: None,
            }
        );
        assert_eq!(
            Request::parse_line(
                r#"{"type":"calibration","action":"set","device":"q5","synthetic":{"seed":42,"drift":2}}"#
            )
            .unwrap(),
            Request::Calibration {
                id: None,
                device: "q5".into(),
                action: CalAction::Set,
                payload: Some(CalPayload::Synthetic { seed: 42, drift: 2 }),
            }
        );
        assert_eq!(
            Request::parse_line(
                r#"{"type":"calibration","action":"set","device":"q5","snapshot":"{...}"}"#
            )
            .unwrap(),
            Request::Calibration {
                id: None,
                device: "q5".into(),
                action: CalAction::Set,
                payload: Some(CalPayload::Document("{...}".into())),
            }
        );
        for (line, needle) in [
            (r#"{"type":"calibration","action":"get"}"#, "`device`"),
            (r#"{"type":"calibration","device":"q5"}"#, "`action`"),
            (
                r#"{"type":"calibration","action":"drop","device":"q5"}"#,
                "unknown calibration action",
            ),
            (
                r#"{"type":"calibration","action":"set","device":"q5"}"#,
                "needs `snapshot` or `synthetic`",
            ),
            (
                r#"{"type":"calibration","action":"get","device":"q5","synthetic":{"seed":1}}"#,
                "takes no",
            ),
            (
                r#"{"type":"calibration","action":"set","device":"q5","snapshot":"a","synthetic":{"seed":1}}"#,
                "not both",
            ),
            (
                r#"{"type":"calibration","action":"set","device":"q5","synthetic":{"drift":1}}"#,
                "`seed`",
            ),
            (
                r#"{"type":"calibration","action":"set","device":"q5","synthetic":{"seed":1,"drift":9999}}"#,
                "`drift`",
            ),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
        }
    }

    #[test]
    fn calibration_bodies_are_well_formed() {
        let get_some = calibration_get_body("q5", Some((3, "{\"k\":1}\n")));
        let get_none = calibration_get_body("q5", None);
        let set = calibration_set_body("q5", 4, true);
        for body in [&get_some, &get_none, &set] {
            assert!(!body.contains('\n'), "{body}");
            let parsed = Json::parse(body).expect(body);
            assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        }
        assert!(get_some.contains("\"version\":3"));
        assert!(get_none.contains("\"snapshot\":null"));
        assert!(set.contains("\"replaced\":true"));
    }

    #[test]
    fn router_defaults_to_codar_and_id_is_optional() {
        let req = Request::parse_line(r#"{"type":"route","device":"q5","circuit":"qreg q[1];"}"#)
            .unwrap();
        match req {
            Request::Route { id, router, .. } => {
                assert_eq!(id, None);
                assert_eq!(router, RouterKind::Codar);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(
            Request::parse_line(r#"{"type":"stats"}"#).unwrap(),
            Request::Stats { id: None }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"devices","id":9}"#).unwrap(),
            Request::Devices { id: Some(9) }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"health","id":4}"#).unwrap(),
            Request::Health { id: Some(4) }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"metrics"}"#).unwrap(),
            Request::Metrics {
                id: None,
                hist: false
            }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"metrics","hist":true,"id":5}"#).unwrap(),
            Request::Metrics {
                id: Some(5),
                hist: true
            }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"trace"}"#).unwrap(),
            Request::Trace { id: None, n: None }
        );
        assert_eq!(
            Request::parse_line(r#"{"type":"trace","n":8,"id":2}"#).unwrap(),
            Request::Trace {
                id: Some(2),
                n: Some(8)
            }
        );
        for (line, needle) in [
            (r#"{"type":"metrics","hist":1}"#, "`hist` must be a boolean"),
            (
                r#"{"type":"trace","n":-3}"#,
                "`n` must be a non-negative integer",
            ),
            (
                r#"{"type":"trace","n":"all"}"#,
                "`n` must be a non-negative integer",
            ),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
        }
        assert_eq!(
            Request::parse_line(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: None }
        );
    }

    #[test]
    fn trace_envelope_rides_every_verb() {
        let envelope = Request::parse_envelope(r#"{"type":"stats","trace":"abc","id":4}"#).unwrap();
        assert_eq!(envelope.trace.as_deref(), Some("abc"));
        assert_eq!(envelope.request, Request::Stats { id: Some(4) });
        // Absent and null both mean untraced; the request is unchanged.
        for line in [r#"{"type":"stats"}"#, r#"{"type":"stats","trace":null}"#] {
            let envelope = Request::parse_envelope(line).unwrap();
            assert_eq!(envelope.trace, None, "{line}");
        }
        // parse_line drops the envelope but applies the same checks.
        assert_eq!(
            Request::parse_line(r#"{"type":"stats","trace":"abc"}"#).unwrap(),
            Request::Stats { id: None }
        );
    }

    #[test]
    fn invalid_trace_values_are_rejected_and_not_echoed() {
        for (line, needle) in [
            (r#"{"type":"stats","trace":""}"#, "non-empty string"),
            (r#"{"type":"stats","trace":7}"#, "`trace` must be a string"),
            (
                r#"{"type":"stats","trace":{"a":1}}"#,
                "`trace` must be a string",
            ),
        ] {
            let err = Request::parse_envelope(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
            assert_eq!(err.trace, None, "invalid trace must not be echoed");
        }
        let long = format!(
            r#"{{"type":"stats","trace":"{}"}}"#,
            "x".repeat(crate::trace::TRACE_ID_MAX_BYTES + 1)
        );
        let err = Request::parse_envelope(&long).expect_err("oversized trace");
        assert!(err.message.contains("at most"), "{err:?}");
        assert_eq!(err.trace, None);
        // A *valid* trace on an otherwise-rejected line is recovered
        // for echoing, exactly like the id.
        let err = Request::parse_envelope(r#"{"type":"fly","trace":"t-9","id":3}"#)
            .expect_err("unknown type");
        assert_eq!(err.id, Some(3));
        assert_eq!(err.trace.as_deref(), Some("t-9"));
    }

    #[test]
    fn attach_trace_splices_behind_the_id() {
        let body = shutdown_body();
        assert_eq!(attach_trace(None, &body), body);
        let traced = attach_trace(Some("t-1"), &body);
        assert!(traced.starts_with("{\"trace\":\"t-1\",\"type\":\"shutdown\""));
        let both = attach_id(Some(9), &traced);
        assert!(both.starts_with("{\"id\":9,\"trace\":\"t-1\",\"type\":\"shutdown\""));
        let parsed = Json::parse(&both).expect("traced reply parses");
        assert_eq!(parsed.get("trace").and_then(Json::as_str), Some("t-1"));
        assert_eq!(parsed.get("id").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn rejects_malformed_requests() {
        for (line, needle) in [
            ("{oops", "malformed JSON"),
            ("[1]", "must be a JSON object"),
            (r#"{"device":"q20"}"#, "missing `type`"),
            (r#"{"type":"fly"}"#, "unknown request type"),
            (r#"{"type":"route","device":"q20"}"#, "`circuit`"),
            (r#"{"type":"route","circuit":"x"}"#, "`device`"),
            (
                r#"{"type":"route","device":"q20","circuit":"x","router":"qiskit"}"#,
                "unknown router",
            ),
            (r#"{"type":"stats","id":-1}"#, "`id`"),
            (r#"{"type":"stats","id":1.5}"#, "`id`"),
        ] {
            let err = Request::parse_line(line).expect_err(line);
            assert!(err.message.contains(needle), "`{line}` gave `{err:?}`");
        }
    }

    #[test]
    fn bodies_are_single_lines_with_ids_spliced() {
        let mut outcome = RouteOutcome {
            device: "q20".into(),
            router: RouterKind::Codar,
            qubits: 3,
            input_gates: 5,
            weighted_depth: 42,
            depth: 6,
            swaps: 1,
            output_gates: 6,
            calibration: None,
            sim: None,
            chosen: None,
            qasm: "OPENQASM 2.0;\nqreg q[3];\n".into(),
        };
        let body = outcome.body();
        assert!(!body.contains('\n'), "NDJSON bodies must be one line");
        assert!(body.contains("\"verified\":true"));
        assert!(body.contains("\\n"), "QASM newlines must be escaped");
        // Without a snapshot the body carries no calibration fields
        // (pre-calibration byte compatibility); with one it does.
        assert!(!body.contains("cal_version"));
        outcome.calibration = Some((7, 0.75));
        let cal_body = outcome.body();
        assert!(
            cal_body.contains("\"cal_version\":7,\"eps\":0.75"),
            "{cal_body}"
        );
        // The sim field rides between the calibration fields and the
        // QASM, only when the request asked for simulation.
        assert!(!cal_body.contains("\"sim\""));
        outcome.sim = Some("stabilizer".into());
        let sim_body = outcome.body();
        assert!(
            sim_body.contains("\"eps\":0.75,\"sim\":\"stabilizer\",\"qasm\""),
            "{sim_body}"
        );
        // The chosen field trails sim, only on portfolio replies.
        assert!(!sim_body.contains("\"chosen\""));
        outcome.chosen = Some("codar-cal".into());
        let chosen_body = outcome.body();
        assert!(
            chosen_body.contains("\"sim\":\"stabilizer\",\"chosen\":\"codar-cal\",\"qasm\""),
            "{chosen_body}"
        );
        outcome.calibration = None;
        outcome.sim = None;
        outcome.chosen = None;
        let with = attach_id(Some(7), &body);
        assert!(with.starts_with("{\"id\":7,\"type\":\"route\""));
        assert_eq!(attach_id(None, &body), body);
        // Every body kind parses back as JSON.
        for b in [
            body,
            error_body("boom \"quoted\""),
            overloaded_body(),
            shutdown_body(),
        ] {
            let parsed = Json::parse(&b).expect(&b);
            assert!(parsed.get("status").is_some());
        }
    }

    /// Regression for the lossy `{:.6}` eps formatting: every reply's
    /// `eps` must re-parse to the bit-identical f64, including values
    /// whose 6-decimal roundings collide and extremes whose shortest
    /// form must still avoid scientific notation.
    #[test]
    fn reply_eps_re_parses_bit_identical() {
        for eps in [
            0.75,
            0.834782,
            0.123456789012345,
            0.1234567,
            0.12345674, // collides with the line above under {:.6}
            1.0,
            0.000001234,
            f64::MIN_POSITIVE,
            1.0 - f64::EPSILON,
        ] {
            let outcome = RouteOutcome {
                device: "q20".into(),
                router: RouterKind::CodarCal,
                qubits: 3,
                input_gates: 5,
                weighted_depth: 42,
                depth: 6,
                swaps: 1,
                output_gates: 6,
                calibration: Some((3, eps)),
                sim: None,
                chosen: None,
                qasm: "qreg q[3];".into(),
            };
            let body = outcome.body();
            let parsed = Json::parse(&body).expect(&body);
            let round_tripped = parsed.get("eps").and_then(Json::as_f64).expect(&body);
            assert_eq!(
                round_tripped.to_bits(),
                eps.to_bits(),
                "eps {eps:?} lost precision through the reply: {body}"
            );
            assert!(
                !body.contains("\"eps\":-") && !body.to_lowercase().contains("e-"),
                "shortest form must stay plain decimal: {body}"
            );
        }
        // Two alphas closer than 1e-6 produce distinct reply bytes now.
        let at = |eps: f64| RouteOutcome {
            device: "q20".into(),
            router: RouterKind::CodarCal,
            qubits: 3,
            input_gates: 5,
            weighted_depth: 42,
            depth: 6,
            swaps: 1,
            output_gates: 6,
            calibration: Some((3, eps)),
            sim: None,
            chosen: None,
            qasm: "qreg q[3];".into(),
        };
        assert_ne!(at(0.1234567).body(), at(0.12345674).body());
    }
}
