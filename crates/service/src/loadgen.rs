//! Deterministic load generation against a daemon.
//!
//! `loadgen` replays a seeded [`CircuitMix`] of benchmark circuits —
//! with a configurable repeat ratio, modeling the heavy input reuse of
//! real compilation services — against either an **in-process**
//! [`Service`] (the closed-loop benchmark and determinism gate; no
//! ports involved) or a TCP daemon. It records one latency sample per
//! request and splits its output the same way the engine splits
//! `Summary` from `RunStats`:
//!
//! * [`LoadgenReport::summary_json`] — deterministic for a given
//!   `(config, daemon config)`: request counts, cache hit rate, depth
//!   and swap totals, and an FNV checksum of the concatenated response
//!   stream. CI diffs two runs of this byte-for-byte.
//! * [`LoadgenReport::latency`] — p50/p90/p99 microseconds, explicitly
//!   nondeterministic, printed to stderr; `--latency-json` writes
//!   [`LoadgenReport::latency_json`], the percentiles plus the run
//!   context (daemon cache capacity/shards, active calibration
//!   snapshot version) needed to compare two latency files.
//!
//! Two issue disciplines:
//!
//! * **Closed loop** (default, [`run`]) — send, wait for the reply,
//!   send the next. Measures service time; throughput adapts to the
//!   daemon.
//! * **Open loop** ([`run_open_loop`], `--arrival-us`) — requests
//!   depart on a seeded exponential arrival schedule regardless of
//!   outstanding replies (a writer thread paces sends, the reader
//!   drains in order). Latency is measured from the *scheduled*
//!   arrival, so a stalled daemon shows up as queueing delay instead
//!   of being silently absorbed — no coordinated omission.
//!
//! Both disciplines speak to `coded` or `codar-proxy` alike; the
//! trailing probes detect a proxy (`"proxy":true` stats) and record
//! its retry/failover counters instead of cache geometry.

use crate::cache::{fnv1a_extend, FNV_OFFSET};
use crate::json::{escape, Json};
use crate::metrics::{Histogram, LatencySummary, PHASE_NAMES};
use crate::server::Service;
use crate::LOADGEN_SUMMARY_VERSION;
use codar_benchmarks::mix::{service_pool, CircuitMix};
use codar_circuit::from_qasm::circuit_to_qasm;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Route requests to send.
    pub requests: usize,
    /// Mix seed (same seed + config → same request stream).
    pub seed: u64,
    /// Probability a request replays the hot set (clamped to [0, 1]).
    pub repeat_ratio: f64,
    /// Target device name.
    pub device: String,
    /// Router to request.
    pub router: String,
    /// Pool bound: only suite circuits with ≤ this many qubits.
    pub max_qubits: usize,
    /// Hot-set size (first N pool entries).
    pub hot: usize,
    /// `Some(mean)` switches to open-loop issue: seeded exponential
    /// inter-arrival gaps with this mean, in microseconds (see
    /// [`run_open_loop`]). `None` is the classic closed loop.
    pub arrival_us: Option<u64>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 200,
            seed: 7,
            repeat_ratio: 0.95,
            device: "q20".to_string(),
            router: "codar".to_string(),
            max_qubits: CircuitMix::DEFAULT_MAX_QUBITS,
            hot: CircuitMix::DEFAULT_HOT,
            arrival_us: None,
        }
    }
}

/// Where requests go.
pub trait Transport {
    /// Sends one request line, returns the one response line.
    fn call(&mut self, line: &str) -> std::io::Result<String>;
}

/// In-process transport: requests go straight into
/// [`Service::handle_line`] — the closed-loop benchmark needs no port.
impl Transport for Service {
    fn call(&mut self, line: &str) -> std::io::Result<String> {
        Ok(self.handle_line(line))
    }
}

/// NDJSON-over-TCP transport to a running `coded` daemon.
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<TcpTransport> {
        let writer = TcpStream::connect(addr)?;
        // Small request lines must not wait for Nagle coalescing.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(TcpTransport { reader, writer })
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, line: &str) -> std::io::Result<String> {
        // One write per request: line + newline in a single segment.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// One daemon-side phase's histogram totals, scraped from the target's
/// `{"type":"metrics","hist":true}` reply at the end of a run. `name`
/// is the field stem (`queue_wait`, `phase_route`, ...).
#[derive(Debug, Clone)]
pub struct PhaseTotals {
    /// Metrics field stem the totals were scraped from.
    pub name: String,
    /// Samples recorded.
    pub total: u64,
    /// Summed duration, microseconds.
    pub sum_us: u64,
}

/// Everything one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// The configuration the run used.
    pub config: LoadgenConfig,
    /// `ok` route responses.
    pub ok: usize,
    /// Error / overloaded responses.
    pub errors: usize,
    /// Responses carrying `"verified":true`.
    pub verified: usize,
    /// Daemon-side cache hits over the run (from `stats`).
    pub cache_hits: u64,
    /// Daemon-side cache misses over the run (from `stats`).
    pub cache_misses: u64,
    /// Daemon-side cache capacity (from `stats`; identifies the daemon
    /// configuration two latency files must share to be comparable).
    pub daemon_cache_capacity: u64,
    /// Daemon-side cache shard count (from `stats`).
    pub daemon_cache_shards: u64,
    /// Version of the target device's active calibration snapshot at
    /// the end of the run (from `calibration get`; 0 = none) — routing
    /// work differs between snapshots, so latency comparisons must
    /// match on it.
    pub snapshot_version: u64,
    /// Sum of reported SWAP insertions.
    pub total_swaps: u64,
    /// Sum of reported weighted depths.
    pub total_weighted_depth: u64,
    /// FNV-1a over the concatenated response lines (each + `\n`) —
    /// byte-level fingerprint of the whole response stream.
    pub stream_fnv: u64,
    /// Whether the target answered its `stats` probe with
    /// `"proxy":true` — i.e. the run went through `codar-proxy` and
    /// the cache fields above are absent (scrape backends directly).
    pub proxy: bool,
    /// Failed forwarding attempts the proxy retried over the run
    /// (proxy targets only; 0 against a bare daemon).
    pub proxy_retries: u64,
    /// Retries that moved to a different backend shard (proxy targets
    /// only) — the failover events the latency JSON reports.
    pub proxy_failovers: u64,
    /// Per-request latencies, microseconds, request order.
    pub latencies_us: Vec<u64>,
    /// Daemon-side phase profile at the end of the run (queue wait +
    /// the worker phases), scraped via `{"type":"metrics","hist":true}`.
    /// All zeros through a proxy (it has no phase fields; scrape the
    /// backends directly).
    pub daemon_phases: Vec<PhaseTotals>,
}

impl LoadgenReport {
    /// Cache hit rate over the run's probes (0 when nothing probed).
    pub fn cache_hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }

    /// The deterministic summary (no timing!). Two runs with the same
    /// loadgen config against identically configured daemons emit
    /// byte-identical summaries — the CI determinism check.
    pub fn summary_json(&self) -> String {
        format!(
            "{{\n  \"version\": {LOADGEN_SUMMARY_VERSION},\n  \"requests\": {},\n  \
             \"seed\": {},\n  \"repeat_ratio\": {:.6},\n  \"max_qubits\": {},\n  \
             \"hot\": {},\n  \"device\": {},\n  \
             \"router\": {},\n  \"ok\": {},\n  \"errors\": {},\n  \"verified\": {},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_hit_rate\": {:.6},\n  \
             \"total_swaps\": {},\n  \"total_weighted_depth\": {},\n  \
             \"response_stream_fnv\": \"{:016x}\"\n}}\n",
            self.config.requests,
            self.config.seed,
            // Printed as applied: the mix clamps to [0, 1]. `hot` is
            // already the applied (pool-clamped) value — see `run`.
            self.config.repeat_ratio.clamp(0.0, 1.0),
            self.config.max_qubits,
            self.config.hot,
            escape(&self.config.device),
            escape(&self.config.router),
            self.ok,
            self.errors,
            self.verified,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.total_swaps,
            self.total_weighted_depth,
            self.stream_fnv,
        )
    }

    /// Percentile summary of the recorded latencies.
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::from_micros(&self.latencies_us)
    }

    /// The versioned `--latency-json` payload: the percentiles plus
    /// the run context (request count, seed, device/router, issue
    /// mode, daemon cache capacity/shards, active snapshot version,
    /// and — through a proxy — the retry/failover counts) needed to
    /// tell whether two latency files measured comparable runs. Since
    /// schema 4 it also embeds the full client-side latency histogram
    /// (the same fixed log2 buckets the daemon's `metrics` histograms
    /// use, so the two distributions line up bucket for bucket) and
    /// the daemon's end-of-run phase profile — where the measured time
    /// went. See [`crate::LATENCY_SCHEMA_VERSION`].
    pub fn latency_json(&self) -> String {
        use crate::metrics::LATENCY_SCHEMA_VERSION;
        let client = Histogram::new();
        for &us in &self.latencies_us {
            client.record(us);
        }
        let mut json = format!(
            "{{\n  \"version\": {LATENCY_SCHEMA_VERSION},\n{},\n  \
             \"requests\": {},\n  \"seed\": {},\n  \"repeat_ratio\": {:.6},\n  \
             \"device\": {},\n  \"router\": {},\n  \
             \"mode\": {},\n  \"arrival_us\": {},\n  \"proxy\": {},\n  \
             \"retries\": {},\n  \"failovers\": {},\n  \"cache_capacity\": {},\n  \
             \"cache_shards\": {},\n  \"snapshot_version\": {}",
            self.latency().json_fields(),
            self.config.requests,
            self.config.seed,
            self.config.repeat_ratio.clamp(0.0, 1.0),
            escape(&self.config.device),
            escape(&self.config.router),
            if self.config.arrival_us.is_some() {
                "\"open\""
            } else {
                "\"closed\""
            },
            self.config.arrival_us.unwrap_or(0),
            self.proxy,
            self.proxy_retries,
            self.proxy_failovers,
            self.daemon_cache_capacity,
            self.daemon_cache_shards,
            self.snapshot_version,
        );
        let _ = write!(
            json,
            ",\n  \"hist_client_total\": {},\n  \"hist_client_sum_us\": {},\n  \
             \"hist_client_buckets\": \"{}\"",
            client.total(),
            client.sum_us(),
            client.render_buckets(),
        );
        for phase in &self.daemon_phases {
            let _ = write!(
                json,
                ",\n  \"daemon_{0}_total\": {1},\n  \"daemon_{0}_sum_us\": {2}",
                phase.name, phase.total, phase.sum_us,
            );
        }
        json.push_str("\n}\n");
        json
    }
}

/// The deterministic request stream of a run: every route line, in
/// order, plus the report skeleton recording the applied config.
fn prepare(config: &LoadgenConfig) -> std::io::Result<(Vec<String>, LoadgenReport)> {
    let pool = service_pool(config.max_qubits);
    if pool.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "--max-qubits {} leaves no benchmark circuits in the pool",
                config.max_qubits
            ),
        ));
    }
    let mut mix = CircuitMix::with_pool(pool, config.hot, config.seed, config.repeat_ratio);
    // The report records the hot-set size as applied (the mix clamps
    // to [1, pool size]), so identical behavior prints an identical
    // summary even when the requested --hot was out of range.
    let applied_hot = mix.hot();
    // Serialize each pool entry once; requests reuse the strings.
    let pool_qasm: Vec<String> = mix
        .pool()
        .iter()
        .map(|entry| circuit_to_qasm(&entry.circuit).expect("suite circuits serialize"))
        .collect();
    let device = escape(&config.device);
    let router = escape(&config.router);
    let lines = (0..config.requests)
        .map(|_| {
            let index = mix.next_index();
            format!(
                "{{\"type\":\"route\",\"device\":{device},\"router\":{router},\"circuit\":{}}}",
                escape(&pool_qasm[index])
            )
        })
        .collect();
    let report = LoadgenReport {
        config: LoadgenConfig {
            hot: applied_hot,
            ..config.clone()
        },
        ok: 0,
        errors: 0,
        verified: 0,
        cache_hits: 0,
        cache_misses: 0,
        daemon_cache_capacity: 0,
        daemon_cache_shards: 0,
        snapshot_version: 0,
        total_swaps: 0,
        total_weighted_depth: 0,
        stream_fnv: FNV_OFFSET,
        proxy: false,
        proxy_retries: 0,
        proxy_failovers: 0,
        latencies_us: Vec::with_capacity(config.requests),
        // The full stem list up front, zeroed, so the latency JSON
        // schema is stable even when the scrape finds no fields.
        daemon_phases: std::iter::once("queue_wait".to_string())
            .chain(PHASE_NAMES.iter().map(|name| format!("phase_{name}")))
            .map(|name| PhaseTotals {
                name,
                total: 0,
                sum_us: 0,
            })
            .collect(),
    };
    Ok((lines, report))
}

/// Folds one response line into the report (stream checksum + counts).
fn observe(report: &mut LoadgenReport, response: &str) {
    report.stream_fnv = fnv1a_extend(report.stream_fnv, response.as_bytes());
    report.stream_fnv = fnv1a_extend(report.stream_fnv, b"\n");
    match Json::parse(response) {
        Ok(parsed) => {
            if parsed.get("status").and_then(Json::as_str) == Some("ok") {
                report.ok += 1;
                if parsed.get("verified").and_then(Json::as_bool) == Some(true) {
                    report.verified += 1;
                }
                report.total_swaps += parsed.get("swaps").and_then(Json::as_u64).unwrap_or(0);
                report.total_weighted_depth += parsed
                    .get("weighted_depth")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
            } else {
                report.errors += 1;
            }
        }
        Err(_) => report.errors += 1,
    }
}

/// The trailing context probes: one `stats` (cache counters on a
/// daemon, retry/failover counters on a proxy — `"proxy":true`
/// disambiguates), one `metrics` with `hist:true` for the daemon's
/// phase profile, and one `calibration get` for the active snapshot
/// version (forwarded transparently through a proxy).
fn probe_target(
    config: &LoadgenConfig,
    transport: &mut dyn Transport,
    report: &mut LoadgenReport,
) -> std::io::Result<()> {
    // The daemon's cache counters cover our probes (on a fresh daemon,
    // exactly our probes; on a shared daemon, everyone's).
    let stats_line = transport.call("{\"type\":\"stats\"}")?;
    if let Ok(stats) = Json::parse(&stats_line) {
        if stats.get("proxy").and_then(Json::as_bool) == Some(true) {
            report.proxy = true;
            report.proxy_retries = stats.get("retries").and_then(Json::as_u64).unwrap_or(0);
            report.proxy_failovers = stats.get("failovers").and_then(Json::as_u64).unwrap_or(0);
        }
        if let Some(cache) = stats.get("cache") {
            report.cache_hits = cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
            report.cache_misses = cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
            report.daemon_cache_capacity =
                cache.get("capacity").and_then(Json::as_u64).unwrap_or(0);
            report.daemon_cache_shards = cache.get("shards").and_then(Json::as_u64).unwrap_or(0);
        }
    }
    // The daemon's phase profile (histogram totals per worker phase):
    // where the run's time went, recorded next to the client-side
    // percentiles it explains.
    let metrics_line = transport.call("{\"type\":\"metrics\",\"hist\":true}")?;
    if let Ok(metrics) = Json::parse(&metrics_line) {
        for phase in &mut report.daemon_phases {
            phase.total = metrics
                .get(&format!("hist_{}_total", phase.name))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            phase.sum_us = metrics
                .get(&format!("hist_{}_sum_us", phase.name))
                .and_then(Json::as_u64)
                .unwrap_or(0);
        }
    }
    // The active snapshot version of the target device: latency runs
    // against different calibrations do different routing work, so the
    // latency JSON records which one was live.
    let cal_line = transport.call(&format!(
        "{{\"type\":\"calibration\",\"action\":\"get\",\"device\":{}}}",
        escape(&config.device)
    ))?;
    if let Ok(cal) = Json::parse(&cal_line) {
        report.snapshot_version = cal.get("version").and_then(Json::as_u64).unwrap_or(0);
    }
    Ok(())
}

/// Runs the closed loop: `config.requests` route requests drawn from
/// the mix, each waiting for its reply, then the context probes.
///
/// # Errors
///
/// Propagates transport I/O errors; protocol-level errors (error
/// responses) are counted in the report instead.
///
pub fn run(
    config: &LoadgenConfig,
    transport: &mut dyn Transport,
) -> std::io::Result<LoadgenReport> {
    let (lines, mut report) = prepare(config)?;
    for line in &lines {
        let started = Instant::now();
        let response = transport.call(line)?;
        report
            .latencies_us
            .push(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
        observe(&mut report, &response);
    }
    probe_target(config, transport, &mut report)?;
    Ok(report)
}

/// Runs the open loop over TCP: a writer thread issues the same
/// deterministic request stream on a seeded exponential arrival
/// schedule (mean `config.arrival_us`, independent of outstanding
/// replies), while this thread drains responses in order. Latency is
/// measured from each request's **scheduled** departure, so daemon
/// stalls surface as queueing delay — the closed loop would silently
/// slow its own arrivals instead (coordinated omission).
///
/// The responses — and therefore the summary JSON — are byte-identical
/// to a closed-loop run with the same config: only the timing
/// discipline differs.
///
/// # Errors
///
/// Propagates connect/transport I/O errors from either side of the
/// stream; the writer's error wins when both fail.
pub fn run_open_loop(config: &LoadgenConfig, addr: &str) -> std::io::Result<LoadgenReport> {
    let mean = config.arrival_us.unwrap_or(1_000).max(1);
    let (lines, mut report) = prepare(config)?;
    // The arrival schedule is part of the experiment definition:
    // seeded exponential gaps, fixed before the first byte moves.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0A11_0A11_0A11_0A11);
    let mut offsets = Vec::with_capacity(lines.len());
    let mut at = 0.0f64;
    for _ in 0..lines.len() {
        let u: f64 = rng.gen();
        at += -(mean as f64) * (1.0 - u).ln();
        offsets.push(Duration::from_micros(at as u64));
    }

    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    let start = Instant::now();
    let send_offsets = offsets.clone();
    let sender = std::thread::Builder::new()
        .name("loadgen-open-loop".to_string())
        .spawn(move || -> std::io::Result<()> {
            for (line, offset) in lines.iter().zip(&send_offsets) {
                let deadline = start + *offset;
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
                let mut framed = String::with_capacity(line.len() + 1);
                framed.push_str(line);
                framed.push('\n');
                writer.write_all(framed.as_bytes())?;
                writer.flush()?;
            }
            Ok(())
        })
        .expect("spawn open-loop writer");

    let mut read_error = None;
    for offset in &offsets {
        let mut response = String::new();
        let n = match reader.read_line(&mut response) {
            Ok(n) => n,
            Err(e) => {
                read_error = Some(e);
                break;
            }
        };
        if n == 0 {
            read_error = Some(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-run",
            ));
            break;
        }
        // Latency from the scheduled arrival, not the actual send.
        report.latencies_us.push(
            start
                .elapsed()
                .saturating_sub(*offset)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64,
        );
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        observe(&mut report, &response);
    }
    let send_result = sender.join().expect("open-loop writer joins");
    send_result?;
    if let Some(e) = read_error {
        return Err(e);
    }
    let mut probe = TcpTransport {
        reader,
        writer: stream,
    };
    probe_target(config, &mut probe, &mut report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServiceConfig;

    #[test]
    fn small_run_reports_hits_and_verifies() {
        let mut service = Service::start(ServiceConfig::default());
        let config = LoadgenConfig {
            requests: 30,
            seed: 11,
            repeat_ratio: 0.9,
            max_qubits: 5,
            ..LoadgenConfig::default()
        };
        let report = run(&config, &mut service).unwrap();
        assert_eq!(report.ok, 30);
        assert_eq!(report.errors, 0);
        assert_eq!(report.verified, 30);
        assert_eq!(report.cache_hits + report.cache_misses, 30);
        assert!(report.cache_hits > 0, "repeats must hit the cache");
        assert_eq!(report.latencies_us.len(), 30);
        let json = report.summary_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"ok\": 30"));
    }

    #[test]
    fn summary_reports_hot_as_applied() {
        // An out-of-range --hot is clamped by the mix; the summary
        // must print the clamped value so identical behavior always
        // prints an identical summary.
        let run_with_hot = |hot: usize| {
            let mut service = Service::start(ServiceConfig::default());
            let config = LoadgenConfig {
                requests: 5,
                max_qubits: 4,
                hot,
                ..LoadgenConfig::default()
            };
            run(&config, &mut service).unwrap()
        };
        let oversized = run_with_hot(10_000);
        let pool_size = service_pool(4).len();
        assert_eq!(oversized.config.hot, pool_size);
        assert!(oversized
            .summary_json()
            .contains(&format!("\"hot\": {pool_size}")));
        let zero = run_with_hot(0);
        assert_eq!(zero.config.hot, 1);
    }

    #[test]
    fn latency_json_carries_version_and_run_context() {
        let mut service = Service::start(ServiceConfig::default());
        // Activate a snapshot so the context has a non-zero version.
        let ack = service.handle_line(
            "{\"type\":\"calibration\",\"action\":\"set\",\"device\":\"q20\",\
             \"synthetic\":{\"seed\":3}}",
        );
        assert!(ack.contains("\"version\":1"), "{ack}");
        let config = LoadgenConfig {
            requests: 5,
            max_qubits: 4,
            ..LoadgenConfig::default()
        };
        let report = run(&config, &mut service).unwrap();
        let json = report.latency_json();
        assert!(json.contains(&format!(
            "\"version\": {}",
            crate::metrics::LATENCY_SCHEMA_VERSION
        )));
        assert!(json.contains("\"p99_us\":"));
        assert!(json.contains("\"requests\": 5"));
        assert!(json.contains("\"device\": \"q20\""));
        assert!(json.contains("\"cache_capacity\": 1024"));
        assert!(json.contains("\"cache_shards\": 8"));
        assert!(json.contains("\"snapshot_version\": 1"), "{json}");
        // Schema 4: the client-side latency histogram (all 5 samples
        // bucketed) and the daemon's scraped phase profile ride along.
        assert!(json.contains("\"hist_client_total\": 5"), "{json}");
        assert!(json.contains("\"hist_client_buckets\": \""), "{json}");
        assert!(json.contains("\"daemon_queue_wait_total\":"), "{json}");
        assert!(json.contains("\"daemon_phase_route_total\":"), "{json}");
        let route_total: u64 = json
            .split("\"daemon_phase_route_total\": ")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|digits| digits.trim().parse().ok())
            .unwrap();
        assert!(route_total >= 1, "cache misses must route: {json}");
        // Without a snapshot the version reads 0.
        let mut bare = Service::start(ServiceConfig::default());
        let bare_report = run(&config, &mut bare).unwrap();
        assert_eq!(bare_report.snapshot_version, 0);
    }

    #[test]
    fn open_loop_matches_closed_loop_bytes() {
        // The issue discipline is timing-only: a seeded open-loop run
        // over TCP answers with exactly the bytes the closed loop gets
        // in-process, and its latency JSON says which mode measured.
        let config = LoadgenConfig {
            requests: 12,
            max_qubits: 4,
            arrival_us: Some(200),
            ..LoadgenConfig::default()
        };
        let mut closed_service = Service::start(ServiceConfig::default());
        let closed = run(
            &LoadgenConfig {
                arrival_us: None,
                ..config.clone()
            },
            &mut closed_service,
        )
        .unwrap();

        let service = Service::start(ServiceConfig::default());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = {
            let service = service.clone();
            std::thread::spawn(move || service.serve_tcp(listener))
        };
        let open = run_open_loop(&config, &addr).unwrap();
        let mut shutdown = TcpTransport::connect(&addr).unwrap();
        shutdown.call("{\"type\":\"shutdown\"}").unwrap();
        server.join().unwrap().unwrap();

        assert_eq!(open.ok, 12);
        assert_eq!(open.errors, 0);
        assert_eq!(open.latencies_us.len(), 12);
        assert_eq!(
            open.stream_fnv, closed.stream_fnv,
            "open vs closed loop must not change response bytes"
        );
        let json = open.latency_json();
        assert!(json.contains("\"mode\": \"open\""), "{json}");
        assert!(json.contains("\"arrival_us\": 200"), "{json}");
        assert!(json.contains("\"proxy\": false"), "{json}");
        assert!(json.contains("\"failovers\": 0"), "{json}");
        let closed_json = closed.latency_json();
        assert!(
            closed_json.contains("\"mode\": \"closed\""),
            "{closed_json}"
        );
        assert!(closed_json.contains("\"arrival_us\": 0"), "{closed_json}");
    }

    #[test]
    fn summary_json_excludes_latency() {
        let mut service = Service::start(ServiceConfig::default());
        let config = LoadgenConfig {
            requests: 5,
            max_qubits: 4,
            ..LoadgenConfig::default()
        };
        let report = run(&config, &mut service).unwrap();
        let json = report.summary_json();
        assert!(!json.contains("_us"), "latency leaked into summary: {json}");
    }
}
