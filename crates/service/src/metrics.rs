//! Daemon counters, latency histograms and the loadgen summary.
//!
//! [`ServiceMetrics`] are the daemon-side request counters reported by
//! the `stats` request — plain atomics, updated on every request.
//! [`Histogram`] adds where-did-the-time-go depth: fixed log2-bucket
//! latency histograms per verb, for queue wait, and for every routing
//! phase, scraped via `{"type":"metrics","hist":true}` (the plain
//! `metrics` body is byte-frozen by the golden fixtures, so the
//! histogram fields are strictly opt-in). [`LatencySummary`] is the
//! client-side view: `loadgen` records one microsecond sample per
//! request and summarizes them here. Latency is a *measurement*
//! (inherently nondeterministic), so it is kept out of the
//! deterministic loadgen summary JSON, exactly like the engine keeps
//! `RunStats` out of its `Summary`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buckets per [`Histogram`]: bucket `i` covers `[2^i, 2^(i+1))`
/// microseconds (bucket 0 also holds zero), the last bucket is
/// open-ended at ~8.4 s. Compile-time constant, so two scrapes of the
/// same request stream bucket identically.
pub const HISTOGRAM_BUCKETS: usize = 24;

/// Routing phases with a dedicated histogram, in pipeline order. The
/// queue wait sits between `cache_lookup` and `route` but is tracked
/// separately (it measures the queue, not a worker phase).
pub const PHASE_NAMES: [&str; 7] = [
    "parse",
    "canonicalize",
    "cache_lookup",
    "route",
    "verify",
    "simulate",
    "serialize",
];

/// Verbs with a dedicated end-to-end latency histogram, in the
/// emission order of the extended `metrics` body.
pub const VERB_NAMES: [&str; 8] = [
    "route",
    "calibration",
    "stats",
    "devices",
    "health",
    "metrics",
    "shutdown",
    "trace",
];

/// A fixed-boundary log2-bucket latency histogram (microseconds).
/// Lock-free: every field is an independent relaxed atomic — `total`
/// is the monotone event count the fuzz checker watches, `sum_us` and
/// the buckets are the measurement side.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// A fresh all-zero histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index `us` falls into: `floor(log2(us))`, clamped.
    pub fn bucket_index(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            ((63 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, us: u64) {
        self.buckets[Histogram::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Samples recorded so far (monotone).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Bucket counts as a comma-joined string — a *scalar* JSON value,
    /// so the extended `metrics` body stays flat under the fuzz
    /// checker's flatness contract.
    pub fn render_buckets(&self) -> String {
        let counts: Vec<String> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed).to_string())
            .collect();
        counts.join(",")
    }

    /// The three extended-metrics fields of this histogram, named
    /// `hist_<name>_total` / `_sum_us` / `_buckets`, comma-separated
    /// and ready to splice into a flat JSON body.
    pub fn json_fields(&self, name: &str) -> String {
        format!(
            "\"hist_{name}_total\":{},\"hist_{name}_sum_us\":{},\"hist_{name}_buckets\":\"{}\"",
            self.total(),
            self.sum_us(),
            self.render_buckets()
        )
    }
}

/// Request counters of one daemon instance.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Request lines received (any type, well-formed or not).
    pub requests: AtomicU64,
    /// Route requests answered from a fresh routing run.
    pub routed: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Route requests rejected by queue backpressure.
    pub overloaded: AtomicU64,
    /// Route jobs currently inside a worker (gauge, not a counter:
    /// incremented when a worker picks the job up, decremented when
    /// its reply is sent).
    pub in_flight: AtomicU64,
    /// Well-formed `route` requests (cache hits included).
    pub verb_route: AtomicU64,
    /// Well-formed `calibration` requests.
    pub verb_calibration: AtomicU64,
    /// Well-formed `stats` requests.
    pub verb_stats: AtomicU64,
    /// Well-formed `devices` requests.
    pub verb_devices: AtomicU64,
    /// Well-formed `health` requests.
    pub verb_health: AtomicU64,
    /// Well-formed `metrics` requests.
    pub verb_metrics: AtomicU64,
    /// Well-formed `shutdown` requests.
    pub verb_shutdown: AtomicU64,
    /// Well-formed `trace` requests (ring reads; counted like the
    /// other verbs but kept out of the byte-frozen plain bodies).
    pub verb_trace: AtomicU64,
    /// `route` requests with `"router":"auto"` that ran the whole
    /// portfolio because the (device, circuit-class) pair had no win
    /// history yet.
    pub portfolio_explore: AtomicU64,
    /// `route` requests with `"router":"auto"` answered by the class's
    /// current leader (single-member route or cache hit under the
    /// leader's key).
    pub portfolio_exploit: AtomicU64,
    /// Per-(device, circuit-class, member-label) win counts, keyed
    /// `device\0class\0label`. A `BTreeMap` so iteration — and with it
    /// the extended `metrics` body and leader election — is
    /// deterministic. Kept out of the byte-frozen plain `metrics` and
    /// `stats` bodies; surfaced only via `metrics` `hist:true`.
    pub portfolio_wins: Mutex<BTreeMap<String, u64>>,
    /// End-to-end latency per verb, indexed like [`VERB_NAMES`].
    pub hist_verbs: [Histogram; 8],
    /// Time accepted route jobs spent queued before a worker picked
    /// them up.
    pub hist_queue_wait: Histogram,
    /// Per-phase routing breakdown, indexed like [`PHASE_NAMES`].
    pub hist_phases: [Histogram; 7],
}

impl ServiceMetrics {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Increments a counter (relaxed; counters are independent).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge, saturating at zero. A plain `fetch_sub`
    /// would wrap an unpaired decrement to `u64::MAX` — a future
    /// pairing bug would then read as 18 quintillion in-flight jobs in
    /// `metrics` output instead of the honest 0 — so this is a CAS
    /// loop that refuses to go below zero.
    pub fn drop_one(gauge: &AtomicU64) {
        let mut current = gauge.load(Ordering::Relaxed);
        while current != 0 {
            match gauge.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The per-phase histogram for `name`, if `name` is one of
    /// [`PHASE_NAMES`].
    pub fn phase_histogram(&self, name: &str) -> Option<&Histogram> {
        PHASE_NAMES
            .iter()
            .position(|&p| p == name)
            .map(|i| &self.hist_phases[i])
    }

    /// The per-verb latency histogram for `name`, if `name` is one of
    /// [`VERB_NAMES`].
    pub fn verb_histogram(&self, name: &str) -> Option<&Histogram> {
        VERB_NAMES
            .iter()
            .position(|&v| v == name)
            .map(|i| &self.hist_verbs[i])
    }

    /// Reads a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Credits one portfolio win to `label` for (`device`, `class`).
    pub fn record_portfolio_win(&self, device: &str, class: &str, label: &str) {
        let key = format!("{device}\0{class}\0{label}");
        let mut wins = self.portfolio_wins.lock().expect("win table poisoned");
        *wins.entry(key).or_insert(0) += 1;
    }

    /// The current leader for (`device`, `class`): the member label
    /// with the most recorded wins, ties broken by lexicographically
    /// smaller label (the `BTreeMap` iterates labels in ascending
    /// order, so "first strictly greater wins" implements exactly
    /// that). `None` until the pair has any history — the explore
    /// signal.
    pub fn portfolio_leader(&self, device: &str, class: &str) -> Option<String> {
        let prefix = format!("{device}\0{class}\0");
        let wins = self.portfolio_wins.lock().expect("win table poisoned");
        let mut leader: Option<(&str, u64)> = None;
        for (key, &count) in wins.range(prefix.clone()..) {
            let Some(label) = key.strip_prefix(prefix.as_str()) else {
                break; // past the (device, class) block
            };
            if leader.map_or(true, |(_, best)| count > best) {
                leader = Some((label, count));
            }
        }
        leader.map(|(label, _)| label.to_string())
    }

    /// The win-table entries as flat JSON fields
    /// (`"portfolio_wins_<device>_<class>_<label>":count`, NUL
    /// separators and spaces rendered as `_`), comma-*prefixed* so the
    /// caller can splice them after the histogram fields. Empty when
    /// the table is.
    pub fn portfolio_win_fields(&self) -> String {
        let wins = self.portfolio_wins.lock().expect("win table poisoned");
        let mut out = String::new();
        for (key, count) in wins.iter() {
            let flat: String = key
                .chars()
                .map(|c| if c == '\0' || c == ' ' { '_' } else { c })
                .collect();
            out.push_str(&format!(",\"portfolio_wins_{flat}\":{count}"));
        }
        out
    }
}

/// Schema version of the loadgen latency JSON (`--latency-json`).
/// Bump whenever its shape changes, as with
/// [`codar_engine::TIMINGS_SCHEMA_VERSION`]. Version 1 carried only
/// the percentiles; version 2 added the run context (request count,
/// seed, device/router, daemon cache capacity/shards and the active
/// calibration snapshot version) so two latency files can be checked
/// for comparability before being diffed; version 3 added the traffic
/// mode (`mode`, `arrival_us`) and the failover context (`proxy`,
/// `retries`, `failovers`) so tail latencies measured through the
/// sharded tier carry the fault story that produced them; version 4
/// made the file self-diagnosing — the client-side log2-bucket latency
/// histogram (same compile-time buckets as the daemon's) and the
/// daemon's per-phase profile scraped via `metrics` `hist:true` at end
/// of run, so a p99 spike in the percentiles can be attributed to
/// queue wait vs routing phases without rerunning anything.
pub const LATENCY_SCHEMA_VERSION: u32 = 4;

/// Percentile summary of recorded per-request latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
    /// Median (nearest-rank), microseconds.
    pub p50_us: u64,
    /// 90th percentile (nearest-rank), microseconds.
    pub p90_us: u64,
    /// 99th percentile (nearest-rank), microseconds.
    pub p99_us: u64,
    /// Slowest sample, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Nearest-rank summary of `samples` (order irrelevant). An empty
    /// slice summarizes to all zeros.
    pub fn from_micros(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| -> u64 {
            // Nearest-rank: smallest value with at least p of the mass
            // at or below it.
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        LatencySummary {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }

    /// The percentile fields of the latency JSON, as `"key": value`
    /// lines (the run context around them lives in
    /// `LoadgenReport::latency_json`, which owns the versioned
    /// payload).
    pub fn json_fields(&self) -> String {
        format!(
            "  \"count\": {},\n  \"mean_us\": {:.3},\n  \"p50_us\": {},\n  \
             \"p90_us\": {},\n  \"p99_us\": {},\n  \"max_us\": {}",
            self.count, self.mean_us, self.p50_us, self.p90_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_is_all_zero() {
        let summary = LatencySummary::from_micros(&[]);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p99_us, 0);
        assert_eq!(summary.mean_us, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let summary = LatencySummary::from_micros(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_us, 50);
        assert_eq!(summary.p90_us, 90);
        assert_eq!(summary.p99_us, 99);
        assert_eq!(summary.max_us, 100);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let summary = LatencySummary::from_micros(&[42]);
        assert_eq!(
            (
                summary.p50_us,
                summary.p90_us,
                summary.p99_us,
                summary.max_us
            ),
            (42, 42, 42, 42)
        );
    }

    #[test]
    fn input_order_is_irrelevant() {
        let a = LatencySummary::from_micros(&[5, 1, 9, 3, 7]);
        let b = LatencySummary::from_micros(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn json_fields_carry_every_percentile() {
        let fields = LatencySummary::from_micros(&[10, 20]).json_fields();
        assert!(fields.contains("\"count\": 2"));
        assert!(fields.contains("\"p50_us\": 10"));
        assert!(fields.contains("\"p99_us\": 20"));
        assert!(fields.contains("\"max_us\": 20"));
        assert!(
            !fields.contains("version"),
            "version belongs to the payload owner"
        );
    }

    #[test]
    fn metrics_counters_bump() {
        let metrics = ServiceMetrics::new();
        ServiceMetrics::bump(&metrics.requests);
        ServiceMetrics::bump(&metrics.requests);
        ServiceMetrics::bump(&metrics.errors);
        assert_eq!(ServiceMetrics::read(&metrics.requests), 2);
        assert_eq!(ServiceMetrics::read(&metrics.errors), 1);
        assert_eq!(ServiceMetrics::read(&metrics.overloaded), 0);
    }

    #[test]
    fn drop_one_saturates_at_zero() {
        // Regression: an unpaired decrement used to wrap the gauge to
        // u64::MAX via fetch_sub; it must clamp at zero instead.
        let metrics = ServiceMetrics::new();
        ServiceMetrics::drop_one(&metrics.in_flight);
        assert_eq!(ServiceMetrics::read(&metrics.in_flight), 0);
        ServiceMetrics::bump(&metrics.in_flight);
        ServiceMetrics::drop_one(&metrics.in_flight);
        ServiceMetrics::drop_one(&metrics.in_flight);
        ServiceMetrics::drop_one(&metrics.in_flight);
        assert_eq!(ServiceMetrics::read(&metrics.in_flight), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_renders_flat() {
        let hist = Histogram::new();
        for us in [0, 1, 2, 3, 1024, u64::MAX / 2] {
            hist.record(us);
        }
        assert_eq!(hist.total(), 6);
        let buckets = hist.render_buckets();
        assert_eq!(buckets.split(',').count(), HISTOGRAM_BUCKETS);
        let counts: Vec<u64> = buckets.split(',').map(|c| c.parse().unwrap()).collect();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[10], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(counts.iter().sum::<u64>(), hist.total());
        let fields = hist.json_fields("route");
        assert!(fields.starts_with("\"hist_route_total\":6,\"hist_route_sum_us\":"));
        assert!(fields.contains("\"hist_route_buckets\":\"2,2,0"));
    }

    #[test]
    fn phase_histograms_resolve_by_name() {
        let metrics = ServiceMetrics::new();
        metrics.phase_histogram("route").unwrap().record(7);
        assert_eq!(metrics.hist_phases[3].total(), 1);
        assert!(metrics.phase_histogram("queue_wait").is_none());
        assert!(metrics.phase_histogram("nope").is_none());
    }

    #[test]
    fn portfolio_win_table_elects_deterministic_leaders() {
        let metrics = ServiceMetrics::new();
        assert_eq!(metrics.portfolio_leader("q20", "q6g3"), None);
        metrics.record_portfolio_win("q20", "q6g3", "sabre");
        metrics.record_portfolio_win("q20", "q6g3", "codar");
        // Tie at 1–1: the lexicographically smaller label leads.
        assert_eq!(
            metrics.portfolio_leader("q20", "q6g3").as_deref(),
            Some("codar")
        );
        metrics.record_portfolio_win("q20", "q6g3", "sabre");
        assert_eq!(
            metrics.portfolio_leader("q20", "q6g3").as_deref(),
            Some("sabre")
        );
        // Other (device, class) pairs have independent histories.
        assert_eq!(metrics.portfolio_leader("q5", "q6g3"), None);
        metrics.record_portfolio_win("q5", "q2g1", "greedy");
        assert_eq!(
            metrics.portfolio_leader("q5", "q2g1").as_deref(),
            Some("greedy")
        );
        let fields = metrics.portfolio_win_fields();
        assert!(fields.starts_with(','), "{fields}");
        assert!(fields.contains("\"portfolio_wins_q20_q6g3_sabre\":2"));
        assert!(fields.contains("\"portfolio_wins_q20_q6g3_codar\":1"));
        assert!(fields.contains("\"portfolio_wins_q5_q2g1_greedy\":1"));
        assert!(ServiceMetrics::new().portfolio_win_fields().is_empty());
    }

    #[test]
    fn in_flight_gauge_rises_and_falls() {
        let metrics = ServiceMetrics::new();
        ServiceMetrics::bump(&metrics.in_flight);
        ServiceMetrics::bump(&metrics.in_flight);
        ServiceMetrics::drop_one(&metrics.in_flight);
        assert_eq!(ServiceMetrics::read(&metrics.in_flight), 1);
        ServiceMetrics::bump(&metrics.verb_route);
        ServiceMetrics::bump(&metrics.verb_health);
        assert_eq!(ServiceMetrics::read(&metrics.verb_route), 1);
        assert_eq!(ServiceMetrics::read(&metrics.verb_health), 1);
        assert_eq!(ServiceMetrics::read(&metrics.verb_metrics), 0);
    }
}
