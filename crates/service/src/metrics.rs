//! Daemon counters and the loadgen latency summary.
//!
//! [`ServiceMetrics`] are the daemon-side request counters reported by
//! the `stats` request — plain atomics, updated on every request.
//! [`LatencySummary`] is the client-side view: `loadgen` records one
//! microsecond sample per request and summarizes them here. Latency is
//! a *measurement* (inherently nondeterministic), so it is kept out of
//! the deterministic loadgen summary JSON, exactly like the engine
//! keeps `RunStats` out of its `Summary`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Request counters of one daemon instance.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Request lines received (any type, well-formed or not).
    pub requests: AtomicU64,
    /// Route requests answered from a fresh routing run.
    pub routed: AtomicU64,
    /// Requests answered with an error response.
    pub errors: AtomicU64,
    /// Route requests rejected by queue backpressure.
    pub overloaded: AtomicU64,
    /// Route jobs currently inside a worker (gauge, not a counter:
    /// incremented when a worker picks the job up, decremented when
    /// its reply is sent).
    pub in_flight: AtomicU64,
    /// Well-formed `route` requests (cache hits included).
    pub verb_route: AtomicU64,
    /// Well-formed `calibration` requests.
    pub verb_calibration: AtomicU64,
    /// Well-formed `stats` requests.
    pub verb_stats: AtomicU64,
    /// Well-formed `devices` requests.
    pub verb_devices: AtomicU64,
    /// Well-formed `health` requests.
    pub verb_health: AtomicU64,
    /// Well-formed `metrics` requests.
    pub verb_metrics: AtomicU64,
    /// Well-formed `shutdown` requests.
    pub verb_shutdown: AtomicU64,
}

impl ServiceMetrics {
    /// Fresh all-zero counters.
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Increments a counter (relaxed; counters are independent).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge (relaxed, saturating at zero in practice:
    /// every decrement is paired with an earlier increment).
    pub fn drop_one(gauge: &AtomicU64) {
        gauge.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Schema version of the loadgen latency JSON (`--latency-json`).
/// Bump whenever its shape changes, as with
/// [`codar_engine::TIMINGS_SCHEMA_VERSION`]. Version 1 carried only
/// the percentiles; version 2 added the run context (request count,
/// seed, device/router, daemon cache capacity/shards and the active
/// calibration snapshot version) so two latency files can be checked
/// for comparability before being diffed; version 3 added the traffic
/// mode (`mode`, `arrival_us`) and the failover context (`proxy`,
/// `retries`, `failovers`) so tail latencies measured through the
/// sharded tier carry the fault story that produced them.
pub const LATENCY_SCHEMA_VERSION: u32 = 3;

/// Percentile summary of recorded per-request latencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: usize,
    /// Arithmetic mean, microseconds.
    pub mean_us: f64,
    /// Median (nearest-rank), microseconds.
    pub p50_us: u64,
    /// 90th percentile (nearest-rank), microseconds.
    pub p90_us: u64,
    /// 99th percentile (nearest-rank), microseconds.
    pub p99_us: u64,
    /// Slowest sample, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// Nearest-rank summary of `samples` (order irrelevant). An empty
    /// slice summarizes to all zeros.
    pub fn from_micros(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                mean_us: 0.0,
                p50_us: 0,
                p90_us: 0,
                p99_us: 0,
                max_us: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| -> u64 {
            // Nearest-rank: smallest value with at least p of the mass
            // at or below it.
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        LatencySummary {
            count: sorted.len(),
            mean_us: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            p50_us: rank(0.50),
            p90_us: rank(0.90),
            p99_us: rank(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }

    /// The percentile fields of the latency JSON, as `"key": value`
    /// lines (the run context around them lives in
    /// `LoadgenReport::latency_json`, which owns the versioned
    /// payload).
    pub fn json_fields(&self) -> String {
        format!(
            "  \"count\": {},\n  \"mean_us\": {:.3},\n  \"p50_us\": {},\n  \
             \"p90_us\": {},\n  \"p99_us\": {},\n  \"max_us\": {}",
            self.count, self.mean_us, self.p50_us, self.p90_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_is_all_zero() {
        let summary = LatencySummary::from_micros(&[]);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p99_us, 0);
        assert_eq!(summary.mean_us, 0.0);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let summary = LatencySummary::from_micros(&samples);
        assert_eq!(summary.count, 100);
        assert_eq!(summary.p50_us, 50);
        assert_eq!(summary.p90_us, 90);
        assert_eq!(summary.p99_us, 99);
        assert_eq!(summary.max_us, 100);
        assert!((summary.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let summary = LatencySummary::from_micros(&[42]);
        assert_eq!(
            (
                summary.p50_us,
                summary.p90_us,
                summary.p99_us,
                summary.max_us
            ),
            (42, 42, 42, 42)
        );
    }

    #[test]
    fn input_order_is_irrelevant() {
        let a = LatencySummary::from_micros(&[5, 1, 9, 3, 7]);
        let b = LatencySummary::from_micros(&[9, 7, 5, 3, 1]);
        assert_eq!(a, b);
    }

    #[test]
    fn json_fields_carry_every_percentile() {
        let fields = LatencySummary::from_micros(&[10, 20]).json_fields();
        assert!(fields.contains("\"count\": 2"));
        assert!(fields.contains("\"p50_us\": 10"));
        assert!(fields.contains("\"p99_us\": 20"));
        assert!(fields.contains("\"max_us\": 20"));
        assert!(
            !fields.contains("version"),
            "version belongs to the payload owner"
        );
    }

    #[test]
    fn metrics_counters_bump() {
        let metrics = ServiceMetrics::new();
        ServiceMetrics::bump(&metrics.requests);
        ServiceMetrics::bump(&metrics.requests);
        ServiceMetrics::bump(&metrics.errors);
        assert_eq!(ServiceMetrics::read(&metrics.requests), 2);
        assert_eq!(ServiceMetrics::read(&metrics.errors), 1);
        assert_eq!(ServiceMetrics::read(&metrics.overloaded), 0);
    }

    #[test]
    fn in_flight_gauge_rises_and_falls() {
        let metrics = ServiceMetrics::new();
        ServiceMetrics::bump(&metrics.in_flight);
        ServiceMetrics::bump(&metrics.in_flight);
        ServiceMetrics::drop_one(&metrics.in_flight);
        assert_eq!(ServiceMetrics::read(&metrics.in_flight), 1);
        ServiceMetrics::bump(&metrics.verb_route);
        ServiceMetrics::bump(&metrics.verb_health);
        assert_eq!(ServiceMetrics::read(&metrics.verb_route), 1);
        assert_eq!(ServiceMetrics::read(&metrics.verb_health), 1);
        assert_eq!(ServiceMetrics::read(&metrics.verb_metrics), 0);
    }
}
