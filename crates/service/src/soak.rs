//! Seeded soak runs: long mixed traffic under the fuzz invariants.
//!
//! Where [`crate::loadgen`] measures one burst of route traffic, a
//! soak run (`loadgen --soak`) exercises the daemon the way a day of
//! production does — a seeded *mix* of hot-set route requests,
//! periodic calibration reloads (each one bumps the snapshot version
//! and invalidates the route cache) and `stats` probes — while holding
//! every reply to the same contract the fuzzer enforces
//! ([`crate::fuzz::InvariantChecker`]): single-line well-formed JSON,
//! exact id echo, monotone counters, bounded cache occupancy. Soak
//! traffic is entirely valid, so the contract tightens: any non-`ok`
//! reply is a violation too.
//!
//! Traffic is organized in **rounds** — `requests_per_round` routes,
//! an optional reload, one stats probe — so the stream is a pure
//! function of `(config, round count)`. A `--rounds N` run is
//! byte-reproducible: reruns at equal seeds produce byte-identical
//! reply streams ([`SoakReport::reply_fnv`]), which CI diffs. A
//! `--duration` run issues rounds until the wall clock expires — same
//! per-round bytes, nondeterministic round count.
//!
//! With concurrent TCP clients ([`run_soak_tcp_clients`]) the global
//! reply interleaving is scheduler-dependent, so determinism narrows
//! to what cache-transparency actually guarantees: each client's
//! *route* replies ([`SoakReport::route_fnv`]) are byte-identical to a
//! solo run of the same per-client seed. Reloads are disabled in that
//! mode — a version bump racing another client's route would make the
//! winner timing-dependent.

use crate::cache::{fnv1a_extend, FNV_OFFSET};
use crate::fuzz::{InvariantChecker, ReplyTally};
use crate::json::{escape, Json};
use crate::loadgen::{TcpTransport, Transport};
use codar_benchmarks::mix::{service_pool, CircuitMix};
use codar_circuit::from_qasm::circuit_to_qasm;
use std::time::{Duration, Instant};

/// Soak traffic shape. The request stream is a pure function of this
/// struct plus the number of rounds actually issued.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Mix seed; every request in the stream derives from it.
    pub seed: u64,
    /// Rounds to issue. 0 = run on wall clock (`duration`) instead.
    pub rounds: usize,
    /// Wall-clock budget when `rounds` is 0: no new round starts after
    /// this much time has passed (the round in flight completes).
    pub duration: Duration,
    /// Route requests per round.
    pub requests_per_round: usize,
    /// Reload calibration every N rounds (synthetic snapshot, version
    /// strictly increasing). 0 = never. Forced to 0 under concurrent
    /// clients — see the module docs.
    pub reload_every: usize,
    /// Target device name.
    pub device: String,
    /// Router to request.
    pub router: String,
    /// Pool bound: only suite circuits with ≤ this many qubits.
    pub max_qubits: usize,
    /// Hot-set size (first N pool entries).
    pub hot: usize,
    /// Probability a request replays the hot set (clamped to [0, 1]).
    pub repeat_ratio: f64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 7,
            rounds: 50,
            duration: Duration::from_secs(30),
            requests_per_round: 20,
            reload_every: 10,
            device: "q20".to_string(),
            router: "codar".to_string(),
            max_qubits: CircuitMix::DEFAULT_MAX_QUBITS,
            hot: CircuitMix::DEFAULT_HOT,
            repeat_ratio: 0.95,
        }
    }
}

/// Why a soak run stopped early.
#[derive(Debug)]
pub enum SoakError {
    /// The transport failed (daemon died, connection dropped).
    Io(std::io::Error),
    /// A reply broke the contract.
    Violation {
        /// The request line that got the bad reply.
        input: String,
        /// The offending reply.
        reply: String,
        /// Which invariant broke.
        message: String,
    },
}

impl std::fmt::Display for SoakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoakError::Io(e) => write!(f, "transport failed: {e}"),
            SoakError::Violation {
                input,
                reply,
                message,
            } => {
                write!(
                    f,
                    "invariant violation: {message}\n  input: {input}\n  reply: {reply}"
                )
            }
        }
    }
}

impl From<std::io::Error> for SoakError {
    fn from(e: std::io::Error) -> Self {
        SoakError::Io(e)
    }
}

/// What a completed soak run did and observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Rounds actually issued.
    pub rounds: usize,
    /// Total requests sent (routes + reloads + stats probes).
    pub requests: usize,
    /// FNV-1a over *every* reply (+`\n`): byte-identity for solo runs.
    pub reply_fnv: u64,
    /// FNV-1a over route replies only: byte-identity that survives
    /// concurrent clients (cache-transparency).
    pub route_fnv: u64,
    /// Per-status reply counts (all `ok` on a clean soak).
    pub tally: ReplyTally,
    /// The device's snapshot version after the final reload (0 when
    /// reloads are disabled and nothing was active).
    pub snapshot_version: u64,
}

impl SoakReport {
    /// The deterministic summary line CI diffs between reruns.
    pub fn summary_line(&self, config: &SoakConfig) -> String {
        format!(
            "soak seed={} rounds={} requests={} replies fnv=0x{:016x} \
             routes fnv=0x{:016x} ok={} snapshot_version={}",
            config.seed,
            self.rounds,
            self.requests,
            self.reply_fnv,
            self.route_fnv,
            self.tally.ok,
            self.snapshot_version,
        )
    }
}

/// The seeded request stream, materialized lazily round by round.
struct SoakStream {
    mix: CircuitMix,
    pool_qasm: Vec<String>,
    config: SoakConfig,
    round: usize,
}

impl SoakStream {
    fn new(config: &SoakConfig) -> std::io::Result<SoakStream> {
        let pool = service_pool(config.max_qubits);
        if pool.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "--max-qubits {} leaves no benchmark circuits in the pool",
                    config.max_qubits
                ),
            ));
        }
        let mix = CircuitMix::with_pool(pool, config.hot, config.seed, config.repeat_ratio);
        let pool_qasm = mix
            .pool()
            .iter()
            .map(|entry| circuit_to_qasm(&entry.circuit).expect("suite circuits serialize"))
            .collect();
        Ok(SoakStream {
            mix,
            pool_qasm,
            config: config.clone(),
            round: 0,
        })
    }

    /// The next round's request lines, paired with whether each is a
    /// route (route replies feed `route_fnv`).
    fn next_round(&mut self) -> Vec<(String, bool)> {
        let round = self.round;
        self.round += 1;
        let mut lines = Vec::with_capacity(self.config.requests_per_round + 2);
        if self.config.reload_every > 0 && round % self.config.reload_every == 0 {
            // Synthetic server-side snapshot: the daemon stamps version
            // high-water + 1, so versions climb deterministically.
            lines.push((
                format!(
                    "{{\"id\":{},\"type\":\"calibration\",\"action\":\"set\",\
                     \"device\":{},\"synthetic\":{{\"seed\":{},\"drift\":{}}}}}",
                    round,
                    escape(&self.config.device),
                    self.config.seed.wrapping_add(round as u64),
                    round % 3,
                ),
                false,
            ));
        }
        let device = escape(&self.config.device);
        let router = escape(&self.config.router);
        for _ in 0..self.config.requests_per_round {
            let index = self.mix.next_index();
            lines.push((
                format!(
                    "{{\"type\":\"route\",\"device\":{device},\"router\":{router},\
                     \"circuit\":{}}}",
                    escape(&self.pool_qasm[index])
                ),
                true,
            ));
        }
        lines.push((format!("{{\"id\":{round},\"type\":\"stats\"}}"), false));
        lines
    }
}

/// Runs a soak against one transport. Rounds come from `config.rounds`
/// when nonzero, from the wall clock otherwise.
///
/// # Errors
///
/// [`SoakError::Io`] when the transport fails, [`SoakError::Violation`]
/// on the first reply that breaks the contract (including any
/// non-`ok` status — soak traffic is valid by construction).
pub fn run_soak(
    config: &SoakConfig,
    transport: &mut dyn Transport,
) -> Result<SoakReport, SoakError> {
    let mut stream = SoakStream::new(config)?;
    let mut checker = InvariantChecker::new();
    let mut report = SoakReport {
        rounds: 0,
        requests: 0,
        reply_fnv: FNV_OFFSET,
        route_fnv: FNV_OFFSET,
        tally: ReplyTally::default(),
        snapshot_version: 0,
    };
    let started = Instant::now();
    loop {
        let done = if config.rounds > 0 {
            report.rounds >= config.rounds
        } else {
            started.elapsed() >= config.duration
        };
        if done {
            break;
        }
        for (line, is_route) in stream.next_round() {
            let reply = transport.call(&line)?;
            report.requests += 1;
            report.reply_fnv = fnv1a_extend(report.reply_fnv, reply.as_bytes());
            report.reply_fnv = fnv1a_extend(report.reply_fnv, b"\n");
            if is_route {
                report.route_fnv = fnv1a_extend(report.route_fnv, reply.as_bytes());
                report.route_fnv = fnv1a_extend(report.route_fnv, b"\n");
            }
            let violation = |message: String| SoakError::Violation {
                input: line.clone(),
                reply: reply.clone(),
                message,
            };
            checker.check(&line, &reply).map_err(violation)?;
            if !reply.contains("\"status\":\"ok\"") {
                return Err(violation("soak traffic is valid; non-ok reply".to_string()));
            }
        }
        report.rounds += 1;
    }
    report.tally = checker.tally;
    // The active snapshot version closes the loop on the reload
    // schedule: `--rounds` reruns must agree on it exactly.
    let cal_line = transport.call(&format!(
        "{{\"type\":\"calibration\",\"action\":\"get\",\"device\":{}}}",
        escape(&config.device)
    ))?;
    if let Ok(cal) = Json::parse(&cal_line) {
        report.snapshot_version = cal.get("version").and_then(Json::as_u64).unwrap_or(0);
    }
    Ok(report)
}

/// Runs `clients` concurrent soaks against a TCP daemon at `addr`,
/// client `i` seeded with `config.seed + i`. Reloads are forced off
/// (see the module docs); set calibration before calling if the run
/// should route against one. Returns per-client reports, client order.
///
/// # Errors
///
/// The first client failure, by client order ([`SoakError::Io`] or
/// [`SoakError::Violation`]); surviving clients finish first.
pub fn run_soak_tcp_clients(
    addr: &str,
    clients: usize,
    config: &SoakConfig,
) -> Result<Vec<SoakReport>, SoakError> {
    let handles: Vec<_> = (0..clients.max(1))
        .map(|i| {
            let config = SoakConfig {
                seed: config.seed + i as u64,
                reload_every: 0,
                ..config.clone()
            };
            let addr = addr.to_string();
            std::thread::spawn(move || -> Result<SoakReport, SoakError> {
                let mut transport = TcpTransport::connect(&addr)?;
                run_soak(&config, &mut transport)
            })
        })
        .collect();
    let mut reports = Vec::with_capacity(handles.len());
    let mut first_error = None;
    for handle in handles {
        match handle.join().expect("soak client panicked") {
            Ok(report) => reports.push(report),
            Err(e) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
        }
    }
    match first_error {
        None => Ok(reports),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Service, ServiceConfig};

    fn small_config() -> SoakConfig {
        SoakConfig {
            rounds: 6,
            requests_per_round: 5,
            reload_every: 2,
            max_qubits: 5,
            ..SoakConfig::default()
        }
    }

    #[test]
    fn soak_reruns_are_byte_identical() {
        let run = || {
            let mut service = Service::start(ServiceConfig::default());
            run_soak(&small_config(), &mut service).expect("clean soak")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.reply_fnv, b.reply_fnv, "full reply stream must be stable");
        assert_eq!(a.route_fnv, b.route_fnv);
        assert_eq!(a.requests, b.requests);
        assert_eq!(
            a.summary_line(&small_config()),
            b.summary_line(&small_config())
        );
        // 3 reloads at rounds 0, 2, 4 → the snapshot is at version 3.
        assert_eq!(a.snapshot_version, 3);
        assert_eq!(a.tally.error, 0);
        assert_eq!(a.tally.ok as usize, a.requests);
    }

    #[test]
    fn reloads_change_the_stream_and_seeds_change_routes() {
        let mut service = Service::start(ServiceConfig::default());
        let with_reloads = run_soak(&small_config(), &mut service).expect("clean");
        let mut service = Service::start(ServiceConfig::default());
        let without = run_soak(
            &SoakConfig {
                reload_every: 0,
                ..small_config()
            },
            &mut service,
        )
        .expect("clean");
        assert_eq!(without.snapshot_version, 0);
        assert_ne!(with_reloads.reply_fnv, without.reply_fnv);
        let mut service = Service::start(ServiceConfig::default());
        let other_seed = run_soak(
            &SoakConfig {
                seed: 8,
                ..small_config()
            },
            &mut service,
        )
        .expect("clean");
        assert_ne!(with_reloads.route_fnv, other_seed.route_fnv);
    }

    #[test]
    fn duration_mode_issues_at_least_one_round() {
        let mut service = Service::start(ServiceConfig::default());
        let config = SoakConfig {
            rounds: 0,
            duration: Duration::from_millis(1),
            ..small_config()
        };
        let report = run_soak(&config, &mut service).expect("clean");
        assert!(report.rounds >= 1);
        assert_eq!(report.tally.error, 0);
    }

    #[test]
    fn concurrent_tcp_clients_keep_route_streams_deterministic() {
        let service = Service::start(ServiceConfig::default());
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = {
            let service = service.clone();
            std::thread::spawn(move || service.serve_tcp(listener))
        };
        let config = SoakConfig {
            rounds: 3,
            requests_per_round: 4,
            max_qubits: 5,
            ..SoakConfig::default()
        };
        let reports = run_soak_tcp_clients(&addr, 3, &config).expect("clean soak");
        assert_eq!(reports.len(), 3);
        // Each client's route stream must match a solo in-process run
        // at the same per-client seed: cache-transparency at work.
        for (i, report) in reports.iter().enumerate() {
            let mut solo = Service::start(ServiceConfig::default());
            let solo_config = SoakConfig {
                seed: config.seed + i as u64,
                reload_every: 0,
                ..config.clone()
            };
            let solo_report = run_soak(&solo_config, &mut solo).expect("clean");
            assert_eq!(report.route_fnv, solo_report.route_fnv, "client {i}");
            assert_eq!(report.tally.error, 0);
        }
        service.handle_line("{\"type\":\"shutdown\"}");
        // Wake the accept loop so serve_tcp notices the flag.
        let _ = std::net::TcpStream::connect(&addr);
        server.join().expect("server thread").expect("serve_tcp");
    }
}
