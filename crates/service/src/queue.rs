//! A bounded MPMC job queue with explicit backpressure.
//!
//! The daemon never buffers unboundedly: accepted route requests go
//! through a [`Bounded`] queue whose capacity limits how much work can
//! be outstanding at once. When the queue is full, [`Bounded::try_push`]
//! fails immediately and the server replies `overloaded` instead of
//! queueing — memory stays bounded under any load. Workers block in
//! [`Bounded::pop`]; closing the queue wakes them all so the pool can
//! drain and exit.
//!
//! The queue also keeps a depth **high-water mark** — the deepest it
//! has ever been — surfaced by the extended `metrics` body so a tail
//! latency seen in tracing can be checked against how close the queue
//! came to its backpressure limit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] rejected an item (the item is returned).
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; reply `overloaded`.
    Full(T),
    /// The queue was closed — the daemon is shutting down.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// The bounded queue (see the module docs).
#[derive(Debug)]
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items. Capacity `0` is legal
    /// and rejects every push — useful for testing the overload path.
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`Bounded::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed **and** drained — the worker
    /// exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail,
    /// and blocked workers wake up.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued (racy outside tests, by nature).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been (monotone; never reset).
    pub fn high_water(&self) -> usize {
        self.state.lock().expect("queue poisoned").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = Bounded::new(3);
        for i in 0..3 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_with_item_returned() {
        let q = Bounded::new(1);
        q.try_push("a").unwrap();
        assert_eq!(q.try_push("b"), Err(PushError::Full("b")));
        // Draining one slot makes room again.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn capacity_zero_always_overloads() {
        let q = Bounded::new(0);
        assert_eq!(q.try_push(1), Err(PushError::Full(1)));
    }

    #[test]
    fn high_water_tracks_the_deepest_fill() {
        let q = Bounded::new(4);
        assert_eq!(q.high_water(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.high_water(), 3);
        // Draining does not lower the mark; refilling shallower
        // does not either.
        q.pop();
        q.pop();
        q.pop();
        q.try_push(4).unwrap();
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the worker a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(Bounded::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut pushed = 0;
                for i in 0..100 {
                    loop {
                        match q.try_push(i) {
                            Ok(()) => break,
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => return pushed,
                        }
                    }
                    pushed += 1;
                }
                q.close();
                pushed
            })
        };
        let mut received = Vec::new();
        while let Some(item) = q.pop() {
            received.push(item);
        }
        assert_eq!(producer.join().unwrap(), 100);
        assert_eq!(received, (0..100).collect::<Vec<_>>());
    }
}
