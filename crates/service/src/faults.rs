//! Deterministic transport-fault injection.
//!
//! Retry, failover, drain and backoff paths are worthless if they are
//! only reasoned about; this module makes them *executable*. A
//! [`FaultPlan`] is a seeded, serializable schedule of transport
//! faults ("kill the daemon at request 40", "truncate the reply of
//! request 9 after 17 bytes") that two consumers share:
//!
//! * `coded --fault-plan SPEC` — the real binary injects the faults in
//!   its serve loops (a `kill` exits the process), so CI can rehearse
//!   shard death against real sockets, and
//! * [`ShardFleet`] — an in-process harness that runs N TCP shards in
//!   threads, applies per-shard plans, and can restart a killed shard
//!   on its original port, so unit tests exercise the same scenarios
//!   without process management.
//!
//! Faults fire on the daemon's *n-th accepted request line* (1-based,
//! counted across all connections of one daemon instance), which makes
//! a faulted run a pure function of (plan, request stream) — two runs
//! of the same seeded scenario behave identically, the property the
//! proxy determinism gates are built on.
//!
//! # Plan grammar
//!
//! Semicolon-separated events, each `kind[:arg]@request`:
//!
//! ```text
//! kill@40              exit (bin) / stop serving (harness) at request 40
//! hang:1500@30         park request 30 for 1500 ms, then close, no reply
//! refuse@5             after replying to request 5, accept no new connections
//! close:17@9           write only the first 17 bytes of reply 9, then close
//! delay:50@3           sleep 50 ms before replying to request 3
//! ```

use crate::server::{Service, ServiceConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// One kind of injected transport fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The daemon dies: the bin exits the process, the in-process
    /// harness stops serving every stream and closes its listener.
    Kill,
    /// The connection serving the request parks for `millis`, then
    /// closes without replying — a stuck shard, as seen by a client
    /// with a read timeout.
    Hang {
        /// How long the connection stays parked, milliseconds.
        millis: u64,
    },
    /// The daemon stops accepting new connections (existing ones keep
    /// being served) — a full backlog / dead listener.
    RefuseAccept,
    /// The reply is truncated after `bytes` bytes and the connection
    /// closes — a torn frame, the worst-case partial write.
    CloseAfter {
        /// Reply bytes actually written before the close.
        bytes: usize,
    },
    /// The reply is delayed by `millis`, then served normally — slow
    /// shard, exercises timeout tuning without failover.
    Delay {
        /// Added latency, milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    fn render(&self) -> String {
        match self {
            FaultKind::Kill => "kill".to_string(),
            FaultKind::Hang { millis } => format!("hang:{millis}"),
            FaultKind::RefuseAccept => "refuse".to_string(),
            FaultKind::CloseAfter { bytes } => format!("close:{bytes}"),
            FaultKind::Delay { millis } => format!("delay:{millis}"),
        }
    }
}

/// One scheduled fault: `kind` fires when the daemon serves its
/// `at_request`-th request line (1-based, across all connections).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 1-based global request index the fault fires at.
    pub at_request: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of transport faults (see the module docs
/// for the grammar).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Events, sorted by request index (enforced by the constructors).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with a single event.
    pub fn single(at_request: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            events: vec![FaultEvent { at_request, kind }],
        }
    }

    /// Parses the `kind[:arg]@request;...` grammar.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown kinds, missing or
    /// malformed arguments/indices, and duplicate request indices
    /// (which would make the schedule ambiguous).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut events = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind_spec, at) = part
                .split_once('@')
                .ok_or_else(|| format!("fault `{part}` is missing `@request-index`"))?;
            let at_request: u64 = at
                .trim()
                .parse()
                .map_err(|_| format!("fault `{part}`: `{at}` is not a request index"))?;
            if at_request == 0 {
                return Err(format!("fault `{part}`: request indices are 1-based"));
            }
            let (name, arg) = match kind_spec.split_once(':') {
                Some((name, arg)) => (name.trim(), Some(arg.trim())),
                None => (kind_spec.trim(), None),
            };
            let parse_arg = |what: &str| -> Result<u64, String> {
                arg.ok_or_else(|| format!("fault `{part}` needs `:{what}`"))?
                    .parse()
                    .map_err(|_| format!("fault `{part}`: `{what}` must be an integer"))
            };
            let kind = match name {
                "kill" => FaultKind::Kill,
                "refuse" => FaultKind::RefuseAccept,
                "hang" => FaultKind::Hang {
                    millis: parse_arg("millis")?,
                },
                "delay" => FaultKind::Delay {
                    millis: parse_arg("millis")?,
                },
                "close" => FaultKind::CloseAfter {
                    bytes: usize::try_from(parse_arg("bytes")?)
                        .map_err(|_| format!("fault `{part}`: byte count too large"))?,
                },
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (known: kill, hang, refuse, close, delay)"
                    ))
                }
            };
            if matches!(kind, FaultKind::Kill | FaultKind::RefuseAccept) && arg.is_some() {
                return Err(format!("fault `{part}` takes no argument"));
            }
            events.push(FaultEvent { at_request, kind });
        }
        events.sort_by_key(|e| e.at_request);
        if events
            .windows(2)
            .any(|w| w[0].at_request == w[1].at_request)
        {
            return Err("two faults share one request index".to_string());
        }
        Ok(FaultPlan { events })
    }

    /// Renders the plan back into the grammar ([`FaultPlan::parse`] of
    /// the result round-trips).
    pub fn render(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("{}@{}", e.kind.render(), e.at_request))
            .collect::<Vec<_>>()
            .join(";")
    }

    /// A seeded plan: `events` faults at distinct request indices in
    /// `[1, max_request]`, kinds drawn deterministically from the
    /// full matrix. Same seed, same plan.
    pub fn seeded(seed: u64, events: usize, max_request: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17);
        let mut picked = Vec::new();
        let mut out = Vec::new();
        for _ in 0..events {
            let mut at = rng.gen_range(1..=max_request.max(1));
            // Distinct indices keep the schedule unambiguous; linear
            // probing stays deterministic.
            while picked.contains(&at) {
                at = at % max_request.max(1) + 1;
            }
            picked.push(at);
            let kind = match rng.gen_range(0..5u32) {
                0 => FaultKind::Kill,
                1 => FaultKind::Hang {
                    millis: rng.gen_range(100u64..=2000),
                },
                2 => FaultKind::RefuseAccept,
                3 => FaultKind::CloseAfter {
                    bytes: rng.gen_range(0..64usize),
                },
                _ => FaultKind::Delay {
                    millis: rng.gen_range(1u64..=100),
                },
            };
            out.push(FaultEvent {
                at_request: at,
                kind,
            });
        }
        out.sort_by_key(|e| e.at_request);
        FaultPlan { events: out }
    }
}

/// What the serve loop must do with the current request line, as
/// decided by [`FaultInjector::on_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve normally.
    None,
    /// Sleep, then serve normally.
    Delay(Duration),
    /// Sleep, then close the connection without replying.
    Hang(Duration),
    /// Die (exit the process / stop serving).
    Kill,
    /// Write only this many reply bytes, then close the connection.
    CloseAfter(usize),
}

/// Shared per-daemon fault state: one global request counter plus the
/// latched kill/refuse flags the serve loops poll.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    served: AtomicU64,
    killed: AtomicBool,
    refusing: AtomicBool,
    /// `true` in the real binary: a `kill` fault exits the process
    /// (exit code [`KILL_EXIT_CODE`]). `false` in the in-process
    /// harness, which latches [`FaultInjector::killed`] instead.
    pub exit_on_kill: bool,
}

/// Exit code of a `coded` process that died to a `kill` fault, so a
/// supervising script can tell an injected death from a crash.
pub const KILL_EXIT_CODE: i32 = 9;

impl FaultInjector {
    /// A fresh injector for one daemon lifetime.
    pub fn new(plan: FaultPlan, exit_on_kill: bool) -> FaultInjector {
        FaultInjector {
            plan,
            served: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            refusing: AtomicBool::new(false),
            exit_on_kill,
        }
    }

    /// Counts one request line and returns the action the serve loop
    /// must take for it. `RefuseAccept` latches the refusing flag and
    /// maps to [`FaultAction::None`] (the triggering request itself is
    /// still answered); `Kill` latches the killed flag.
    pub fn on_request(&self) -> FaultAction {
        let index = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        let Some(event) = self.plan.events.iter().find(|e| e.at_request == index) else {
            return FaultAction::None;
        };
        match event.kind {
            FaultKind::Kill => {
                self.killed.store(true, Ordering::SeqCst);
                FaultAction::Kill
            }
            FaultKind::RefuseAccept => {
                self.refusing.store(true, Ordering::SeqCst);
                FaultAction::None
            }
            FaultKind::Hang { millis } => FaultAction::Hang(Duration::from_millis(millis)),
            FaultKind::Delay { millis } => FaultAction::Delay(Duration::from_millis(millis)),
            FaultKind::CloseAfter { bytes } => FaultAction::CloseAfter(bytes),
        }
    }

    /// Whether a `kill` fault has fired (in-process harness mode).
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// Whether a `refuse` fault has fired: the accept loop must stop
    /// accepting (and close its listener).
    pub fn refusing(&self) -> bool {
        self.refusing.load(Ordering::SeqCst)
    }

    /// Request lines counted so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::SeqCst)
    }
}

struct FleetShard {
    addr: SocketAddr,
    service: Service,
    accept: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

/// An in-process fleet of N TCP shards, each a full [`Service`] with
/// its own listener thread and optional [`FaultPlan`] — the test-side
/// consumer of the fault layer. A killed shard can be
/// [restarted](ShardFleet::restart) on its original port with a fresh
/// (fault-free) service, modeling supervisor-driven recovery.
pub struct ShardFleet {
    base: ServiceConfig,
    drain: Duration,
    shards: Vec<FleetShard>,
}

impl ShardFleet {
    /// Starts `plans.len()` shards on ephemeral loopback ports. Every
    /// shard shares `base` (same seed → byte-identical route replies,
    /// the property the proxy gates rely on); `plans[i]` is shard
    /// `i`'s fault schedule. `drain` bounds each shard's shutdown
    /// drain.
    ///
    /// # Errors
    ///
    /// Propagates listener bind errors.
    pub fn start(
        base: &ServiceConfig,
        plans: &[Option<FaultPlan>],
        drain: Duration,
    ) -> std::io::Result<ShardFleet> {
        let mut shards = Vec::new();
        for plan in plans {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let config = ServiceConfig {
                fault_plan: plan.clone(),
                fault_exit: false,
                ..base.clone()
            };
            let service = Service::start(config);
            let server = service.clone();
            let accept = std::thread::spawn(move || server.serve_tcp_with_drain(listener, drain));
            shards.push(FleetShard {
                addr,
                service,
                accept: Some(accept),
            });
        }
        Ok(ShardFleet {
            base: base.clone(),
            drain,
            shards,
        })
    }

    /// The shards' `host:port` addresses, in shard order.
    pub fn addrs(&self) -> Vec<String> {
        self.shards.iter().map(|s| s.addr.to_string()).collect()
    }

    /// Shard `i`'s service handle (e.g. to read its stats).
    pub fn service(&self, i: usize) -> &Service {
        &self.shards[i].service
    }

    /// Whether shard `i` has died to a `kill` fault.
    pub fn is_killed(&self, i: usize) -> bool {
        self.shards[i].service.fault_killed()
    }

    /// Restarts shard `i` on its original port with a fresh,
    /// fault-free service (a supervisor never re-runs the crash
    /// schedule). The old accept loop must already be stopping (killed
    /// or shut down); its listener is released when the thread exits,
    /// so the rebind retries briefly.
    ///
    /// # Errors
    ///
    /// Returns the last bind error if the port cannot be reacquired.
    pub fn restart(&mut self, i: usize) -> std::io::Result<()> {
        let shard = &mut self.shards[i];
        if let Some(handle) = shard.accept.take() {
            let _ = handle.join();
        }
        let mut last_err = None;
        for _ in 0..200 {
            match TcpListener::bind(shard.addr) {
                Ok(listener) => {
                    let config = ServiceConfig {
                        fault_plan: None,
                        fault_exit: false,
                        ..self.base.clone()
                    };
                    let service = Service::start(config);
                    let server = service.clone();
                    let drain = self.drain;
                    shard.service = service;
                    shard.accept = Some(std::thread::spawn(move || {
                        server.serve_tcp_with_drain(listener, drain)
                    }));
                    return Ok(());
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        Err(last_err.expect("bind retried at least once"))
    }

    /// Stops every shard (serving each a `shutdown` line) and joins
    /// the accept loops.
    pub fn shutdown(&mut self) {
        for shard in &mut self.shards {
            if let Some(handle) = shard.accept.take() {
                let _ = shard.service.handle_line("{\"type\":\"shutdown\"}");
                let _ = handle.join();
            }
        }
    }
}

impl Drop for ShardFleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_grammar_round_trips() {
        let spec = "delay:50@3;refuse@5;close:17@9;hang:1500@30;kill@40";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.events.len(), 5);
        assert_eq!(plan.render(), spec);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
        // Events come back sorted regardless of spec order.
        let shuffled = FaultPlan::parse("kill@40;delay:50@3").unwrap();
        assert_eq!(shuffled.events[0].at_request, 3);
        // Empty segments are tolerated (trailing semicolons).
        assert_eq!(FaultPlan::parse(";;").unwrap().events.len(), 0);
    }

    #[test]
    fn plan_parse_rejects_malformed_specs() {
        for (spec, needle) in [
            ("kill", "missing `@request-index`"),
            ("kill@zero", "not a request index"),
            ("kill@0", "1-based"),
            ("hang@3", "needs `:millis`"),
            ("close:many@3", "`bytes` must be an integer"),
            ("explode@3", "unknown fault kind"),
            ("kill:9@3", "takes no argument"),
            ("kill@3;delay:1@3", "share one request index"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(err.contains(needle), "`{spec}` gave `{err}`");
        }
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(7, 4, 50);
        let b = FaultPlan::seeded(7, 4, 50);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(8, 4, 50));
        assert_eq!(a.events.len(), 4);
        let mut seen = Vec::new();
        for event in &a.events {
            assert!((1..=50).contains(&event.at_request));
            assert!(
                !seen.contains(&event.at_request),
                "indices must be distinct"
            );
            seen.push(event.at_request);
        }
    }

    #[test]
    fn injector_fires_each_event_at_its_index_once() {
        let plan = FaultPlan::parse("delay:5@2;refuse@3;kill@4").unwrap();
        let injector = FaultInjector::new(plan, false);
        assert_eq!(injector.on_request(), FaultAction::None);
        assert_eq!(
            injector.on_request(),
            FaultAction::Delay(Duration::from_millis(5))
        );
        assert!(!injector.refusing());
        assert_eq!(injector.on_request(), FaultAction::None);
        assert!(injector.refusing(), "refuse latches on its index");
        assert!(!injector.killed());
        assert_eq!(injector.on_request(), FaultAction::Kill);
        assert!(injector.killed(), "kill latches");
        assert_eq!(injector.on_request(), FaultAction::None);
        assert_eq!(injector.served(), 5);
    }
}
