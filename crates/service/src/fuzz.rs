//! Seeded structured fuzzing for the daemon's line protocol.
//!
//! The `codar-fuzz` bin and the CI smoke gate are thin shells around
//! this module. Six grammar-aware generator/mutator families produce
//! corpus lines that sit *near* the grammar boundary (valid skeletons
//! with targeted corruptions), instead of random bytes the first token
//! check would reject:
//!
//! * [`Grammar::Protocol`] — NDJSON request frames (`route`, `stats`,
//!   `devices`, `calibration`, `shutdown`) mutated by field drops,
//!   type swaps, boundary numbers, unicode/surrogate injection,
//!   truncation and deep nesting. Route frames carry a `sim` mutator
//!   family: valid backend names and aliases, unknown names, wrong
//!   JSON types, and deliberate backend/circuit mismatches
//!   (`"stabilizer"` on a T-heavy circuit);
//! * [`Grammar::Qasm`] — valid OpenQASM 2 sources (from
//!   [`codar_qasm::generate`]) mutated by index perturbation, operand
//!   duplication and keyword corruption, embedded in `route` frames;
//! * [`Grammar::Calibration`] — valid snapshot documents (from
//!   [`CalibrationSnapshot::synthetic`]) mutated by version games,
//!   NaN/Inf/denormal injection and missing sections, embedded in
//!   `calibration set` frames;
//! * [`Grammar::Proxy`] — the sharded-tier surface: `health`/`metrics`
//!   frames with the usual mutations, and hashed-key boundary routes —
//!   the same circuit under different surface forms (whitespace,
//!   device case, an `id`) that must land on one shard, next to
//!   one-gate neighbors that must be free to land elsewhere. Valid
//!   against a bare daemon too, so every harness runs it;
//! * [`Grammar::Trace`] — the observability surface: requests carrying
//!   hostile `trace` ids (huge, empty, non-string, duplicated — only a
//!   *valid* id may ever be echoed), mutated `trace`-verb frames (the
//!   span-ring readback with boundary `n` values), and
//!   `metrics`/`hist` probes against the histogram fields;
//! * [`Grammar::Portfolio`] — the `auto` routing surface: recurring
//!   base circuits per (device, class) so explore→exploit transitions
//!   and win-table churn happen inside one corpus, the `portfolio`
//!   alias and case variants of `auto`, hostile `alpha` values
//!   (NaN/Inf/huge/wrong-typed — rejected at parse time, never allowed
//!   to poison the win table) and client-smuggled `chosen` fields (the
//!   winner is server-elected, never client-asserted).
//!
//! Every corpus is a pure function of `(seed, iterations, grammars)`
//! — two runs at equal seeds are byte-identical, so any crasher is
//! reproducible from its seed alone.
//!
//! [`InvariantChecker`] holds the contract the daemon must keep for
//! *every* line, hostile or not: exactly one single-line well-formed
//! JSON reply, `status` ∈ {`ok`, `error`, `overloaded`}, the request
//! `id` echoed exactly when recoverable, the request's **valid**
//! `trace` id echoed exactly (and invalid ones never echoed), and —
//! across interleaved `stats` probes — monotone counters and cache
//! occupancy within capacity; `metrics` histogram totals must stay
//! monotone too, with every bucket row summing to its total. An `ok` reply to a route that requested a simulation
//! backend must name the backend that actually ran (explicit requests
//! must not be silently substituted — no silent dense fallback).
//! [`minimize`] shrinks a violating line ddmin-style before
//! it is reported (and committed as a regression fixture).
//!
//! # Examples
//!
//! ```
//! use codar_service::fuzz::{generate_corpus, run_in_process, FuzzConfig};
//! use codar_service::{Service, ServiceConfig};
//!
//! let config = FuzzConfig { iterations: 64, ..FuzzConfig::default() };
//! let corpus = generate_corpus(&config);
//! assert_eq!(corpus, generate_corpus(&config)); // pure in the seed
//! let service = Service::start(ServiceConfig::default());
//! let report = run_in_process(&corpus, &service).expect("no invariant violations");
//! assert_eq!(report.lines, corpus.len());
//! ```

use crate::json::{escape, Json};
use crate::server::Service;
use codar_arch::{CalibrationSnapshot, Device};
use codar_engine::Backend;
use codar_qasm::generate::{random_source_with, GeneratorConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Seed used when the caller does not pick one.
pub const DEFAULT_SEED: u64 = 0xC0DA_F022;

/// The six corpus families. See the module docs for what each mutates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grammar {
    /// NDJSON protocol frames.
    Protocol,
    /// OpenQASM 2 sources inside `route` frames.
    Qasm,
    /// Calibration documents inside `calibration set` frames.
    Calibration,
    /// Sharded-tier frames: health/metrics mutations and hashed-key
    /// boundary routes.
    Proxy,
    /// Observability frames: hostile `trace` ids, `trace`-verb
    /// mutations and histogram-field probes.
    Trace,
    /// Portfolio (`auto`) route frames: recurring circuit classes,
    /// hostile alphas and client-smuggled `chosen` fields.
    Portfolio,
}

impl Grammar {
    /// All grammars, in generation order.
    pub const ALL: [Grammar; 6] = [
        Grammar::Protocol,
        Grammar::Qasm,
        Grammar::Calibration,
        Grammar::Proxy,
        Grammar::Trace,
        Grammar::Portfolio,
    ];

    /// The CLI name (`protocol` / `qasm` / `calibration` / `proxy` /
    /// `trace` / `portfolio`).
    pub fn name(self) -> &'static str {
        match self {
            Grammar::Protocol => "protocol",
            Grammar::Qasm => "qasm",
            Grammar::Calibration => "calibration",
            Grammar::Proxy => "proxy",
            Grammar::Trace => "trace",
            Grammar::Portfolio => "portfolio",
        }
    }

    /// Parses a CLI name; `all` is handled by the caller.
    pub fn parse(name: &str) -> Option<Grammar> {
        match name {
            "protocol" => Some(Grammar::Protocol),
            "qasm" => Some(Grammar::Qasm),
            "calibration" => Some(Grammar::Calibration),
            "proxy" => Some(Grammar::Proxy),
            "trace" => Some(Grammar::Trace),
            "portfolio" => Some(Grammar::Portfolio),
            _ => None,
        }
    }
}

/// What to generate. The corpus is a pure function of this struct.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; every derived choice flows from it.
    pub seed: u64,
    /// Corpus lines to generate (stats probes are injected *within*
    /// this budget, not on top of it).
    pub iterations: usize,
    /// Which families to draw from, round-robin.
    pub grammars: Vec<Grammar>,
    /// Inject a valid `stats` probe every N lines so the cache and
    /// counter invariants are actually observed mid-stream. 0 = never.
    pub stats_every: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: DEFAULT_SEED,
            iterations: 1000,
            grammars: Grammar::ALL.to_vec(),
            stats_every: 16,
        }
    }
}

/// A corpus line that broke the contract, with the shrunk repro.
#[derive(Debug, Clone)]
pub struct InvariantViolation {
    /// The exact line the daemon was fed.
    pub input: String,
    /// What the daemon replied (possibly empty on EOF).
    pub reply: String,
    /// Which invariant broke and how.
    pub message: String,
    /// 0-based index of the line within the corpus.
    pub index: usize,
}

/// Reply status counts, for the deterministic run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplyTally {
    /// `"status":"ok"` replies.
    pub ok: u64,
    /// `"status":"error"` replies.
    pub error: u64,
    /// `"status":"overloaded"` replies.
    pub overloaded: u64,
}

/// Summary of a completed (violation-free) fuzz run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzReport {
    /// Lines fed to the daemon.
    pub lines: usize,
    /// FNV-1a over every corpus line + `\n` — equal seeds must agree.
    pub corpus_fnv: u64,
    /// FNV-1a over every reply line + `\n`, each first passed through
    /// [`normalize_reply`]: what the daemon *decides* is byte-checked,
    /// what it *measures* (histogram sums/buckets, span clocks) is
    /// zeroed — measurements legitimately vary between equal runs.
    pub reply_fnv: u64,
    /// Per-status reply counts.
    pub tally: ReplyTally,
}

/// The id the daemon must echo for `line`: recoverable means the line
/// parses as JSON and carries a non-negative integral `"id"`. This
/// mirrors the server's own recovery rule exactly — both sides use the
/// same parser, so there is no second source of truth to drift.
pub fn expected_id(line: &str) -> Option<u64> {
    Json::parse(line)
        .ok()
        .as_ref()
        .and_then(|v| v.get("id"))
        .and_then(Json::as_u64)
}

/// The trace id the daemon must echo for `line`: a string `"trace"`
/// field that passes [`crate::trace::valid_trace_id`] (non-empty, at
/// most 128 bytes). Anything else — missing, wrong type, empty, or
/// oversized — must NOT be echoed. Mirrors the server's recovery rule
/// with the same parser, like [`expected_id`].
pub fn expected_trace(line: &str) -> Option<String> {
    Json::parse(line)
        .ok()
        .as_ref()
        .and_then(|v| v.get("trace"))
        .and_then(Json::as_str)
        .filter(|id| crate::trace::valid_trace_id(id))
        .map(str::to_string)
}

/// Zeroes every measurement field in a reply line before it is
/// hashed into [`FuzzReport::reply_fnv`]: span `t_us`/`dur_us`
/// clocks (via [`crate::trace::normalize_line`]), histogram `_sum_us`
/// sums, and `_buckets` rows (their *distribution* is timing-shaped
/// even when their total is deterministic). Every marker contains a
/// `"` — escaped payloads cannot fake one — so only genuine reply
/// fields are touched.
pub fn normalize_reply(line: &str) -> String {
    let out = crate::trace::normalize_line(line);
    let out = zero_digits_after(&out, "_sum_us\":");
    // Blank the bucket rows: `_buckets":"1,0,2"` → `_buckets":""`.
    let mut result = String::with_capacity(out.len());
    let mut rest = out.as_str();
    while let Some(at) = rest.find("_buckets\":\"") {
        let end = at + "_buckets\":\"".len();
        result.push_str(&rest[..end]);
        rest = &rest[end..];
        if let Some(close) = rest.find('"') {
            rest = &rest[close..];
        }
    }
    result.push_str(rest);
    result
}

/// Replaces the digit run after every occurrence of `marker` with `0`.
fn zero_digits_after(line: &str, marker: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find(marker) {
        let end = at + marker.len();
        out.push_str(&rest[..end]);
        rest = &rest[end..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 {
            out.push('0');
            rest = &rest[digits..];
        }
    }
    out.push_str(rest);
    out
}

/// One `stats` observation, for cross-probe monotonicity checks.
#[derive(Debug, Clone, Copy)]
struct StatsObservation {
    requests: u64,
    routed: u64,
    errors: u64,
    overloaded: u64,
    capacity: u64,
    shards: u64,
    entries: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl StatsObservation {
    fn parse(reply: &Json) -> Result<StatsObservation, String> {
        let field = |v: &Json, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("stats reply lacks integer `{key}`"))
        };
        let cache = reply
            .get("cache")
            .ok_or_else(|| "stats reply lacks `cache`".to_string())?;
        Ok(StatsObservation {
            requests: field(reply, "requests")?,
            routed: field(reply, "routed")?,
            errors: field(reply, "errors")?,
            overloaded: field(reply, "overloaded")?,
            capacity: field(cache, "capacity")?,
            shards: field(cache, "shards")?,
            entries: field(cache, "entries")?,
            hits: field(cache, "hits")?,
            misses: field(cache, "misses")?,
            evictions: field(cache, "evictions")?,
        })
    }
}

/// The per-line protocol contract, plus counter/cache invariants
/// observed across `stats` probes. One checker per daemon lifetime —
/// monotonicity state must reset when the process restarts.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    last: Option<StatsObservation>,
    /// Last-seen `hist_*_total` values from `metrics` replies, for the
    /// histogram monotonicity check.
    hist_totals: std::collections::HashMap<String, u64>,
    /// Running per-status reply counts.
    pub tally: ReplyTally,
}

impl InvariantChecker {
    /// A fresh checker with no stats history.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Checks one request/reply pair. On `Err` the message names the
    /// broken invariant; the caller owns minimization and reporting.
    ///
    /// # Errors
    ///
    /// Any broken invariant: empty or multi-line reply, malformed
    /// JSON, unknown status, id mismatch, or a `stats` reply whose
    /// counters regressed or whose cache overflowed its capacity.
    pub fn check(&mut self, input: &str, reply: &str) -> Result<(), String> {
        if reply.is_empty() {
            return Err("empty reply".to_string());
        }
        if reply.contains('\n') || reply.contains('\r') {
            return Err("reply spans multiple lines".to_string());
        }
        let parsed =
            Json::parse(reply).map_err(|e| format!("reply is not well-formed JSON: {e}"))?;
        let status = parsed
            .get("status")
            .and_then(Json::as_str)
            .ok_or_else(|| "reply lacks a string `status`".to_string())?;
        match status {
            "ok" => self.tally.ok += 1,
            "error" => self.tally.error += 1,
            "overloaded" => self.tally.overloaded += 1,
            other => return Err(format!("unknown status `{other}`")),
        }
        let expected = expected_id(input);
        let echoed = parsed.get("id").and_then(Json::as_u64);
        if echoed != expected {
            return Err(format!(
                "id mismatch: request carries {expected:?}, reply echoes {echoed:?}"
            ));
        }
        // The trace-echo rule: a valid client trace id comes back
        // verbatim, an invalid or absent one must never be invented.
        let expected_trace = expected_trace(input);
        let echoed_trace = parsed
            .get("trace")
            .and_then(Json::as_str)
            .map(str::to_string);
        if echoed_trace != expected_trace {
            return Err(format!(
                "trace mismatch: request carries {expected_trace:?}, reply echoes {echoed_trace:?}"
            ));
        }
        let reply_type = parsed.get("type").and_then(Json::as_str);
        // A `"proxy":true` stats reply is the front tier answering for
        // itself: its counters are retry/failover gauges with no cache
        // section, so the daemon cache invariants do not apply.
        let from_proxy = parsed.get("proxy").and_then(Json::as_bool) == Some(true);
        if status == "ok" && reply_type == Some("stats") && !from_proxy {
            self.observe_stats(&parsed)?;
        }
        if status == "ok" && reply_type == Some("metrics") {
            check_metrics_shape(&parsed)?;
            self.observe_histograms(&parsed)?;
        }
        if status == "ok" && reply_type == Some("health") {
            check_health_shape(&parsed)?;
        }
        if status == "ok" {
            check_sim_contract(input, &parsed)?;
        }
        Ok(())
    }

    fn observe_stats(&mut self, reply: &Json) -> Result<(), String> {
        let now = StatsObservation::parse(reply)?;
        if now.capacity > 0 && now.entries > now.capacity {
            return Err(format!(
                "cache holds {} entries over its capacity {}",
                now.entries, now.capacity
            ));
        }
        if now.requests < now.routed + now.errors + now.overloaded {
            return Err(format!(
                "counter accounting broken: requests {} < routed {} + errors {} + overloaded {}",
                now.requests, now.routed, now.errors, now.overloaded
            ));
        }
        if let Some(last) = self.last {
            let monotone: [(&str, u64, u64); 7] = [
                ("requests", last.requests, now.requests),
                ("routed", last.routed, now.routed),
                ("errors", last.errors, now.errors),
                ("overloaded", last.overloaded, now.overloaded),
                ("hits", last.hits, now.hits),
                ("misses", last.misses, now.misses),
                ("evictions", last.evictions, now.evictions),
            ];
            for (name, before, after) in monotone {
                if after < before {
                    return Err(format!(
                        "counter `{name}` went backwards: {before} -> {after}"
                    ));
                }
            }
            if last.capacity != now.capacity || last.shards != now.shards {
                return Err("cache geometry changed mid-run".to_string());
            }
            // Every cache probe is a request; probes cannot outnumber
            // the requests that happened between the two observations.
            if (now.hits - last.hits) + (now.misses - last.misses) > now.requests - last.requests {
                return Err("more cache probes than requests between stats probes".to_string());
            }
        }
        self.last = Some(now);
        Ok(())
    }

    /// The histogram contract on extended `metrics` replies: every
    /// `hist_<name>_total` is monotone across probes of one daemon,
    /// and its bucket row sums exactly to it (samples are recorded
    /// atomically: no lost or double-counted entries).
    fn observe_histograms(&mut self, reply: &Json) -> Result<(), String> {
        let Json::Obj(fields) = reply else {
            return Ok(());
        };
        for (key, value) in fields {
            let Some(name) = key
                .strip_prefix("hist_")
                .and_then(|k| k.strip_suffix("_total"))
            else {
                continue;
            };
            let total = value
                .as_u64()
                .ok_or_else(|| format!("histogram total `{key}` is not an integer"))?;
            if let Some(&before) = self.hist_totals.get(key) {
                if total < before {
                    return Err(format!(
                        "histogram total `{key}` went backwards: {before} -> {total}"
                    ));
                }
            }
            self.hist_totals.insert(key.clone(), total);
            let buckets_key = format!("hist_{name}_buckets");
            let Some(buckets) = reply.get(&buckets_key).and_then(Json::as_str) else {
                return Err(format!("`{key}` has no matching `{buckets_key}`"));
            };
            let mut sum = 0u64;
            for count in buckets.split(',') {
                sum += count
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("`{buckets_key}` holds a non-integer bucket `{count}`"))?;
            }
            if sum != total {
                return Err(format!(
                    "`{buckets_key}` buckets sum to {sum} but `{key}` says {total}"
                ));
            }
        }
        Ok(())
    }
}

/// The metrics-flatness contract: a `metrics` reply is the scrapeable
/// superset of `stats` and must stay **flat** — every top-level value
/// a scalar, with at least the `requests` counter present. (Daemon and
/// proxy metrics carry different gauges; flatness and a request count
/// are the shared shape.)
fn check_metrics_shape(reply: &Json) -> Result<(), String> {
    let Json::Obj(fields) = reply else {
        return Err("metrics reply is not an object".to_string());
    };
    for (key, value) in fields {
        if matches!(value, Json::Obj(_) | Json::Arr(_)) {
            return Err(format!("metrics field `{key}` is not flat"));
        }
    }
    if reply.get("requests").and_then(Json::as_u64).is_none() {
        return Err("metrics reply lacks integer `requests`".to_string());
    }
    Ok(())
}

/// The health-shape contract: a `health` reply must carry the two
/// booleans supervisors and the proxy's prober key off — `ready` and
/// `draining` — and they must never both be true.
fn check_health_shape(reply: &Json) -> Result<(), String> {
    let ready = reply
        .get("ready")
        .and_then(Json::as_bool)
        .ok_or_else(|| "health reply lacks boolean `ready`".to_string())?;
    let draining = reply
        .get("draining")
        .and_then(Json::as_bool)
        .ok_or_else(|| "health reply lacks boolean `draining`".to_string())?;
    if ready && draining {
        return Err("health reply claims ready while draining".to_string());
    }
    Ok(())
}

/// The no-silent-fallback contract: when a route request names a
/// recognizable simulation backend and the daemon answers `ok`, the
/// reply must say which backend ran — and an *explicit* request must
/// have run exactly that backend (a backend that cannot run the
/// circuit is an `error`, never a quiet substitution). Requests whose
/// `sim` value does not parse to a backend carry no obligation here:
/// they must already have been rejected (checked via `status`).
fn check_sim_contract(input: &str, reply: &Json) -> Result<(), String> {
    // Mirror the server's own recovery rule: same parser, same `get`.
    let Ok(request) = Json::parse(input) else {
        return Ok(());
    };
    if request.get("type").and_then(Json::as_str) != Some("route") {
        return Ok(());
    }
    let Some(requested) = request
        .get("sim")
        .and_then(Json::as_str)
        .and_then(Backend::parse)
    else {
        return Ok(());
    };
    let Some(ran) = reply.get("sim").and_then(Json::as_str) else {
        return Err(format!(
            "ok reply to a `sim`:`{}` route reports no backend (silent fallback)",
            requested.name()
        ));
    };
    let allowed: &[&str] = match requested {
        Backend::Auto => &["dense", "stabilizer", "sparse"],
        Backend::Dense => &["dense"],
        Backend::Stabilizer => &["stabilizer"],
        Backend::Sparse => &["sparse"],
    };
    if !allowed.contains(&ran) {
        return Err(format!(
            "route requested backend `{}` but the reply reports `{ran}` ran",
            requested.name()
        ));
    }
    Ok(())
}

/// The full corpus for `config`, in feed order. Pure in the config:
/// equal configs give byte-identical corpora, on any platform.
pub fn generate_corpus(config: &FuzzConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let grammars = if config.grammars.is_empty() {
        Grammar::ALL.to_vec()
    } else {
        config.grammars.clone()
    };
    let mut corpus = Vec::with_capacity(config.iterations);
    for i in 0..config.iterations {
        let line = if config.stats_every > 0 && i > 0 && i % config.stats_every == 0 {
            // An untouched probe: the invariants it observes must hold
            // regardless of the hostility around it.
            format!("{{\"type\":\"stats\",\"id\":{i}}}")
        } else {
            match grammars[i % grammars.len()] {
                Grammar::Protocol => protocol_line(&mut rng),
                Grammar::Qasm => qasm_line(&mut rng),
                Grammar::Calibration => calibration_line(&mut rng),
                Grammar::Proxy => proxy_line(&mut rng),
                Grammar::Trace => trace_line(&mut rng),
                Grammar::Portfolio => portfolio_line(&mut rng),
            }
        };
        // NDJSON: the transport splits on newlines, so a corpus line
        // containing one would silently become two requests. Blank
        // lines are skipped (not answered) by the stream server, so a
        // mutation that empties the line would desync an e2e replay.
        let line = line.replace(['\n', '\r'], " ");
        corpus.push(if line.trim().is_empty() {
            "{".to_string()
        } else {
            line
        });
    }
    corpus
}

/// Replays `corpus` against an in-process [`Service`], checking every
/// reply. `shutdown` lines only raise the flag — [`Service::handle_line`]
/// keeps answering, so one service instance survives the whole corpus.
///
/// # Errors
///
/// The first [`InvariantViolation`], input already minimized against a
/// *fresh* service (replay context can matter; the shrunk line is the
/// smallest that still fails from a clean start, or the original line
/// verbatim when the failure needs its stream prefix).
pub fn run_in_process(
    corpus: &[String],
    service: &Service,
) -> Result<FuzzReport, InvariantViolation> {
    let mut checker = InvariantChecker::new();
    let mut corpus_fnv = crate::cache::FNV_OFFSET;
    let mut reply_fnv = crate::cache::FNV_OFFSET;
    for (index, line) in corpus.iter().enumerate() {
        corpus_fnv = crate::cache::fnv1a_extend(corpus_fnv, line.as_bytes());
        corpus_fnv = crate::cache::fnv1a_extend(corpus_fnv, b"\n");
        let reply = service.handle_line(line);
        reply_fnv = crate::cache::fnv1a_extend(reply_fnv, normalize_reply(&reply).as_bytes());
        reply_fnv = crate::cache::fnv1a_extend(reply_fnv, b"\n");
        if let Err(message) = checker.check(line, &reply) {
            let config = service.config().clone();
            let input = minimize(line, |candidate| {
                let fresh = Service::start(config.clone());
                let reply = fresh.handle_line(candidate);
                InvariantChecker::new().check(candidate, &reply).is_err()
            });
            let reply = if input == *line {
                reply
            } else {
                Service::start(config).handle_line(&input)
            };
            return Err(InvariantViolation {
                input,
                reply,
                message,
                index,
            });
        }
    }
    Ok(FuzzReport {
        lines: corpus.len(),
        corpus_fnv,
        reply_fnv,
        tally: checker.tally,
    })
}

/// Shrinks `line` ddmin-style: repeatedly drops char chunks (halving
/// the chunk size down to single chars) while `still_fails` keeps
/// returning true. Returns `line` unchanged if it does not fail.
pub fn minimize(line: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    if !still_fails(line) {
        return line.to_string();
    }
    let mut current: Vec<char> = line.chars().collect();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < current.len() {
            let mut candidate = current.clone();
            candidate.drain(start..(start + chunk).min(candidate.len()));
            let text: String = candidate.iter().collect();
            if !text.is_empty() && still_fails(&text) {
                current = candidate;
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    current.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Protocol frames
// ---------------------------------------------------------------------------

/// An ordered JSON object under construction: keys with *raw* JSON
/// value text, so mutations can plant arbitrarily malformed values.
struct Frame {
    fields: Vec<(String, String)>,
}

impl Frame {
    fn new() -> Frame {
        Frame { fields: Vec::new() }
    }

    fn push(&mut self, key: &str, raw_value: impl Into<String>) {
        self.fields.push((key.to_string(), raw_value.into()));
    }

    fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(key));
            out.push(':');
            out.push_str(value);
        }
        out.push('}');
        out
    }
}

/// Hostile scalar replacements for type-swap mutations.
const SWAPPED_VALUES: &[&str] = &[
    "null",
    "true",
    "false",
    "[]",
    "{}",
    "[[\"x\"]]",
    "{\"a\":{\"b\":1}}",
    "\"1\"",
    "3.5",
    "\"\"",
];

/// Boundary numbers: sign, precision and range edges the JSON layer
/// and `as_u64` must classify correctly.
const BOUNDARY_NUMBERS: &[&str] = &[
    "-1",
    "0",
    "-0",
    "1.5",
    "1e308",
    "-1e308",
    "1e-320",
    "9007199254740993",
    "18446744073709551615",
    "18446744073709551616",
    "0.30000000000000004",
];

/// Hostile string payloads: NUL, lone surrogates (escaped — raw ones
/// cannot exist in a Rust `&str`), astral pairs, RTL controls, and a
/// long run to stress any fixed-size assumption.
fn hostile_string(rng: &mut StdRng) -> String {
    match rng.gen_range(0..7u32) {
        0 => "\"\\u0000\"".to_string(),
        1 => "\"\\ud800\"".to_string(),
        2 => "\"\\udc00\\ud800\"".to_string(),
        3 => "\"\\ud83d\\ude00\"".to_string(),
        4 => "\"\u{202e}drawkcab\u{202e}\"".to_string(),
        5 => format!("\"{}\"", "A".repeat(rng.gen_range(256..4096usize))),
        6 => "\"q20\\u0000\"".to_string(),
        _ => unreachable!(),
    }
}

/// A device name: usually a real preset, sometimes an alias-case or
/// near-miss so the catalog lookup path gets exercised too.
fn device_name(rng: &mut StdRng) -> String {
    let presets = Device::preset_names();
    match rng.gen_range(0..8u32) {
        0 => "Q20".to_string(),
        1 => "q21".to_string(),
        2 => String::new(),
        _ => presets[rng.gen_range(0..presets.len())].to_string(),
    }
}

/// The `sim` mutator family: raw JSON values for a route frame's
/// `sim` field. Valid names and aliases (any case), near-miss and
/// unknown names, and wrong JSON types — the parse layer must reject
/// the bad ones with a clean error, never panic or quietly ignore.
fn sim_value(rng: &mut StdRng) -> String {
    match rng.gen_range(0..10u32) {
        0 => "\"auto\"".to_string(),
        1 => "\"dense\"".to_string(),
        2 => "\"stabilizer\"".to_string(),
        3 => "\"sparse\"".to_string(),
        4 => ["\"statevector\"", "\"clifford\"", "\"AUTO\"", "\"Sparse\""]
            [rng.gen_range(0..4usize)]
        .to_string(),
        5 => [
            "\"gpu\"",
            "\"tensor-network\"",
            "\"chp\"",
            "\"\"",
            "\"auto \"",
            "\"den se\"",
        ][rng.gen_range(0..6usize)]
        .to_string(),
        6 => "null".to_string(),
        7 => SWAPPED_VALUES[rng.gen_range(0..SWAPPED_VALUES.len())].to_string(),
        8 => BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string(),
        9 => hostile_string(rng),
        _ => unreachable!(),
    }
}

/// A deliberately T-heavy circuit: a guaranteed backend/circuit
/// mismatch when paired with `"sim":"stabilizer"` — the daemon must
/// answer with a well-formed error, not fall back to dense.
const T_HEAVY_CIRCUIT: &str = "qreg q[3]; t q[0]; cx q[0], q[1]; t q[1]; cx q[1], q[2]; tdg q[2];";

/// A small valid circuit for route skeletons.
fn small_circuit(rng: &mut StdRng) -> String {
    let config = GeneratorConfig {
        max_qubits: 5,
        max_gates: 8,
        measure_probability: 0.3,
        header_probability: 0.8,
    };
    random_source_with(rng, &config)
}

/// A valid request frame of a random type, ids on roughly half.
fn valid_frame(rng: &mut StdRng) -> Frame {
    let mut frame = Frame::new();
    if rng.gen_bool(0.5) {
        frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
    }
    // Shutdown is deliberately rare: every served one costs the e2e
    // harness a daemon respawn.
    match rng.gen_range(0..20u32) {
        0..=8 => {
            frame.push("type", "\"route\"");
            frame.push("device", escape(&device_name(rng)));
            if rng.gen_bool(0.7) {
                let router = ["codar", "codar-cal", "sabre", "greedy"][rng.gen_range(0..4usize)];
                frame.push("router", escape(router));
                if router == "codar-cal" && rng.gen_bool(0.7) {
                    frame.push("alpha", format!("{:.3}", rng.gen::<f64>()));
                }
            }
            let sim = if rng.gen_bool(0.4) {
                Some(sim_value(rng))
            } else {
                None
            };
            // Half the Clifford-only-backend requests get a circuit
            // the backend *cannot* run: the mismatch must be a clean
            // error reply, and the contract checker would catch a
            // silent dense fallback.
            let mismatch = matches!(sim.as_deref(), Some("\"stabilizer\"" | "\"clifford\""))
                && rng.gen_bool(0.5);
            if let Some(sim) = sim {
                frame.push("sim", sim);
            }
            if mismatch {
                frame.push("circuit", escape(T_HEAVY_CIRCUIT));
            } else {
                frame.push("circuit", escape(&small_circuit(rng)));
            }
        }
        9..=10 => {
            frame.push("type", "\"stats\"");
        }
        11..=12 => {
            frame.push("type", "\"devices\"");
        }
        13..=14 => {
            frame.push("type", "\"calibration\"");
            frame.push("device", escape(&device_name(rng)));
            if rng.gen_bool(0.5) {
                frame.push("action", "\"get\"");
            } else {
                frame.push("action", "\"set\"");
                frame.push(
                    "synthetic",
                    format!(
                        "{{\"seed\":{},\"drift\":{}}}",
                        rng.gen_range(0..64u64),
                        rng.gen_range(0..4u64)
                    ),
                );
            }
        }
        15..=16 => {
            frame.push("type", "\"health\"");
        }
        17..=18 => {
            frame.push("type", "\"metrics\"");
        }
        _ => {
            frame.push("type", "\"shutdown\"");
        }
    }
    frame
}

/// Structural frame mutations (operate on the field list).
fn mutate_frame(frame: &mut Frame, rng: &mut StdRng) {
    if frame.fields.is_empty() {
        frame.push("junk", "null");
        return;
    }
    let i = rng.gen_range(0..frame.fields.len());
    match rng.gen_range(0..6u32) {
        // Drop a field — missing-required-field handling.
        0 => {
            frame.fields.remove(i);
        }
        // Swap a value's type.
        1 => {
            frame.fields[i].1 = SWAPPED_VALUES[rng.gen_range(0..SWAPPED_VALUES.len())].to_string();
        }
        // Plant a boundary number.
        2 => {
            frame.fields[i].1 =
                BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string();
        }
        // Plant a hostile string.
        3 => {
            frame.fields[i].1 = hostile_string(rng);
        }
        // Duplicate a key (last-wins vs first-wins must still echo
        // whatever the server's own parse recovers).
        4 => {
            let clone = frame.fields[i].clone();
            frame.fields.push(clone);
        }
        // Wrap the value in deep nesting.
        5 => {
            let depth = rng.gen_range(8..128usize);
            let value = frame.fields[i].1.clone();
            frame.fields[i].1 = format!("{}{}{}", "[".repeat(depth), value, "]".repeat(depth));
        }
        _ => unreachable!(),
    }
}

/// Text-level mutations (operate on the rendered line).
fn mutate_text(line: &mut String, rng: &mut StdRng) {
    match rng.gen_range(0..4u32) {
        // Truncate at a char boundary.
        0 => {
            if !line.is_empty() {
                let mut cut = rng.gen_range(0..line.len());
                while !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line.truncate(cut);
            }
        }
        // Trailing garbage after the close brace.
        1 => line.push_str(["}", "]", " {}", ",", "\u{0}"][rng.gen_range(0..5usize)]),
        // Leading whitespace and BOM-ish prefixes.
        2 => {
            *line = format!(
                "{}{line}",
                ["  ", "\t", "\u{feff}"][rng.gen_range(0..3usize)]
            )
        }
        // Splice a printable rune mid-line at a char boundary.
        3 => {
            if !line.is_empty() {
                let mut at = rng.gen_range(0..line.len());
                while !line.is_char_boundary(at) {
                    at -= 1;
                }
                let rune = ['"', '\\', '{', '\u{1f600}', ':'][rng.gen_range(0..5usize)];
                line.insert(at, rune);
            }
        }
        _ => unreachable!(),
    }
}

/// One protocol-grammar corpus line: a valid skeleton, 0–2 structural
/// mutations, sometimes a text-level one. Zero mutations is on purpose
/// — fully valid traffic keeps the ok-path invariants honest.
fn protocol_line(rng: &mut StdRng) -> String {
    let mut frame = valid_frame(rng);
    for _ in 0..rng.gen_range(0..=2u32) {
        mutate_frame(&mut frame, rng);
    }
    let mut line = frame.render();
    if rng.gen_bool(0.25) {
        mutate_text(&mut line, rng);
    }
    line
}

// ---------------------------------------------------------------------------
// Proxy frames
// ---------------------------------------------------------------------------

/// One proxy-grammar corpus line. Three sub-families:
///
/// * mutated `health`/`metrics` frames (the verbs the tier answers
///   itself — and the daemon answers too, so the line is valid
///   everywhere);
/// * **hashed-key boundary** routes: one base circuit emitted under a
///   surface form that must not change its rendezvous key — extra
///   whitespace, flipped device case, an added `id` — so a sharded
///   replay exercises the canonicalization seam of
///   `codar_service::proxy::shard_key`;
/// * one-gate neighbors of the base circuit, which *may* hash
///   elsewhere — the keyspace-splitting side of the same boundary.
fn proxy_line(rng: &mut StdRng) -> String {
    match rng.gen_range(0..8u32) {
        0..=2 => {
            let mut frame = Frame::new();
            if rng.gen_bool(0.5) {
                frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
            }
            frame.push(
                "type",
                if rng.gen_bool(0.5) {
                    "\"health\""
                } else {
                    "\"metrics\""
                },
            );
            for _ in 0..rng.gen_range(0..=2u32) {
                mutate_frame(&mut frame, rng);
            }
            let mut line = frame.render();
            if rng.gen_bool(0.2) {
                mutate_text(&mut line, rng);
            }
            line
        }
        3..=5 => {
            // The boundary family reuses a small deterministic pool of
            // base circuits so surface variants of the *same* circuit
            // actually recur within one corpus.
            let base = [
                "qreg q[3]; h q[0]; cx q[0], q[2];",
                "qreg q[4]; cx q[0], q[3]; cx q[1], q[2]; h q[3];",
                "qreg q[2]; h q[0]; h q[1]; cx q[0], q[1];",
            ][rng.gen_range(0..3usize)];
            let circuit = match rng.gen_range(0..3u32) {
                // Whitespace-only variant: same canonical form.
                0 => base.replace("; ", ";   ").replace(", ", " , "),
                // One-gate neighbor: a genuinely different circuit.
                1 => format!("{base} h q[1];"),
                _ => base.to_string(),
            };
            let device = if rng.gen_bool(0.3) { "Q20" } else { "q20" };
            let mut frame = Frame::new();
            if rng.gen_bool(0.4) {
                frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
            }
            frame.push("type", "\"route\"");
            frame.push("device", escape(device));
            frame.push("circuit", escape(&circuit));
            frame.render()
        }
        6 => {
            // Boundary ids on the locally-answered verbs.
            let verb = ["\"stats\"", "\"health\"", "\"metrics\""][rng.gen_range(0..3usize)];
            let mut frame = Frame::new();
            frame.push(
                "id",
                BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string(),
            );
            frame.push("type", verb);
            frame.render()
        }
        _ => {
            // Calibration-get through the tier (forwarded verbatim).
            let mut frame = Frame::new();
            if rng.gen_bool(0.5) {
                frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
            }
            frame.push("type", "\"calibration\"");
            frame.push("action", "\"get\"");
            frame.push("device", escape(&device_name(rng)));
            frame.render()
        }
    }
}

// ---------------------------------------------------------------------------
// Trace frames
// ---------------------------------------------------------------------------

/// A raw JSON value for a request's `trace` field. Valid ids (which
/// must come back verbatim) sit next to every way an id can be
/// invalid: empty, oversized (the cap is 128 bytes — both sides of it
/// appear), wrong JSON type, hostile string content.
fn trace_value(rng: &mut StdRng) -> String {
    match rng.gen_range(0..9u32) {
        // Valid client ids, including ones squatting the daemon's and
        // the proxy's mint namespaces (`t-N` / `p-N`).
        0 => escape(&format!("req-{}", rng.gen_range(0..1000u64))),
        1 => escape(&format!("t-{}", rng.gen_range(0..1000u64))),
        2 => escape(&format!("p-{}", rng.gen_range(0..1000u64))),
        // Exactly around the 128-byte validity cap.
        3 => format!("\"{}\"", "x".repeat(rng.gen_range(120..=136usize))),
        // Empty and huge: both invalid, must never be echoed.
        4 => "\"\"".to_string(),
        5 => format!("\"{}\"", "T".repeat(rng.gen_range(256..4096usize))),
        // Wrong types and boundary numbers.
        6 => SWAPPED_VALUES[rng.gen_range(0..SWAPPED_VALUES.len())].to_string(),
        7 => BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string(),
        8 => hostile_string(rng),
        _ => unreachable!(),
    }
}

/// One portfolio-grammar corpus line. Route frames under `"auto"`
/// (plus its `portfolio` alias and case variants) built from a small
/// recurring circuit pool, so the same (device, circuit-class) pair
/// reappears across one corpus and the win table actually transitions
/// from explore to exploit mid-run. Sub-families:
///
/// * clean `auto` routes — the cached/exploited replies must stay
///   byte-stable under the invariant checker's monotone-counter eye;
/// * hostile `alpha` values (NaN/Inf/denormal/huge/wrong-typed) that
///   must be rejected at parse time and never reach the win table;
/// * a client-smuggled `chosen` field — the winner is server-elected,
///   a spoofed label must not leak into the reply or the cache key;
/// * the usual frame/text mutations on top.
fn portfolio_line(rng: &mut StdRng) -> String {
    let base = [
        "qreg q[3]; h q[0]; cx q[0], q[2];",
        "qreg q[4]; cx q[0], q[3]; cx q[1], q[2]; h q[3];",
        "qreg q[5]; h q[0]; cx q[0], q[4]; cx q[1], q[3];",
    ][rng.gen_range(0..3usize)];
    let device = ["q5", "q20", "q16"][rng.gen_range(0..3usize)];
    let router = match rng.gen_range(0..8u32) {
        0 => "\"portfolio\"",
        1 => "\"AUTO\"",
        2 => "\"Auto\"",
        3 => "\"auto \"",
        _ => "\"auto\"",
    };
    let mut frame = Frame::new();
    if rng.gen_bool(0.5) {
        frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
    }
    frame.push("type", "\"route\"");
    frame.push("device", escape(device));
    frame.push("router", router);
    match rng.gen_range(0..6u32) {
        0 => frame.push("alpha", "0.5"),
        1 => frame.push("alpha", "0.25"),
        2 => {
            let hostile = [
                "NaN", "-1.0", "1e308", "-0.0", "5e-324", "\"0.5\"", "[0.5]", "null",
            ];
            frame.push("alpha", hostile[rng.gen_range(0..hostile.len())]);
        }
        3 => {
            let smuggled = ["\"sabre\"", "\"codar\"", "\"nonsense\"", "42"];
            frame.push("chosen", smuggled[rng.gen_range(0..smuggled.len())]);
        }
        _ => {}
    }
    frame.push("circuit", escape(base));
    for _ in 0..rng.gen_range(0..=1u32) {
        mutate_frame(&mut frame, rng);
    }
    let mut line = frame.render();
    if rng.gen_bool(0.15) {
        mutate_text(&mut line, rng);
    }
    line
}

/// One trace-grammar corpus line. Three sub-families:
///
/// * ordinary verbs carrying a hostile `trace` field (sometimes
///   duplicated — last-wins vs first-wins must match the server's own
///   parse, the echo mirror catches any drift);
/// * `trace`-verb frames with boundary `n` values (the span-ring
///   readback must clamp, not crash or allocate unboundedly);
/// * `metrics` frames probing the `hist` switch with non-boolean
///   values — the histogram fields are opt-in and the opt-in must not
///   be spoofable into a malformed reply.
fn trace_line(rng: &mut StdRng) -> String {
    let mut frame = Frame::new();
    if rng.gen_bool(0.5) {
        frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
    }
    match rng.gen_range(0..8u32) {
        0..=3 => {
            // A traced ordinary request: route keeps the trace id on
            // the longest path (queue, worker, cache), the probe verbs
            // answer inline.
            match rng.gen_range(0..4u32) {
                0 => {
                    frame.push("type", "\"route\"");
                    frame.push("trace", trace_value(rng));
                    frame.push("device", escape(&device_name(rng)));
                    frame.push("circuit", escape(&small_circuit(rng)));
                }
                1 => {
                    frame.push("type", "\"stats\"");
                    frame.push("trace", trace_value(rng));
                }
                2 => {
                    frame.push("type", "\"health\"");
                    frame.push("trace", trace_value(rng));
                }
                _ => {
                    frame.push("type", "\"metrics\"");
                    frame.push("trace", trace_value(rng));
                    if rng.gen_bool(0.5) {
                        frame.push("hist", "true");
                    }
                }
            }
            if rng.gen_bool(0.25) {
                // Duplicate the trace key, possibly with a different
                // value: whatever the parser recovers is what must be
                // echoed — the mirror uses the same parser.
                frame.push("trace", trace_value(rng));
            }
        }
        4..=5 => {
            frame.push("type", "\"trace\"");
            match rng.gen_range(0..4u32) {
                0 => frame.push("n", rng.gen_range(0..64u64).to_string()),
                1 => frame.push(
                    "n",
                    BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string(),
                ),
                2 => frame.push(
                    "n",
                    SWAPPED_VALUES[rng.gen_range(0..SWAPPED_VALUES.len())].to_string(),
                ),
                _ => {} // no n: the default window
            }
            if rng.gen_bool(0.3) {
                frame.push("trace", trace_value(rng));
            }
        }
        6..=7 => {
            frame.push("type", "\"metrics\"");
            frame.push(
                "hist",
                match rng.gen_range(0..4u32) {
                    0 => "true".to_string(),
                    1 => "false".to_string(),
                    2 => SWAPPED_VALUES[rng.gen_range(0..SWAPPED_VALUES.len())].to_string(),
                    _ => BOUNDARY_NUMBERS[rng.gen_range(0..BOUNDARY_NUMBERS.len())].to_string(),
                },
            );
        }
        _ => unreachable!(),
    }
    let mut line = frame.render();
    if rng.gen_bool(0.15) {
        mutate_text(&mut line, rng);
    }
    line
}

// ---------------------------------------------------------------------------
// QASM sources
// ---------------------------------------------------------------------------

/// Replaces the `index`-th occurrence of `needle` (if any).
fn replace_nth(text: &str, needle: &str, replacement: &str, index: usize) -> String {
    let mut seen = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find(needle) {
        let at = from + at;
        if seen == index {
            let mut out = String::with_capacity(text.len());
            out.push_str(&text[..at]);
            out.push_str(replacement);
            out.push_str(&text[at + needle.len()..]);
            return out;
        }
        seen += 1;
        from = at + needle.len();
    }
    text.to_string()
}

/// Source-level QASM mutations: each targets a distinct analyzer layer
/// (lexer, parser, semantic bounds, broadcast rules).
fn mutate_qasm(source: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..7u32) {
        // Index perturbation: out-of-range, negative, empty, huge.
        0 => {
            let hostile = ["999999", "-1", "", "18446744073709551616"][rng.gen_range(0..4usize)];
            let opens = source.matches("q[").count();
            if opens == 0 {
                return source.to_string();
            }
            let target = rng.gen_range(0..opens);
            // Rewrite `q[<digits>` at the target occurrence.
            let mut seen = 0;
            let mut out = String::with_capacity(source.len());
            let mut rest = source;
            while let Some(at) = rest.find("q[") {
                out.push_str(&rest[..at + 2]);
                rest = &rest[at + 2..];
                if seen == target {
                    let digits = rest.chars().take_while(char::is_ascii_digit).count();
                    out.push_str(hostile);
                    rest = &rest[digits..];
                }
                seen += 1;
            }
            out.push_str(rest);
            out
        }
        // Operand duplication: `cx q[a], q[a]` must be rejected
        // semantically, not crash the router.
        1 => {
            if let Some(at) = source.find(", q[") {
                let operand_start = source[..at].rfind("q[").unwrap_or(at);
                let operand = &source[operand_start..at];
                let close = source[at + 2..].find(']').map(|c| at + 2 + c + 1);
                match close {
                    Some(close) => format!("{}, {}{}", &source[..at], operand, &source[close..]),
                    None => source.to_string(),
                }
            } else {
                source.to_string()
            }
        }
        // Keyword corruption.
        2 => {
            let (from, to) = [
                ("qreg", "qeg"),
                ("creg", "cregg"),
                ("measure", "measrue"),
                ("OPENQASM", "OPENQSM"),
                ("include", "inclde"),
                ("qelib1.inc", "qelib9.inc"),
            ][rng.gen_range(0..6usize)];
            replace_nth(source, from, to, 0)
        }
        // Statement terminator loss.
        3 => replace_nth(source, ";", "", rng.gen_range(0..4usize)),
        // Truncation at a char boundary.
        4 => {
            let mut cut = rng.gen_range(0..source.len().max(1)).min(source.len());
            while !source.is_char_boundary(cut) {
                cut -= 1;
            }
            source[..cut].to_string()
        }
        // Unicode/control injection into the token stream.
        5 => replace_nth(
            source,
            " ",
            ["\u{0}", "\u{202e}", "\u{1f600}"][rng.gen_range(0..3usize)],
            0,
        ),
        // Register renamed at declaration only — every use dangles.
        6 => replace_nth(source, "qreg q[", "qreg r[", 0),
        _ => unreachable!(),
    }
}

/// One QASM-grammar corpus line: a valid generated source, usually
/// mutated, wrapped in an otherwise-valid `route` frame.
fn qasm_line(rng: &mut StdRng) -> String {
    let mut source = small_circuit(rng);
    for _ in 0..rng.gen_range(0..=2u32) {
        source = mutate_qasm(&source, rng);
    }
    let mut frame = Frame::new();
    if rng.gen_bool(0.5) {
        frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
    }
    frame.push("type", "\"route\"");
    frame.push("device", escape(&device_name(rng)));
    if rng.gen_bool(0.25) {
        // Mutated sources against simulation backends: whatever the
        // mutation did, a requested backend either runs or errors.
        frame.push("sim", sim_value(rng));
    }
    frame.push("circuit", escape(&source));
    frame.render()
}

// ---------------------------------------------------------------------------
// Calibration documents
// ---------------------------------------------------------------------------

/// Document-level calibration mutations: version games, non-finite and
/// denormal numbers, missing sections, device mismatches.
fn mutate_calibration(document: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..8u32) {
        // Version games: zero, huge — the high-water check's edges.
        0 => replace_nth(document, "\"version\":", "\"version\":0,\"was\":", 0),
        1 => replace_nth(
            document,
            "\"version\":",
            "\"version\":18446744073709551615,\"was\":",
            0,
        ),
        // Non-finite and denormal numerics where errors live.
        2 => replace_nth(document, "\"error\":0.", "\"error\":NaN,\"x\":0.", 0),
        3 => replace_nth(document, "\"error\":0.", "\"error\":1e999,\"x\":0.", 0),
        4 => replace_nth(document, "\"error\":0.", "\"error\":1e-320,\"x\":0.", 0),
        // Missing sections.
        5 => replace_nth(document, "\"qubits\":", "\"qbits\":", 0),
        6 => replace_nth(document, "\"edges\":", "\"edgs\":", 0),
        // Device mismatch against the frame's device.
        7 => replace_nth(document, "\"device\":\"", "\"device\":\"not-", 0),
        _ => unreachable!(),
    }
}

/// One calibration-grammar corpus line: a genuine synthetic snapshot
/// (version occasionally restamped), usually mutated, sent as a
/// `calibration set` document.
fn calibration_line(rng: &mut StdRng) -> String {
    let presets = Device::preset_names();
    let name = presets[rng.gen_range(0..presets.len())];
    let device = Device::by_name(name).expect("preset names resolve");
    let mut snapshot = CalibrationSnapshot::synthetic(&device, rng.gen_range(0..64u64));
    if rng.gen_bool(0.3) {
        // Replay/stale/future versions against the high-water mark.
        snapshot = snapshot.with_version(rng.gen_range(0..5u64));
    }
    let mut document = snapshot.to_json();
    for _ in 0..rng.gen_range(0..=2u32) {
        document = mutate_calibration(&document, rng);
    }
    let mut frame = Frame::new();
    if rng.gen_bool(0.5) {
        frame.push("id", rng.gen_range(0..1_000_000u64).to_string());
    }
    frame.push("type", "\"calibration\"");
    frame.push("action", "\"set\"");
    frame.push("device", escape(name));
    frame.push("snapshot", escape(&document));
    let mut line = frame.render();
    if rng.gen_bool(0.15) {
        mutate_text(&mut line, rng);
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServiceConfig;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let config = FuzzConfig {
            iterations: 400,
            ..FuzzConfig::default()
        };
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a, b, "same seed must give a byte-identical corpus");
        let other = generate_corpus(&FuzzConfig { seed: 1, ..config });
        assert_ne!(a, other, "different seeds must actually vary the corpus");
    }

    #[test]
    fn corpus_lines_are_single_line() {
        let config = FuzzConfig {
            iterations: 600,
            ..FuzzConfig::default()
        };
        for line in generate_corpus(&config) {
            assert!(!line.contains('\n') && !line.contains('\r'), "{line:?}");
        }
    }

    #[test]
    fn single_grammar_configs_stay_in_family() {
        // Calibration-only corpora must be calibration frames (stats
        // probes excepted); qasm-only corpora must be route frames.
        let config = FuzzConfig {
            iterations: 120,
            grammars: vec![Grammar::Calibration],
            stats_every: 0,
            ..FuzzConfig::default()
        };
        for line in generate_corpus(&config) {
            assert!(line.contains("\"calibration\""), "{line}");
        }
        let config = FuzzConfig {
            iterations: 120,
            grammars: vec![Grammar::Qasm],
            stats_every: 0,
            ..FuzzConfig::default()
        };
        for line in generate_corpus(&config) {
            assert!(line.contains("\"route\""), "{line}");
        }
    }

    #[test]
    fn in_process_run_holds_all_invariants() {
        let config = FuzzConfig {
            iterations: 500,
            ..FuzzConfig::default()
        };
        let corpus = generate_corpus(&config);
        let service = Service::start(ServiceConfig {
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        let report = run_in_process(&corpus, &service).unwrap_or_else(|v| {
            panic!(
                "violation at line {}: {} on {:?}",
                v.index, v.message, v.input
            )
        });
        assert_eq!(report.lines, 500);
        assert!(report.tally.ok > 0, "some corpus lines must succeed");
        assert!(report.tally.error > 0, "some corpus lines must be rejected");
    }

    #[test]
    fn reports_are_reproducible() {
        let config = FuzzConfig {
            iterations: 200,
            ..FuzzConfig::default()
        };
        let corpus = generate_corpus(&config);
        let run = |corpus: &[String]| {
            let service = Service::start(ServiceConfig::default());
            run_in_process(corpus, &service).expect("clean run")
        };
        let (a, b) = (run(&corpus), run(&corpus));
        assert_eq!(a.corpus_fnv, b.corpus_fnv);
        // Cache-transparency makes even the replies byte-stable.
        assert_eq!(a.reply_fnv, b.reply_fnv);
        assert_eq!(a.tally, b.tally);
    }

    #[test]
    fn checker_flags_each_contract_break() {
        let cases = [
            ("{}", "", "empty reply"),
            (
                "{}",
                "{\"status\":\"ok\"}\n{\"status\":\"ok\"}",
                "multiple lines",
            ),
            ("{}", "{\"status\":\"ok\"", "well-formed"),
            ("{}", "{\"status\":\"busy\"}", "unknown status"),
            (
                "{\"id\":3,\"type\":\"stats\"}",
                "{\"status\":\"ok\"}",
                "id mismatch",
            ),
            ("{}", "{\"id\":3,\"status\":\"ok\"}", "id mismatch"),
        ];
        for (input, reply, needle) in cases {
            let err = InvariantChecker::new()
                .check(input, reply)
                .expect_err(reply);
            assert!(err.contains(needle), "`{reply}` gave `{err}`");
        }
        InvariantChecker::new()
            .check("{\"id\":3}", "{\"id\":3,\"status\":\"error\"}")
            .expect("matched ids pass");
    }

    #[test]
    fn sim_family_appears_and_holds_the_contract() {
        // The sim mutators live in the protocol and qasm families;
        // pinning the grammars keeps the mismatch-line probe stable as
        // more families join the default rotation.
        let config = FuzzConfig {
            iterations: 800,
            grammars: vec![Grammar::Protocol, Grammar::Qasm],
            ..FuzzConfig::default()
        };
        let corpus = generate_corpus(&config);
        let with_sim = corpus.iter().filter(|l| l.contains("\"sim\"")).count();
        assert!(with_sim >= 20, "only {with_sim} sim lines in 800");
        assert!(
            corpus
                .iter()
                .any(|l| l.contains("\"sim\":\"stabilizer\"") && l.contains("t q[0]")),
            "no stabilizer/T-heavy mismatch line generated"
        );
        let service = Service::start(ServiceConfig::default());
        let report = run_in_process(&corpus, &service).unwrap_or_else(|v| {
            panic!(
                "violation at line {}: {} on {:?}",
                v.index, v.message, v.input
            )
        });
        assert_eq!(report.lines, 800);
    }

    #[test]
    fn checker_rejects_silent_sim_fallback() {
        let route = "{\"type\":\"route\",\"device\":\"q5\",\"sim\":\"stabilizer\",\
                     \"circuit\":\"qreg q[2];\"}";
        // ok without reporting a backend: silent fallback.
        let err = InvariantChecker::new()
            .check(route, "{\"status\":\"ok\",\"qasm\":\"\"}")
            .expect_err("missing sim field must fail");
        assert!(err.contains("silent fallback"), "{err}");
        // ok reporting a *different* backend than the explicit request.
        let err = InvariantChecker::new()
            .check(route, "{\"status\":\"ok\",\"sim\":\"dense\",\"qasm\":\"\"}")
            .expect_err("substituted backend must fail");
        assert!(err.contains("reports `dense`"), "{err}");
        // The honest replies pass: exact match, or any backend for auto.
        InvariantChecker::new()
            .check(
                route,
                "{\"status\":\"ok\",\"sim\":\"stabilizer\",\"qasm\":\"\"}",
            )
            .expect("matching backend passes");
        let auto = route.replace("stabilizer", "auto");
        InvariantChecker::new()
            .check(
                &auto,
                "{\"status\":\"ok\",\"sim\":\"sparse\",\"qasm\":\"\"}",
            )
            .expect("auto may resolve to any backend");
        // Error replies carry no obligation; nor do sim-less routes.
        InvariantChecker::new()
            .check(route, "{\"status\":\"error\",\"error\":\"x\"}")
            .expect("error replies are fine");
    }

    #[test]
    fn proxy_family_covers_the_tier_surface_and_holds_invariants() {
        let config = FuzzConfig {
            iterations: 300,
            grammars: vec![Grammar::Proxy],
            stats_every: 16,
            ..FuzzConfig::default()
        };
        let corpus = generate_corpus(&config);
        assert!(corpus.iter().any(|l| l.contains("\"health\"")));
        assert!(corpus.iter().any(|l| l.contains("\"metrics\"")));
        // Both sides of the hashed-key boundary appear: a surface
        // variant (same canonical circuit) and a one-gate neighbor.
        assert!(
            corpus.iter().any(|l| l.contains(";   ")),
            "no whitespace variant generated"
        );
        assert!(
            corpus.iter().any(|l| l.contains("cx q[0], q[2]; h q[1];")),
            "no one-gate neighbor generated"
        );
        // The family is valid against a bare daemon too.
        let service = Service::start(ServiceConfig::default());
        let report = run_in_process(&corpus, &service).unwrap_or_else(|v| {
            panic!(
                "violation at line {}: {} on {:?}",
                v.index, v.message, v.input
            )
        });
        assert_eq!(report.lines, 300);
        assert!(report.tally.ok > 0);
    }

    #[test]
    fn checker_skips_cache_invariants_on_proxy_stats() {
        // A proxy stats reply has no cache section; the checker must
        // accept it rather than demand daemon-shaped counters.
        let mut checker = InvariantChecker::new();
        checker
            .check(
                "{\"type\":\"stats\"}",
                "{\"type\":\"stats\",\"status\":\"ok\",\"proxy\":true,\"requests\":4,\
                 \"forwarded\":3,\"retries\":1,\"failovers\":1,\"overloaded\":0,\
                 \"backends_alive\":2,\"backends_total\":3}",
            )
            .expect("proxy stats pass without a cache section");
        // The same reply without the proxy marker must fail — a daemon
        // stats reply that lost its cache section is a real bug.
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"stats\"}",
                "{\"type\":\"stats\",\"status\":\"ok\",\"requests\":4,\"routed\":3,\
                 \"errors\":1,\"overloaded\":0}",
            )
            .expect_err("daemon stats without cache must fail");
        assert!(err.contains("cache"), "{err}");
    }

    #[test]
    fn checker_enforces_metrics_flatness_and_health_shape() {
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"metrics\"}",
                "{\"type\":\"metrics\",\"status\":\"ok\",\"requests\":1,\
                 \"cache\":{\"hits\":0}}",
            )
            .expect_err("nested metrics must fail");
        assert!(err.contains("not flat"), "{err}");
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"metrics\"}",
                "{\"type\":\"metrics\",\"status\":\"ok\",\"draining\":false}",
            )
            .expect_err("metrics without requests must fail");
        assert!(err.contains("requests"), "{err}");
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"health\"}",
                "{\"type\":\"health\",\"status\":\"ok\",\"ready\":true}",
            )
            .expect_err("health without draining must fail");
        assert!(err.contains("draining"), "{err}");
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"health\"}",
                "{\"type\":\"health\",\"status\":\"ok\",\"ready\":true,\"draining\":true}",
            )
            .expect_err("ready while draining must fail");
        assert!(err.contains("ready while draining"), "{err}");
        InvariantChecker::new()
            .check(
                "{\"type\":\"health\"}",
                "{\"type\":\"health\",\"status\":\"ok\",\"ready\":false,\"draining\":true}",
            )
            .expect("a draining daemon is honestly unready");
    }

    #[test]
    fn checker_flags_counter_regressions() {
        let stats = |requests: u64, hits: u64| {
            format!(
                "{{\"type\":\"stats\",\"status\":\"ok\",\"requests\":{requests},\"routed\":0,\
                 \"errors\":0,\"overloaded\":0,\"cache\":{{\"capacity\":4,\"shards\":1,\
                 \"entries\":0,\"hits\":{hits},\"misses\":0,\"evictions\":0}}}}"
            )
        };
        let mut checker = InvariantChecker::new();
        checker.check("{}", &stats(5, 2)).expect("first probe");
        let err = checker.check("{}", &stats(4, 2)).expect_err("regressed");
        assert!(err.contains("went backwards"), "{err}");
        let mut checker = InvariantChecker::new();
        checker.check("{}", &stats(5, 2)).expect("first probe");
        let err = checker
            .check("{}", &stats(6, 9))
            .expect_err("more probes than requests");
        assert!(err.contains("probes"), "{err}");
    }

    #[test]
    fn trace_family_covers_the_surface_and_holds_invariants() {
        let config = FuzzConfig {
            iterations: 400,
            grammars: vec![Grammar::Trace],
            stats_every: 16,
            ..FuzzConfig::default()
        };
        let corpus = generate_corpus(&config);
        assert!(corpus.iter().any(|l| l.contains("\"trace\":\"req-")));
        assert!(
            corpus.iter().any(|l| l.contains("\"trace\":\"\"")),
            "no empty trace id generated"
        );
        assert!(
            corpus.iter().any(|l| l.contains(&"T".repeat(256))),
            "no oversized trace id generated"
        );
        assert!(
            corpus.iter().any(|l| l.matches("\"trace\":").count() >= 2),
            "no duplicated trace key generated"
        );
        assert!(corpus.iter().any(|l| l.contains("\"type\":\"trace\"")));
        assert!(corpus.iter().any(|l| l.contains("\"hist\":true")));
        let service = Service::start(ServiceConfig::default());
        let report = run_in_process(&corpus, &service).unwrap_or_else(|v| {
            panic!(
                "violation at line {}: {} on {:?}",
                v.index, v.message, v.input
            )
        });
        assert_eq!(report.lines, 400);
        assert!(report.tally.ok > 0);
    }

    #[test]
    fn expected_trace_mirrors_the_validity_rule() {
        assert_eq!(
            expected_trace("{\"type\":\"stats\",\"trace\":\"abc\"}"),
            Some("abc".to_string())
        );
        // Invalid ids carry no echo obligation — and must not be echoed.
        assert_eq!(expected_trace("{\"type\":\"stats\",\"trace\":\"\"}"), None);
        assert_eq!(expected_trace("{\"type\":\"stats\",\"trace\":7}"), None);
        let oversized = format!("{{\"trace\":\"{}\"}}", "x".repeat(129));
        assert_eq!(expected_trace(&oversized), None);
        let max = format!("{{\"trace\":\"{}\"}}", "x".repeat(128));
        assert_eq!(expected_trace(&max), Some("x".repeat(128)));
        assert_eq!(expected_trace("not json"), None);
    }

    #[test]
    fn checker_enforces_the_trace_echo() {
        // A valid trace id must come back verbatim...
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"stats\",\"trace\":\"abc\"}",
                "{\"type\":\"stats\",\"status\":\"ok\",\"proxy\":true,\"requests\":1,\
                 \"forwarded\":0,\"retries\":0,\"failovers\":0,\"overloaded\":0,\
                 \"backends_alive\":1,\"backends_total\":1}",
            )
            .expect_err("swallowed trace id must fail");
        assert!(err.contains("trace mismatch"), "{err}");
        // ...an invalid one must never be invented into the reply...
        let err = InvariantChecker::new()
            .check(
                "{\"type\":\"health\",\"trace\":\"\"}",
                "{\"trace\":\"\",\"type\":\"health\",\"status\":\"ok\",\
                 \"ready\":true,\"draining\":false}",
            )
            .expect_err("echoed invalid trace must fail");
        assert!(err.contains("trace mismatch"), "{err}");
        // ...and the honest echo passes.
        InvariantChecker::new()
            .check(
                "{\"type\":\"health\",\"trace\":\"abc\"}",
                "{\"trace\":\"abc\",\"type\":\"health\",\"status\":\"ok\",\
                 \"ready\":true,\"draining\":false}",
            )
            .expect("exact echo passes");
    }

    #[test]
    fn checker_enforces_histogram_monotonicity_and_bucket_sums() {
        let metrics = |total: u64, buckets: &str| {
            format!(
                "{{\"type\":\"metrics\",\"status\":\"ok\",\"requests\":1,\
                 \"hist_route_total\":{total},\"hist_route_sum_us\":10,\
                 \"hist_route_buckets\":\"{buckets}\"}}"
            )
        };
        // Buckets must sum to the total.
        let err = InvariantChecker::new()
            .check("{\"type\":\"metrics\"}", &metrics(3, "1,1,0"))
            .expect_err("bucket undercount must fail");
        assert!(err.contains("sum to 2"), "{err}");
        // Totals must not regress between probes of one daemon.
        let mut checker = InvariantChecker::new();
        checker
            .check("{\"type\":\"metrics\"}", &metrics(3, "1,1,1"))
            .expect("first probe");
        let err = checker
            .check("{\"type\":\"metrics\"}", &metrics(2, "1,1,0"))
            .expect_err("regressed total must fail");
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_core() {
        let line = "prefix NEEDLE suffix padding padding padding";
        let shrunk = minimize(line, |candidate| candidate.contains("NEEDLE"));
        assert_eq!(shrunk, "NEEDLE");
        // Non-failing lines come back verbatim.
        assert_eq!(minimize(line, |_| false), line);
    }
}
