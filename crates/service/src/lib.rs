//! # codar-service — the online routing daemon
//!
//! Everything else in this workspace runs CODAR as an offline batch
//! job; this crate serves it: `coded` accepts OpenQASM circuits over a
//! line-delimited JSON protocol (TCP, or NDJSON on stdin so tests and
//! CI need no port), routes them with the paper's routers on a
//! fixed-size worker pool, **verifies** every result before replying,
//! and memoizes finished responses in a sharded LRU cache — real
//! workloads repeat circuits heavily, and a content-addressed cache
//! turns those repeats into O(1) lookups. `loadgen` is the matching
//! deterministic client: it replays a seeded circuit mix and reports
//! latency percentiles plus the cache hit rate.
//!
//! Module map (the request lifecycle, in order):
//!
//! * [`protocol`] — request parsing and response bodies (NDJSON),
//! * [`cache`] — the sharded LRU result cache and its FNV keying,
//! * [`queue`] — the bounded request queue (backpressure, never
//!   unbounded memory),
//! * [`worker`] — the routing pool (per-thread scratch, verification),
//! * [`server`] — [`Service`]: lifecycle wiring, stdin/TCP front ends,
//! * [`proxy`] — the sharded front tier: rendezvous-hashed fan-out
//!   over N `coded` backends with health probes, bounded retry and
//!   failover (`codar-proxy`),
//! * [`faults`] — deterministic transport-fault injection: seeded
//!   [`FaultPlan`]s consumed by `coded --fault-plan` and the
//!   in-process [`ShardFleet`] harness,
//! * [`metrics`] — daemon counters, latency histograms and summaries,
//! * [`trace`] — structured request tracing: span trees, per-thread
//!   rings, the NDJSON trace log (`--trace-log`, the `trace` verb and
//!   the `codar-trace` merge tool),
//! * [`loadgen`] — the deterministic load generator,
//! * [`soak`] — seeded long-run mixed traffic under the fuzz
//!   invariants (`loadgen --soak`),
//! * [`fuzz`] — grammar-aware corpus generation and the protocol
//!   invariant checker (the `codar-fuzz` bin),
//! * [`json`] — the minimal JSON layer both sides share.
//!
//! # Determinism contract
//!
//! Route responses are **cache-transparent**: for the same request
//! stream, a cache-enabled daemon, a cache-disabled daemon and a fresh
//! rerun all emit byte-identical route response lines (asserted by
//! property tests and the e2e gate). Only `stats` responses reveal the
//! cache.
//!
//! # Examples
//!
//! In-process round trip (exactly what the daemon does per line):
//!
//! ```
//! use codar_service::{Service, ServiceConfig};
//!
//! let service = Service::start(ServiceConfig::default());
//! let response = service.handle_line(
//!     "{\"type\":\"route\",\"device\":\"q20\",\"circuit\":\
//!      \"OPENQASM 2.0; include \\\"qelib1.inc\\\"; qreg q[3]; h q[0]; \
//!      cx q[0], q[2];\"}",
//! );
//! assert!(response.contains("\"status\":\"ok\""));
//! assert!(response.contains("\"verified\":true"));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod faults;
pub mod fuzz;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod proxy;
pub mod queue;
pub mod server;
pub mod soak;
pub mod trace;
pub mod worker;

pub use cache::{CacheStats, ShardedCache};
pub use faults::{FaultKind, FaultPlan, ShardFleet};
pub use loadgen::{LoadgenConfig, LoadgenReport, TcpTransport, Transport};
pub use metrics::{LatencySummary, LATENCY_SCHEMA_VERSION};
pub use protocol::{Envelope, ParseRejection, Request};
pub use proxy::{Proxy, ProxyConfig};
pub use server::{Service, ServiceConfig};
pub use soak::{SoakConfig, SoakError, SoakReport};
pub use trace::{normalize_line, PhaseSample, TraceCtx, TraceRecorder};

/// Schema version of the deterministic loadgen summary JSON. Bump on
/// any shape change, as with [`codar_engine::TIMINGS_SCHEMA_VERSION`].
pub const LOADGEN_SUMMARY_VERSION: u32 = 1;
