//! Structured request tracing: span trees, per-thread rings, NDJSON sink.
//!
//! Every traced request gets a **trace id** — supplied by the client as
//! an optional `"trace"` field, or minted by the daemon/proxy when a
//! trace log is attached — and a **span tree** of typed records
//! describing where its wall time went: protocol parse, circuit
//! canonicalization, cache lookup, queue wait, the worker phases
//! (route, verify, simulate, serialize), and on the proxy side the
//! shard pick and every forward attempt. The tree is assembled on the
//! serving thread into a [`TraceCtx`], then committed to a
//! [`TraceRecorder`]: a lock-cheap per-thread ring buffer (served by
//! the `trace` protocol verb) plus an optional NDJSON sink
//! (`--trace-log FILE` on `coded` and `codar-proxy`) that the
//! `codar-trace` bin merges into per-request waterfalls.
//!
//! # Determinism boundary
//!
//! Exactly like `RunStats` vs `Summary` in the engine, structure and
//! measurement are kept separate:
//!
//! * **Structure** — the tree shape (ordinals, parents, kinds, names,
//!   details) is a pure function of the request stream: ordinals come
//!   from a per-request logical event counter, never from wall time or
//!   thread interleaving. Seeded reruns must produce byte-identical
//!   structure; the CI trace smoke diffs it.
//! * **Measurement** — wall-clock data is confined to the two
//!   clearly-marked fields `t_us` (offset from request start) and
//!   `dur_us` (span duration). [`normalize_line`] zeroes both so the
//!   gates can diff what is left.
//!
//! # Examples
//!
//! ```
//! use codar_service::trace::{normalize_line, TraceCtx, TraceRecorder};
//!
//! let recorder = TraceRecorder::new();
//! let mut ctx = TraceCtx::begin("t-1".to_string(), "route");
//! let parse_started = ctx.start();
//! // ... work ...
//! ctx.phase("parse", 0, parse_started);
//! ctx.event("cache_miss", 0, None);
//! ctx.finish_root("ok");
//! recorder.commit(ctx);
//!
//! let spans = recorder.recent(8);
//! assert_eq!(spans.len(), 3);
//! assert!(spans[0].contains("\"kind\":\"request\",\"name\":\"route\""));
//! // Durations normalize away; structure stays.
//! assert!(normalize_line(&spans[1]).contains("\"name\":\"parse\",\"t_us\":0,\"dur_us\":0"));
//! ```

use crate::json::escape;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Longest accepted `"trace"` field value, in bytes. Anything longer
/// (or empty, or non-string) is a parse rejection — trace ids are
/// correlation keys, not payload.
pub const TRACE_ID_MAX_BYTES: usize = 128;

/// Spans a per-thread ring retains; older spans are evicted FIFO.
pub const RING_CAPACITY: usize = 512;

/// Whether `id` is acceptable as a trace id: non-empty, at most
/// [`TRACE_ID_MAX_BYTES`] bytes. The fuzz checker mirrors this rule.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty() && id.len() <= TRACE_ID_MAX_BYTES
}

/// What a span record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The root span: one per request, named after the verb.
    Request,
    /// A timed phase (has a duration).
    Phase,
    /// A point event (no duration).
    Event,
}

impl SpanKind {
    fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Phase => "phase",
            SpanKind::Event => "event",
        }
    }
}

/// One record of a span tree. Serialized as one NDJSON line with a
/// fixed field order; `t_us`/`dur_us` are the only wall-clock fields.
#[derive(Debug, Clone)]
pub struct Span {
    /// Per-request ordinal from the logical event counter (root is 0).
    pub ord: u32,
    /// Parent ordinal; `None` only for the root.
    pub parent: Option<u32>,
    /// Record kind.
    pub kind: SpanKind,
    /// Event taxonomy name (`parse`, `route`, `cache_hit`, ...).
    pub name: &'static str,
    /// Deterministic annotation (outcome, backend index), if any.
    pub detail: Option<String>,
    /// Microseconds from request start (measurement; normalized away).
    pub t_us: u64,
    /// Span duration in microseconds; `None` for point events.
    pub dur_us: Option<u64>,
}

impl Span {
    fn render(&self, trace: &str) -> String {
        let mut line = format!("{{\"trace\":{},\"ord\":{}", escape(trace), self.ord);
        if let Some(parent) = self.parent {
            line.push_str(&format!(",\"parent\":{parent}"));
        }
        line.push_str(&format!(
            ",\"kind\":{},\"name\":{}",
            escape(self.kind.name()),
            escape(self.name)
        ));
        if let Some(detail) = &self.detail {
            line.push_str(&format!(",\"detail\":{}", escape(detail)));
        }
        line.push_str(&format!(",\"t_us\":{}", self.t_us));
        if let Some(dur) = self.dur_us {
            line.push_str(&format!(",\"dur_us\":{dur}"));
        }
        line.push('}');
        line
    }
}

/// A worker-side phase measurement, shipped back to the serving thread
/// so the span tree is assembled in one deterministic place. Offsets
/// are relative to the request start `Instant` carried by the job.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSample {
    /// Phase name (`queue_wait`, `route`, `verify`, ...).
    pub name: &'static str,
    /// Microseconds from request start.
    pub t_us: u64,
    /// Phase duration, microseconds.
    pub dur_us: u64,
}

fn as_us(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

/// Builds a [`PhaseSample`] from three instants: the request start
/// (`started`, the zero of the trace timeline), the phase start and
/// the phase end. Workers use this to measure phases against the
/// serving thread's clock origin.
pub fn phase_sample(
    name: &'static str,
    started: Instant,
    from: Instant,
    until: Instant,
) -> PhaseSample {
    PhaseSample {
        name,
        t_us: as_us(from.duration_since(started)),
        dur_us: as_us(until.duration_since(from)),
    }
}

/// The span tree of one in-flight request, assembled on the serving
/// thread. Ordinals are handed out in call order by a logical counter,
/// so the structure is independent of wall time.
#[derive(Debug)]
pub struct TraceCtx {
    id: String,
    started: Instant,
    spans: Vec<Span>,
}

impl TraceCtx {
    /// Opens a tree for trace `id` with a root span named `verb`.
    /// The request clock starts now.
    pub fn begin(id: String, verb: &'static str) -> TraceCtx {
        TraceCtx::begin_at(id, verb, Instant::now())
    }

    /// Like [`TraceCtx::begin`], but with an explicit clock origin —
    /// the server passes the instant the request line arrived, so
    /// phases measured before the tree existed (protocol parse) still
    /// offset correctly.
    pub fn begin_at(id: String, verb: &'static str, started: Instant) -> TraceCtx {
        TraceCtx {
            id,
            started,
            spans: vec![Span {
                ord: 0,
                parent: None,
                kind: SpanKind::Request,
                name: verb,
                detail: None,
                t_us: 0,
                dur_us: None,
            }],
        }
    }

    /// The trace id this tree belongs to.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// An `Instant` for bracketing a phase: capture before the work,
    /// pass to [`TraceCtx::phase`] after it.
    pub fn start(&self) -> Instant {
        Instant::now()
    }

    /// Records a completed phase that began at `from` and ends now.
    /// Returns the new span's ordinal (usable as a parent).
    pub fn phase(&mut self, name: &'static str, parent: u32, from: Instant) -> u32 {
        let t_us = as_us(from.duration_since(self.started));
        let dur_us = as_us(from.elapsed());
        self.sample(PhaseSample { name, t_us, dur_us }, parent)
    }

    /// Records a pre-measured phase (e.g. shipped back from a worker).
    pub fn sample(&mut self, sample: PhaseSample, parent: u32) -> u32 {
        self.sample_with_detail(sample, parent, None)
    }

    /// [`TraceCtx::sample`] with a deterministic annotation — e.g. the
    /// proxy's per-attempt `backend=i outcome=ok` phases.
    pub fn sample_with_detail(
        &mut self,
        sample: PhaseSample,
        parent: u32,
        detail: Option<String>,
    ) -> u32 {
        self.push(Span {
            ord: 0,
            parent: Some(parent),
            kind: SpanKind::Phase,
            name: sample.name,
            detail,
            t_us: sample.t_us,
            dur_us: Some(sample.dur_us),
        })
    }

    /// Records a point event happening now.
    pub fn event(&mut self, name: &'static str, parent: u32, detail: Option<String>) -> u32 {
        let t_us = as_us(self.started.elapsed());
        self.push(Span {
            ord: 0,
            parent: Some(parent),
            kind: SpanKind::Event,
            name,
            detail,
            t_us,
            dur_us: None,
        })
    }

    /// Closes the root span: total duration plus a deterministic
    /// outcome annotation (`ok` / `error` / `overloaded`).
    pub fn finish_root(&mut self, detail: &str) {
        self.spans[0].dur_us = Some(as_us(self.started.elapsed()));
        self.spans[0].detail = Some(detail.to_string());
    }

    fn push(&mut self, mut span: Span) -> u32 {
        span.ord = u32::try_from(self.spans.len()).expect("span count fits u32");
        let ord = span.ord;
        self.spans.push(span);
        ord
    }

    /// Serializes every span, in ordinal order, one NDJSON line each.
    pub fn render(&self) -> Vec<String> {
        self.spans.iter().map(|s| s.render(&self.id)).collect()
    }
}

/// Zeroes the two wall-clock fields (`t_us`, `dur_us`) of a serialized
/// span line, leaving the deterministic structure. The trace gates diff
/// normalized lines; `codar-trace --normalize` applies this to a log.
pub fn normalize_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    loop {
        // Find the nearer of the two markers in what is left.
        let next = ["\"t_us\":", "\"dur_us\":"]
            .iter()
            .filter_map(|m| rest.find(m).map(|at| (at, m.len())))
            .min();
        let Some((at, len)) = next else {
            out.push_str(rest);
            return out;
        };
        out.push_str(&rest[..at + len]);
        rest = &rest[at + len..];
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        if digits > 0 {
            out.push('0');
            rest = &rest[digits..];
        }
    }
}

struct ThreadRing {
    entries: Mutex<VecDeque<(u64, String)>>,
}

thread_local! {
    // Per-thread cache of (recorder key -> ring), so committing a span
    // tree costs one uncontended Mutex lock, not a registry lookup.
    static RINGS: RefCell<Vec<(usize, Weak<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

static RECORDER_KEYS: AtomicUsize = AtomicUsize::new(0);

struct RecorderInner {
    key: usize,
    seq: AtomicU64,
    mint: AtomicU64,
    minting: bool,
    prefix: &'static str,
    sink: Option<Mutex<BufWriter<File>>>,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl std::fmt::Debug for RecorderInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("minting", &self.minting)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

/// The daemon-wide trace store: per-thread rings of recent span lines
/// (served by the `trace` verb) plus an optional NDJSON sink. Minting
/// of fresh trace ids is enabled exactly when a sink is attached — a
/// daemon without `--trace-log` assembles trees only for requests that
/// *carry* a trace id, keeping the untraced hot path free of tree
/// work.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    fn build(sink: Option<BufWriter<File>>, prefix: &'static str) -> TraceRecorder {
        TraceRecorder {
            inner: Arc::new(RecorderInner {
                key: RECORDER_KEYS.fetch_add(1, Ordering::Relaxed),
                seq: AtomicU64::new(0),
                mint: AtomicU64::new(0),
                minting: sink.is_some(),
                prefix,
                sink: sink.map(Mutex::new),
                rings: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A recorder with rings only: no sink, no minting.
    pub fn new() -> TraceRecorder {
        TraceRecorder::build(None, "t")
    }

    /// A recorder draining committed spans to the NDJSON log at `path`
    /// (truncated), with minting enabled (ids `t-1`, `t-2`, ...).
    ///
    /// # Errors
    ///
    /// Any I/O error creating `path`.
    pub fn with_sink(path: &str) -> io::Result<TraceRecorder> {
        TraceRecorder::with_sink_prefix(path, "t")
    }

    /// [`TraceRecorder::with_sink`] with an explicit mint prefix. Each
    /// tier mints from its own namespace (`t-N` daemons, `p-N` the
    /// proxy) so merging a proxy log with shard logs can never join
    /// unrelated trees that happen to share a sequence number.
    ///
    /// # Errors
    ///
    /// Any I/O error creating `path`.
    pub fn with_sink_prefix(path: &str, prefix: &'static str) -> io::Result<TraceRecorder> {
        Ok(TraceRecorder::build(
            Some(BufWriter::new(File::create(path)?)),
            prefix,
        ))
    }

    /// Whether this recorder mints ids for untraced work requests
    /// (true exactly when a sink is attached).
    pub fn minting(&self) -> bool {
        self.inner.minting
    }

    /// Mints the next recorder-local trace id (`<prefix>-1`,
    /// `<prefix>-2`, ...) if minting is enabled. Sequential per
    /// recorder, so a single-client seeded replay mints a
    /// deterministic id stream.
    pub fn mint(&self) -> Option<String> {
        self.inner.minting.then(|| {
            format!(
                "{}-{}",
                self.inner.prefix,
                self.inner.mint.fetch_add(1, Ordering::Relaxed) + 1
            )
        })
    }

    fn ring(&self) -> Arc<ThreadRing> {
        RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(ring) = cache
                .iter()
                .find(|(key, _)| *key == self.inner.key)
                .and_then(|(_, weak)| weak.upgrade())
            {
                return ring;
            }
            let ring = Arc::new(ThreadRing {
                entries: Mutex::new(VecDeque::new()),
            });
            self.inner
                .rings
                .lock()
                .expect("ring registry poisoned")
                .push(Arc::clone(&ring));
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            cache.push((self.inner.key, Arc::downgrade(&ring)));
            ring
        })
    }

    /// Commits a finished tree: every span goes to this thread's ring
    /// (evicting FIFO past [`RING_CAPACITY`]) and, when a sink is
    /// attached, to the NDJSON log (flushed per request, so a crashed
    /// daemon loses at most the in-flight request's spans).
    pub fn commit(&self, ctx: TraceCtx) {
        let lines = ctx.render();
        let ring = self.ring();
        {
            let mut entries = ring.entries.lock().expect("ring poisoned");
            for line in &lines {
                let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
                if entries.len() == RING_CAPACITY {
                    entries.pop_front();
                }
                entries.push_back((seq, line.clone()));
            }
        }
        if let Some(sink) = &self.inner.sink {
            let mut sink = sink.lock().expect("trace sink poisoned");
            for line in &lines {
                let _ = writeln!(sink, "{line}");
            }
            let _ = sink.flush();
        }
    }

    /// The last `n` committed span lines across every thread's ring,
    /// oldest first (merged by commit sequence).
    pub fn recent(&self, n: usize) -> Vec<String> {
        let rings: Vec<Arc<ThreadRing>> = self
            .inner
            .rings
            .lock()
            .expect("ring registry poisoned")
            .clone();
        let mut entries: Vec<(u64, String)> = Vec::new();
        for ring in rings {
            entries.extend(ring.entries.lock().expect("ring poisoned").iter().cloned());
        }
        entries.sort_unstable_by_key(|(seq, _)| *seq);
        if entries.len() > n {
            entries.drain(..entries.len() - n);
        }
        entries.into_iter().map(|(_, line)| line).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_validation_bounds() {
        assert!(valid_trace_id("t-1"));
        assert!(valid_trace_id(&"x".repeat(TRACE_ID_MAX_BYTES)));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id(&"x".repeat(TRACE_ID_MAX_BYTES + 1)));
    }

    #[test]
    fn span_lines_have_fixed_field_order() {
        let mut ctx = TraceCtx::begin("abc".to_string(), "route");
        let from = ctx.start();
        ctx.phase("parse", 0, from);
        ctx.event("cache_hit", 0, Some("shard=2".to_string()));
        ctx.finish_root("ok");
        let lines = ctx.render();
        assert_eq!(lines.len(), 3);
        assert!(
            normalize_line(&lines[0]).starts_with(
                "{\"trace\":\"abc\",\"ord\":0,\"kind\":\"request\",\"name\":\"route\",\
                 \"detail\":\"ok\",\"t_us\":0,\"dur_us\":0"
            ),
            "{}",
            lines[0]
        );
        assert_eq!(
            normalize_line(&lines[1]),
            "{\"trace\":\"abc\",\"ord\":1,\"parent\":0,\"kind\":\"phase\",\
             \"name\":\"parse\",\"t_us\":0,\"dur_us\":0}"
        );
        assert_eq!(
            normalize_line(&lines[2]),
            "{\"trace\":\"abc\",\"ord\":2,\"parent\":0,\"kind\":\"event\",\
             \"name\":\"cache_hit\",\"detail\":\"shard=2\",\"t_us\":0}"
        );
    }

    #[test]
    fn ordinals_are_logical_not_temporal() {
        // Two trees built with very different wall profiles must have
        // identical normalized structure.
        let build = |sleep: bool| {
            let mut ctx = TraceCtx::begin("t".to_string(), "route");
            let from = ctx.start();
            if sleep {
                std::thread::sleep(Duration::from_millis(2));
            }
            ctx.phase("canonicalize", 0, from);
            ctx.event("cache_miss", 0, None);
            ctx.sample(
                PhaseSample {
                    name: "route",
                    t_us: if sleep { 5000 } else { 3 },
                    dur_us: 1,
                },
                0,
            );
            ctx.finish_root("ok");
            ctx.render()
                .iter()
                .map(|l| normalize_line(l))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn normalization_zeroes_only_duration_fields() {
        let line = "{\"trace\":\"t-9\",\"ord\":3,\"parent\":0,\"kind\":\"phase\",\
                    \"name\":\"route\",\"t_us\":12345,\"dur_us\":678}";
        assert_eq!(
            normalize_line(line),
            "{\"trace\":\"t-9\",\"ord\":3,\"parent\":0,\"kind\":\"phase\",\
             \"name\":\"route\",\"t_us\":0,\"dur_us\":0}"
        );
        // Ordinals, parents and ids survive untouched.
        let tricky = "{\"trace\":\"dur_us:77\",\"ord\":42,\"t_us\":1}";
        assert_eq!(
            normalize_line(tricky),
            "{\"trace\":\"dur_us:77\",\"ord\":42,\"t_us\":0}"
        );
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let recorder = TraceRecorder::new();
        for i in 0..(RING_CAPACITY + 10) {
            let mut ctx = TraceCtx::begin(format!("t-{i}"), "stats");
            ctx.finish_root("ok");
            recorder.commit(ctx);
        }
        let all = recorder.recent(usize::MAX);
        assert_eq!(all.len(), RING_CAPACITY);
        assert!(all
            .last()
            .expect("non-empty")
            .contains(&format!("\"trace\":\"t-{}\"", RING_CAPACITY + 9)));
        let tail = recorder.recent(3);
        assert_eq!(tail.len(), 3);
        assert_eq!(tail, all[RING_CAPACITY - 3..].to_vec());
    }

    #[test]
    fn recent_merges_rings_across_threads() {
        let recorder = TraceRecorder::new();
        let mut ctx = TraceCtx::begin("main-1".to_string(), "stats");
        ctx.finish_root("ok");
        recorder.commit(ctx);
        let clone = recorder.clone();
        std::thread::spawn(move || {
            let mut ctx = TraceCtx::begin("other-1".to_string(), "stats");
            ctx.finish_root("ok");
            clone.commit(ctx);
        })
        .join()
        .expect("thread");
        let all = recorder.recent(usize::MAX);
        assert_eq!(all.len(), 2);
        assert!(all[0].contains("main-1"));
        assert!(all[1].contains("other-1"));
    }

    #[test]
    fn minting_requires_a_sink() {
        let recorder = TraceRecorder::new();
        assert!(!recorder.minting());
        assert_eq!(recorder.mint(), None);
    }

    #[test]
    fn sink_receives_flushed_ndjson() {
        let path = std::env::temp_dir().join(format!("codar_trace_sink_{}", std::process::id()));
        let path_text = path.to_string_lossy().to_string();
        let recorder = TraceRecorder::with_sink(&path_text).expect("sink opens");
        assert!(recorder.minting());
        assert_eq!(recorder.mint().as_deref(), Some("t-1"));
        assert_eq!(recorder.mint().as_deref(), Some("t-2"));
        let mut ctx = TraceCtx::begin("t-1".to_string(), "route");
        ctx.event("cache_hit", 0, None);
        ctx.finish_root("ok");
        recorder.commit(ctx);
        let logged = std::fs::read_to_string(&path).expect("log readable");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = logged.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"request\""));
        assert!(lines[1].contains("\"name\":\"cache_hit\""));
    }
}
