//! The routing worker pool.
//!
//! A fixed number of worker threads pop [`RouteJob`]s off the bounded
//! queue, route them with a per-worker [`codar_engine::RouteWorker`]
//! (one reusable scratch per thread, the same pattern as the engine's
//! `SuiteRunner`), **verify** the result (coupling compliance +
//! semantic equivalence), serialize the routed circuit back to QASM and
//! reply with a finished response body. Successful bodies are inserted
//! into the shared result cache before the reply is sent, so an
//! identical request that arrives next probes straight into a hit.
//!
//! Workers are also where the per-phase observability data is born:
//! every job's queue wait and routing phases (route, verify, simulate,
//! serialize) are measured against the serving thread's clock origin,
//! recorded into the shared phase histograms, and shipped back with
//! the reply as [`PhaseSample`]s so the serving thread can assemble
//! the request's span tree in one deterministic place.

use crate::cache::{fnv1a_extend, ShardedCache, FNV_OFFSET};
use crate::metrics::ServiceMetrics;
use crate::protocol::{error_body, RouteOutcome};
use crate::queue::Bounded;
use crate::trace::{phase_sample, PhaseSample};
use codar_arch::{CalibrationSnapshot, Device, FidelityModel};
use codar_circuit::from_qasm::circuit_to_qasm;
use codar_circuit::Circuit;
use codar_engine::{Backend, RouteWorker, RouterKind, RouterVariant};
use codar_router::verify::{check_coupling, check_equivalence};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// One queued route request, ready to route.
#[derive(Debug)]
pub struct RouteJob {
    /// Result-cache key of the request (already probed: a miss).
    pub key: u64,
    /// Full request identity ([`crate::cache::key_material`]), stored
    /// with the cache entry so key collisions cannot alias.
    pub material: String,
    /// The parsed, ≤2-qubit-decomposed logical circuit.
    pub circuit: Circuit,
    /// Target device (shared; distance matrices are per-device).
    pub device: Arc<Device>,
    /// Router to run.
    pub router: RouterKind,
    /// Calibration blend weight (`codar-cal`; for `auto` it configures
    /// the portfolio's codar-cal member).
    pub alpha: f64,
    /// Portfolio members to race (`auto` only; empty for fixed
    /// routers). Explore jobs carry the full member list; exploit jobs
    /// carry just the class leader.
    pub members: Vec<RouterVariant>,
    /// Circuit class of the request (`auto` only; wins are tallied per
    /// (device, class)). Empty for fixed routers.
    pub class: String,
    /// `auto` with no win history for this (device, class): the worker
    /// races every member, appends the winning label to `material`,
    /// recomputes `key` for the cache insert, and credits the win
    /// *before* the reply goes out — the caller's next `auto` request
    /// already sees the leader.
    pub explore: bool,
    /// Requested simulation backend for differential verification
    /// (`None` = syntactic verification only, the historical path).
    pub sim: Option<Backend>,
    /// The device's active calibration snapshot at probe time (its
    /// version is already folded into `key`/`material`). `codar-cal`
    /// routes against it; any router's response reports EPS under it.
    pub snapshot: Option<Arc<CalibrationSnapshot>>,
    /// The snapshot's EPS model, derived once at `calibration set`
    /// time and shared — workers never rebuild the per-edge tables.
    /// Present iff `snapshot` is.
    pub model: Option<Arc<FidelityModel>>,
    /// When the serving thread received the request line — the zero of
    /// the request's trace timeline; phase offsets are measured
    /// against it.
    pub t0: Instant,
    /// When the job was pushed onto the queue (queue wait = pickup −
    /// enqueue).
    pub enqueued: Instant,
    /// Where the finished reply goes (the blocked caller).
    pub reply: mpsc::Sender<RouteReply>,
}

/// What a worker hands back: the response body plus the phase
/// measurements (queue wait first, then routing phases in execution
/// order). The *set* of phases is a deterministic function of the
/// request — only the `t_us`/`dur_us` values inside each sample are
/// wall-clock.
#[derive(Debug)]
pub struct RouteReply {
    /// The finished response body (no id/trace attached yet).
    pub body: String,
    /// Queue wait + routing phases, in execution order.
    pub phases: Vec<PhaseSample>,
}

/// Spawns the pool; threads exit when the queue is closed and drained.
pub fn spawn_pool(
    workers: usize,
    queue: &Arc<Bounded<RouteJob>>,
    cache: &Arc<ShardedCache>,
    metrics: &Arc<ServiceMetrics>,
    seed: u64,
) -> Vec<JoinHandle<()>> {
    (0..workers.max(1))
        .map(|i| {
            let queue = Arc::clone(queue);
            let cache = Arc::clone(cache);
            let metrics = Arc::clone(metrics);
            std::thread::Builder::new()
                .name(format!("codar-worker-{i}"))
                .spawn(move || {
                    let mut worker = RouteWorker::new();
                    while let Some(job) = queue.pop() {
                        let picked = Instant::now();
                        let queue_wait = phase_sample("queue_wait", job.t0, job.enqueued, picked);
                        metrics.hist_queue_wait.record(queue_wait.dur_us);
                        // The in-flight gauge spans pickup → reply
                        // handoff, so `metrics` can tell queued work
                        // (queue_depth) from work already on a core.
                        ServiceMetrics::bump(&metrics.in_flight);
                        // A panicking route must not kill the pool:
                        // later queued jobs would block their callers
                        // forever. Catch it, answer with an error, and
                        // rebuild the (possibly inconsistent) scratch.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                route_job(&mut worker, &job, seed)
                            }));
                        let (body, ok, mut phases, chosen) = outcome.unwrap_or_else(|_| {
                            worker = RouteWorker::new();
                            (
                                error_body("internal error: routing panicked"),
                                false,
                                Vec::new(),
                                None,
                            )
                        });
                        for phase in &phases {
                            if let Some(hist) = metrics.phase_histogram(phase.name) {
                                hist.record(phase.dur_us);
                            }
                        }
                        phases.insert(0, queue_wait);
                        if ok {
                            ServiceMetrics::bump(&metrics.routed);
                            // Explore jobs only learn their winner here,
                            // so the cache identity is finalized by the
                            // worker: the winning label joins the
                            // material and the key is recomputed — the
                            // same bytes the serving thread probes with
                            // once this class has a leader.
                            let (key, material) = match (&chosen, job.explore) {
                                (Some(label), true) => {
                                    let material = format!("{}\0{label}", job.material);
                                    (fnv1a_extend(FNV_OFFSET, material.as_bytes()), material)
                                }
                                _ => (job.key, job.material.clone()),
                            };
                            if cache.enabled() {
                                cache.insert(key, material, Arc::from(body.as_str()));
                            }
                            // Credit the win before the reply: the
                            // caller synchronizes on the reply channel,
                            // so its next `auto` request observes the
                            // updated table.
                            if let (Some(label), true) = (&chosen, job.explore) {
                                metrics.record_portfolio_win(job.device.name(), &job.class, label);
                            }
                        } else {
                            ServiceMetrics::bump(&metrics.errors);
                        }
                        // Decrement BEFORE the reply goes out: the
                        // caller synchronizes on the reply channel, so
                        // any request it serves afterwards (a `metrics`
                        // probe, say) observes the gauge already
                        // dropped. Decrementing after the send would
                        // leave the gauge to worker-thread scheduling
                        // and make `metrics` output nondeterministic.
                        ServiceMetrics::drop_one(&metrics.in_flight);
                        // A dropped receiver (client gone) is fine.
                        let _ = job.reply.send(RouteReply { body, phases });
                    }
                })
                .expect("spawn worker thread")
        })
        .collect()
}

/// Routes one job end to end; returns `(response body, success,
/// phases, chosen portfolio member)`. Failed jobs (router error,
/// verification failure, serialization error) produce error bodies and
/// are **never cached**; their phase list stops at the phase that
/// failed, which keeps the span structure a deterministic function of
/// the request. Portfolio (`auto`) jobs race `job.members` through the
/// worker's one scratch inside the single `route` phase, so the phase
/// *set* is identical to a fixed router's.
fn route_job(
    worker: &mut RouteWorker,
    job: &RouteJob,
    seed: u64,
) -> (String, bool, Vec<PhaseSample>, Option<String>) {
    let mut phases: Vec<PhaseSample> = Vec::with_capacity(4);
    // The server checks fit before queueing; guard again here because
    // the placement builders assume it.
    if job.circuit.num_qubits() > job.device.num_qubits() {
        return (
            error_body(&format!(
                "routing failed: circuit uses {} qubits but {} has {}",
                job.circuit.num_qubits(),
                job.device.name(),
                job.device.num_qubits()
            )),
            false,
            phases,
            None,
        );
    }
    let from = Instant::now();
    let initial = worker.initial_mapping(&job.circuit, &job.device, seed);
    let (routed, chosen) = if job.router == RouterKind::Portfolio {
        match worker.route_portfolio(
            &job.circuit,
            &job.device,
            &job.members,
            Some(&initial),
            job.snapshot.as_deref(),
            job.model.as_deref(),
        ) {
            Ok(outcome) => (Ok(outcome.routed), Some(outcome.chosen)),
            Err(e) => (Err(e), None),
        }
    } else {
        let mut variant = RouterVariant::of_kind(job.router);
        variant.codar.cal_alpha = job.alpha;
        (
            worker.route(
                &job.circuit,
                &job.device,
                &variant,
                Some(initial),
                job.snapshot.as_deref(),
            ),
            None,
        )
    };
    phases.push(phase_sample("route", job.t0, from, Instant::now()));
    let routed = match routed {
        Ok(routed) => routed,
        Err(e) => {
            return (
                error_body(&format!("routing failed: {e}")),
                false,
                phases,
                None,
            )
        }
    };
    let from = Instant::now();
    let verified = check_coupling(&routed.circuit, &job.device)
        .map_err(|e| format!("verification failed (coupling): {e}"))
        .and_then(|()| {
            check_equivalence(&job.circuit, &routed)
                .map_err(|e| format!("verification failed (equivalence): {e}"))
        });
    phases.push(phase_sample("verify", job.t0, from, Instant::now()));
    if let Err(message) = verified {
        return (error_body(&message), false, phases, None);
    }
    // Requested simulation backends run the stronger differential
    // check and are *reported back*: the resolved backend appears in
    // the response even when `auto` lands on dense, so a client can
    // always see what actually ran — no silent fallback.
    let sim = match job.sim {
        Some(backend) => {
            let from = Instant::now();
            let checked = worker.simulation_check(&job.circuit, &routed, backend);
            phases.push(phase_sample("simulate", job.t0, from, Instant::now()));
            match checked {
                Ok(resolved) => Some(resolved.name().to_string()),
                Err(e) => {
                    return (
                        error_body(&format!("simulation check failed: {e}")),
                        false,
                        phases,
                        None,
                    )
                }
            }
        }
        None => None,
    };
    let from = Instant::now();
    let qasm = match circuit_to_qasm(&routed.circuit) {
        Ok(qasm) => qasm,
        Err(e) => {
            phases.push(phase_sample("serialize", job.t0, from, Instant::now()));
            return (
                error_body(&format!("cannot serialize routed circuit: {e}")),
                false,
                phases,
                None,
            );
        }
    };
    // With an active snapshot every route response (any router)
    // reports the routed circuit's EPS under it, alongside the
    // snapshot version the result is bound to.
    let calibration = match (&job.snapshot, &job.model) {
        (Some(snapshot), Some(model)) => Some((
            snapshot.version,
            model.success_probability(&routed.circuit, job.device.durations()),
        )),
        _ => None,
    };
    let outcome = RouteOutcome {
        device: job.device.name().to_string(),
        router: job.router,
        qubits: job.circuit.num_qubits(),
        input_gates: job.circuit.len(),
        weighted_depth: routed.weighted_depth,
        depth: routed.depth(),
        swaps: routed.swaps_inserted,
        output_gates: routed.gate_count(),
        calibration,
        sim,
        chosen: chosen.clone(),
        qasm,
    };
    let body = outcome.body();
    phases.push(phase_sample("serialize", job.t0, from, Instant::now()));
    (body, true, phases, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn job_for(source: &str, router: RouterKind) -> (RouteJob, mpsc::Receiver<RouteReply>) {
        let circuit = codar_circuit::from_qasm::circuit_from_source(source).expect("parse");
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        (
            RouteJob {
                key: 1,
                material: format!("{source}\0q5\0{}\00", router.name()),
                circuit,
                device: Arc::new(Device::ibm_q5_yorktown()),
                router,
                alpha: 0.0,
                members: Vec::new(),
                class: String::new(),
                explore: false,
                sim: None,
                snapshot: None,
                model: None,
                t0: now,
                enqueued: now,
                reply: tx,
            },
            rx,
        )
    }

    fn phase_names(phases: &[PhaseSample]) -> Vec<&'static str> {
        phases.iter().map(|p| p.name).collect()
    }

    #[test]
    fn routes_verify_and_report_metrics() {
        let (job, _rx) = job_for(
            "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[4]; creg c[4]; \
             h q[0]; cx q[0], q[3]; cx q[1], q[2]; measure q -> c;",
            RouterKind::Codar,
        );
        let mut worker = RouteWorker::new();
        let (body, ok, phases, chosen) = route_job(&mut worker, &job, 0);
        assert!(ok, "{body}");
        assert_eq!(chosen, None, "fixed routers never report a winner");
        // No sim was requested, so the phase set is exactly the
        // sim-less pipeline, in execution order.
        assert_eq!(phase_names(&phases), ["route", "verify", "serialize"]);
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(parsed.get("verified").and_then(Json::as_bool), Some(true));
        let qasm = parsed.get("qasm").and_then(Json::as_str).unwrap();
        // The routed QASM is itself valid and re-parses.
        codar_circuit::from_qasm::circuit_from_source(qasm).expect("routed QASM parses");
    }

    #[test]
    fn sim_requests_verify_and_report_the_resolved_backend() {
        // A Clifford circuit under `auto` resolves to the stabilizer
        // backend and the response says so.
        let (mut job, _rx) = job_for(
            "qreg q[4]; h q[0]; cx q[0], q[3]; cx q[1], q[2];",
            RouterKind::Codar,
        );
        job.sim = Some(Backend::Auto);
        let mut worker = RouteWorker::new();
        let (body, ok, phases, _) = route_job(&mut worker, &job, 0);
        assert!(ok, "{body}");
        // Sim requests add exactly one `simulate` phase between
        // verify and serialize.
        assert_eq!(
            phase_names(&phases),
            ["route", "verify", "simulate", "serialize"]
        );
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("sim").and_then(Json::as_str), Some("stabilizer"));
        // An explicit dense request is honored and still reported —
        // the field is present exactly when the request asked.
        job.sim = Some(Backend::Dense);
        let (tx, _rx2) = mpsc::channel();
        job.reply = tx;
        let (body, ok, _, _) = route_job(&mut worker, &job, 0);
        assert!(ok, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("sim").and_then(Json::as_str), Some("dense"));
        // A backend that cannot run the circuit is a clean error body
        // whose phase list stops at the failing phase.
        let (mut t_job, _rx3) = job_for("qreg q[3]; t q[0]; cx q[0], q[2];", RouterKind::Codar);
        t_job.sim = Some(Backend::Stabilizer);
        let (body, ok, phases, _) = route_job(&mut worker, &t_job, 0);
        assert!(!ok);
        assert!(body.contains("simulation check failed"), "{body}");
        assert_eq!(phase_names(&phases), ["route", "verify", "simulate"]);
    }

    #[test]
    fn router_errors_become_error_bodies_not_panics() {
        // 6 qubits cannot fit the 5-qubit Yorktown.
        let (job, _rx) = job_for("qreg q[6]; cx q[0], q[5];", RouterKind::Sabre);
        let mut worker = RouteWorker::new();
        let (body, ok, phases, _) = route_job(&mut worker, &job, 0);
        assert!(!ok);
        // The fit guard fires before any phase starts.
        assert!(phases.is_empty());
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
        assert!(
            parsed
                .get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("routing failed"),
            "{body}"
        );
    }

    #[test]
    fn portfolio_explore_jobs_finalize_key_and_credit_the_win() {
        use crate::cache::{fnv1a_extend, FNV_OFFSET};

        let queue = Arc::new(Bounded::new(4));
        let cache = Arc::new(ShardedCache::new(8, 2));
        let metrics = Arc::new(ServiceMetrics::new());
        let handles = spawn_pool(1, &queue, &cache, &metrics, 0);
        let (mut job, rx) = job_for(
            "qreg q[4]; h q[0]; cx q[0], q[3]; cx q[1], q[2];",
            RouterKind::Portfolio,
        );
        job.alpha = 0.5;
        job.members = RouterVariant::portfolio_members(0.5);
        job.class = "q4g2".to_string();
        job.explore = true;
        let base_material = job.material.clone();
        queue.try_push(job).unwrap();
        let reply = rx.recv().expect("worker replies");
        let parsed = Json::parse(&reply.body).unwrap();
        assert_eq!(parsed.get("router").and_then(Json::as_str), Some("auto"));
        let chosen = parsed
            .get("chosen")
            .and_then(Json::as_str)
            .expect("explore replies carry the winner")
            .to_string();
        assert!(
            ["codar", "codar-cal", "greedy", "sabre"].contains(&chosen.as_str()),
            "{chosen}"
        );
        // The phase set matches a fixed router's — the member race
        // happens inside the single `route` phase.
        let names: Vec<_> = reply.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["queue_wait", "route", "verify", "serialize"]);
        // The win was credited before the reply...
        assert_eq!(
            metrics
                .portfolio_leader("IBM Q5 Yorktown", "q4g2")
                .as_deref(),
            Some(chosen.as_str())
        );
        // ...and the body was cached under the winner-qualified key,
        // the same bytes an exploit probe recomputes.
        let material = format!("{base_material}\0{chosen}");
        let key = fnv1a_extend(FNV_OFFSET, material.as_bytes());
        assert_eq!(
            cache.get(key, &material).as_deref(),
            Some(reply.body.as_str())
        );
        queue.close();
        for handle in handles {
            handle.join().expect("worker exits cleanly");
        }
    }

    #[test]
    fn pool_drains_queue_then_exits() {
        let queue = Arc::new(Bounded::new(16));
        let cache = Arc::new(ShardedCache::new(8, 2));
        let metrics = Arc::new(ServiceMetrics::new());
        let handles = spawn_pool(2, &queue, &cache, &metrics, 0);
        let mut receivers = Vec::new();
        for _ in 0..4 {
            let (job, rx) = job_for(
                "qreg q[3]; cx q[0], q[2]; cx q[1], q[2];",
                RouterKind::Codar,
            );
            queue.try_push(job).unwrap();
            receivers.push(rx);
        }
        for rx in receivers {
            let reply = rx.recv().expect("worker replies");
            assert!(reply.body.contains("\"status\":\"ok\""), "{}", reply.body);
            // Queue wait rides in front of the routing phases.
            assert_eq!(reply.phases[0].name, "queue_wait");
        }
        queue.close();
        for handle in handles {
            handle.join().expect("worker exits cleanly");
        }
        assert_eq!(ServiceMetrics::read(&metrics.routed), 4);
    }
}
